//===- runtime/Exterminator.cpp - Runtime facade ----------------------------===//

#include "runtime/Exterminator.h"

#include "inject/FaultInjector.h"
#include "support/Executor.h"

#include <memory>

using namespace exterminator;

namespace {

/// Captures a heap image the moment the allocation clock reaches a malloc
/// breakpoint (§3.4: "Exterminator reads the allocation time from the
/// initial heap image to abort execution at that point").  Execution then
/// continues — the image, not the abort, is what isolation needs.
///
/// The capture happens at the *entry* of the first allocation after the
/// clock reaches the breakpoint: failures are detected between allocation
/// T and T+1 (a corrupting write followed by a checking free, or a crash),
/// so the image must include everything the program did in that window.
class BreakpointWatcher : public Allocator {
public:
  BreakpointWatcher(CorrectingHeap &Inner, uint64_t BreakAt)
      : Inner(Inner), BreakAt(BreakAt) {}

  void *allocate(size_t Size) override {
    if (!Captured &&
        Inner.diefast().heap().allocationClock() >= BreakAt) {
      Image = captureHeapImage(Inner.diefast(), &sharedExecutor());
      Captured = true;
    }
    return Inner.allocate(Size);
  }

  void deallocate(void *Ptr) override { Inner.deallocate(Ptr); }

  const char *name() const override { return "breakpoint-watcher"; }

  const AllocatorStats &stats() const override { return Inner.stats(); }

  bool captured() const { return Captured; }
  HeapImage takeImage() { return std::move(Image); }

private:
  CorrectingHeap &Inner;
  uint64_t BreakAt;
  bool Captured = false;
  HeapImage Image;
};

} // namespace

SingleRunResult exterminator::runWorkloadOnce(
    Workload &Work, uint64_t InputSeed, uint64_t HeapSeed,
    const ExterminatorConfig &Config, const PatchSet &Patches,
    std::optional<uint64_t> BreakpointAt) {
  SingleRunResult Run;

  CallContext Context;
  DieFastConfig HeapConfig;
  HeapConfig.Heap = Config.Heap;
  HeapConfig.Heap.Seed = HeapSeed;
  HeapConfig.CanaryFillProbability = Config.CanaryFillProbability;

  CorrectingHeap Heap(HeapConfig, &Context);
  Heap.setPatches(Patches);

  // Replay runs ignore DieFast signals before the breakpoint (§3.4); a
  // discovery run dumps an image at the first signal.
  if (!BreakpointAt) {
    Heap.diefast().setErrorHandler([&](const ErrorSignal &Signal) {
      if (Run.ErrorSignalled)
        return;
      Run.ErrorSignalled = true;
      Run.FirstSignalTime = Signal.DetectionTime;
      Run.SignalImage = captureHeapImage(Heap.diefast(), &sharedExecutor());
    });
  }

  // Assemble the stack: workload → (injector) → (watcher) → correcting.
  Allocator *Top = &Heap;
  std::unique_ptr<BreakpointWatcher> Watcher;
  if (BreakpointAt) {
    Watcher = std::make_unique<BreakpointWatcher>(Heap, *BreakpointAt);
    Top = Watcher.get();
  }
  std::unique_ptr<FaultInjector> Injector;
  if (Config.Fault.Kind != FaultKind::None) {
    Injector = std::make_unique<FaultInjector>(*Top, Config.Fault);
    // Hardware fault models key victims to slab-relative placement, so
    // they strike this replica's physical layout, not its logical
    // allocation order.
    Injector->attachHeap(&Heap.diefast().heap());
    Top = Injector.get();
  }

  AllocatorHandle Handle(*Top, Context, &Heap.diefast().heap());
  Run.Result = Work.run(Handle, InputSeed);

  Run.EndTime = Heap.diefast().heap().allocationClock();
  Run.FinalImage = captureHeapImage(Heap.diefast(), &sharedExecutor());
  if (Watcher && Watcher->captured())
    Run.BreakpointImage = Watcher->takeImage();
  Run.Alloc = Heap.stats();
  Run.Correction = Heap.correctionStats();
  Run.FaultFired = Injector && Injector->faultFired();
  return Run;
}

//===- runtime/Exterminator.h - Runtime facade -----------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Exterminator runtime: configuration shared by the three modes of
/// operation (§3.4) and the single-run harness they are built from.
///
/// One *run* executes a workload over the full heap stack —
/// workload → (fault injector) → correcting allocator → DieFast →
/// DieHard — with a fresh heap seed, capturing heap images at DieFast
/// error signals, at an optional *malloc breakpoint* (replay runs), and
/// at the end of the run.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_RUNTIME_EXTERMINATOR_H
#define EXTERMINATOR_RUNTIME_EXTERMINATOR_H

#include "correct/CorrectingHeap.h"
#include "cumulative/CumulativeIsolator.h"
#include "heapimage/HeapImage.h"
#include "inject/FaultPlan.h"
#include "isolate/ErrorIsolator.h"
#include "workload/Workload.h"

#include <cstdint>
#include <optional>

namespace exterminator {

/// Configuration for the Exterminator runtime, shared by every mode.
struct ExterminatorConfig {
  /// The DieHard substrate (multiplier M, initial size, guard bytes).
  /// The per-run seed is filled in by the drivers.
  DieHardConfig Heap;
  /// Canary fill probability p: 1.0 for iterative/replicated, 1/2 for
  /// cumulative (§3.3, §5.2).
  double CanaryFillProbability = 1.0;
  /// Iterative/replicated isolation tuning (§4).
  IsolationConfig Isolation;
  /// Cumulative-mode tuning (§5).
  CumulativeConfig Cumulative;
  /// Optional injected fault (§7.2); FaultKind::None for real bugs.
  FaultPlan Fault;
  /// Seed from which all per-run heap seeds derive.
  uint64_t MasterSeed = 0x0ddba11;
  /// Discovery runs an iterative session may try before concluding the
  /// program is error-free: a probabilistic detector can miss a bug in
  /// any one run (an overflow landing on a virgin slot is invisible), so
  /// discovery re-runs with fresh seeds like a tester would.
  unsigned DiscoveryAttempts = 5;
  /// Minimum images before attempting isolation (the paper's espresso
  /// experiments converge with 3 in every case, §7.2).
  unsigned MinImages = 3;
  /// Give up gathering images for one error after this many.
  unsigned MaxImages = 8;
  /// Maximum correct-and-retry episodes per session (each episode fixes
  /// one error or doubles a deferral, §6.2).
  unsigned MaxEpisodes = 10;
};

/// Everything one run produced.
struct SingleRunResult {
  WorkloadResult Result;
  /// DieFast signalled at least one corruption.
  bool ErrorSignalled = false;
  /// Allocation clock at the first signal.
  uint64_t FirstSignalTime = 0;
  /// Image captured at the first signal (iterative/replicated anchor).
  std::optional<HeapImage> SignalImage;
  /// Image captured at the malloc breakpoint, when one was requested.
  std::optional<HeapImage> BreakpointImage;
  /// Image captured when the run ended (success, crash, or abort).
  HeapImage FinalImage;
  /// Allocation clock at the end of the run.
  uint64_t EndTime = 0;
  /// Allocator + correction statistics for overhead reporting.
  AllocatorStats Alloc;
  CorrectionStats Correction;
  /// The injected fault fired during this run.
  bool FaultFired = false;

  bool failed() const {
    return Result.Status != RunStatusKind::Success;
  }
};

/// Executes \p Work once over the full heap stack.
///
/// \param InputSeed the program input (identical inputs replay
///        identically).
/// \param HeapSeed the heap randomization seed (fresh per run).
/// \param Patches runtime patches the correcting allocator applies.
/// \param BreakpointAt when set, capture an image as the allocation clock
///        reaches this value (the malloc breakpoint) and ignore DieFast
///        signals, per the §3.4 replay protocol.
SingleRunResult runWorkloadOnce(Workload &Work, uint64_t InputSeed,
                                uint64_t HeapSeed,
                                const ExterminatorConfig &Config,
                                const PatchSet &Patches,
                                std::optional<uint64_t> BreakpointAt =
                                    std::nullopt);

} // namespace exterminator

#endif // EXTERMINATOR_RUNTIME_EXTERMINATOR_H

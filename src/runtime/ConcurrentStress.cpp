//===- runtime/ConcurrentStress.cpp - Contended allocator driver -----------===//

#include "runtime/ConcurrentStress.h"

#include "support/Executor.h"
#include "support/RandomGenerator.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

using namespace exterminator;

namespace {

/// One worker's outbox to its neighbor.  A mutex-guarded vector is fine
/// here: handoffs are a fraction of operations, and the allocator under
/// test — not the harness — is what must be lock-free.
struct Mailbox {
  std::mutex Lock;
  std::vector<void *> Pointers;

  void push(void *Ptr) {
    std::lock_guard<std::mutex> Guard(Lock);
    Pointers.push_back(Ptr);
  }

  void drainTo(std::vector<void *> &Out) {
    std::lock_guard<std::mutex> Guard(Lock);
    Out.insert(Out.end(), Pointers.begin(), Pointers.end());
    Pointers.clear();
  }
};

/// The stamp written into an object's first 8 bytes at allocation and
/// checked at free: any slot handed to two threads at once scrambles it.
uint64_t stampFor(const void *Ptr, uint64_t Nonce) {
  return (reinterpret_cast<uintptr_t>(Ptr) * 0x9E3779B97F4A7C15ull) ^ Nonce;
}

} // namespace

ConcurrentStressResult
exterminator::runConcurrentStress(Allocator &Alloc,
                                  const ConcurrentStressConfig &Config) {
  const unsigned Threads = Config.Threads ? Config.Threads : 1;
  const uint64_t Nonce = Config.Seed * 0x2545F4914F6CDD1Dull + 1;

  std::vector<Mailbox> Mailboxes(Threads);
  std::atomic<uint64_t> TotalAllocations{0};
  std::atomic<uint64_t> PatternFaults{0};
  std::atomic<uint64_t> FailedAllocations{0};
  std::atomic<unsigned> Arrived{0};

  const auto Dispose = [&](void *Ptr) {
    if (stampFor(Ptr, Nonce) !=
        *reinterpret_cast<const uint64_t *>(Ptr))
      PatternFaults.fetch_add(1, std::memory_order_relaxed);
    Alloc.deallocate(Ptr);
  };

  const auto Worker = [&](size_t Index) {
    RandomGenerator Rng(Config.Seed ^ (0xabcd1234fed + Index * 0x1000193));
    std::vector<void *> Resident;
    Resident.reserve(Config.ResidentPerThread + 1);
    std::vector<void *> Inbox;
    Mailbox &Outbox = Mailboxes[(Index + 1) % Threads];

    // Start barrier: align the contended window across workers (yield,
    // not spin — small hosts may timeslice all workers on one core).
    Arrived.fetch_add(1, std::memory_order_acq_rel);
    while (Arrived.load(std::memory_order_acquire) < Threads)
      std::this_thread::yield();

    const auto Route = [&](void *Ptr) {
      if (Threads > 1 && Rng.chance(Config.CrossFreeFraction))
        Outbox.push(Ptr);
      else
        Dispose(Ptr);
    };

    for (uint64_t Op = 0; Op < Config.OpsPerThread; ++Op) {
      // Periodically free what neighbors handed over: these pointers
      // were allocated by another thread's cache, so every disposal here
      // is a genuine cross-thread free.
      if ((Op & 63) == 0) {
        Inbox.clear();
        Mailboxes[Index].drainTo(Inbox);
        for (void *Ptr : Inbox)
          Dispose(Ptr);
      }

      const size_t Size =
          Config.Sizes[Rng.nextBelow(Config.Sizes.size())];
      void *Ptr = Alloc.allocate(Size);
      if (!Ptr) {
        FailedAllocations.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      TotalAllocations.fetch_add(1, std::memory_order_relaxed);
      *reinterpret_cast<uint64_t *>(Ptr) = stampFor(Ptr, Nonce);

      if (Config.ResidentPerThread == 0) {
        Route(Ptr);
        continue;
      }
      Resident.push_back(Ptr);
      if (Resident.size() > Config.ResidentPerThread) {
        // Evict a uniformly random resident (the churn shape).
        const size_t Victim = Rng.nextBelow(Resident.size());
        std::swap(Resident[Victim], Resident.back());
        Route(Resident.back());
        Resident.pop_back();
      }
    }

    // Wind down this worker's own holdings; mailbox stragglers are
    // swept by the caller after the join.
    Inbox.clear();
    Mailboxes[Index].drainTo(Inbox);
    for (void *Ptr : Inbox)
      Dispose(Ptr);
    for (void *Ptr : Resident)
      Dispose(Ptr);
  };

  Executor Pool(Threads);
  const auto Start = std::chrono::steady_clock::now();
  Pool.parallelFor(Threads, Worker);
  const auto End = std::chrono::steady_clock::now();

  // Final handoffs can land after their target drained for the last
  // time; free the stragglers here (cross-thread again, from the caller).
  std::vector<void *> Leftover;
  for (Mailbox &Box : Mailboxes)
    Box.drainTo(Leftover);
  for (void *Ptr : Leftover)
    Dispose(Ptr);

  ConcurrentStressResult Result;
  Result.Seconds = std::chrono::duration<double>(End - Start).count();
  Result.Allocations = TotalAllocations.load();
  Result.PatternFaults = PatternFaults.load();
  Result.FailedAllocations = FailedAllocations.load();
  return Result;
}

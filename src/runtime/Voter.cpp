//===- runtime/Voter.cpp - Output voting -------------------------------------===//

#include "runtime/Voter.h"

#include <map>

using namespace exterminator;

VoteResult exterminator::voteOnOutputs(
    const std::vector<WorkloadResult> &Results) {
  VoteResult Vote;

  // Group successful replicas by exact output bytes.
  std::map<std::vector<uint8_t>, std::vector<uint32_t>> Groups;
  for (uint32_t I = 0; I < Results.size(); ++I) {
    if (Results[I].Status == RunStatusKind::Success)
      Groups[Results[I].Output].push_back(I);
    else
      Vote.Dissenters.push_back(I);
  }

  const std::vector<uint32_t> *Best = nullptr;
  const std::vector<uint8_t> *BestOutput = nullptr;
  for (const auto &[Output, Members] : Groups) {
    if (!Best || Members.size() > Best->size()) {
      Best = &Members;
      BestOutput = &Output;
    }
  }
  if (!Best || Best->size() < 1)
    return Vote;

  // A plurality must be more than a lone voice unless it is the only
  // replica running.
  if (Results.size() > 1 && Best->size() < 2)
    return Vote;

  Vote.HasWinner = true;
  Vote.Winners = *Best;
  Vote.Output = *BestOutput;
  for (uint32_t I = 0; I < Results.size(); ++I) {
    bool IsWinner = false;
    for (uint32_t W : Vote.Winners)
      if (W == I)
        IsWinner = true;
    if (!IsWinner && Results[I].Status == RunStatusKind::Success)
      Vote.Dissenters.push_back(I);
  }
  Vote.Unanimous = Vote.Winners.size() == Results.size();
  return Vote;
}

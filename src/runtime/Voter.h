//===- runtime/Voter.h - Output voting -------------------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replicated-mode voter (§3.1, §3.4): replicas receive the same
/// input, and only output agreed on by a plurality is emitted.  A crash,
/// abort, or divergent output marks a replica as a dissenter and triggers
/// error isolation.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_RUNTIME_VOTER_H
#define EXTERMINATOR_RUNTIME_VOTER_H

#include "workload/Workload.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// Outcome of voting over replica outputs.
struct VoteResult {
  /// A plurality of successful replicas agreed on an output.
  bool HasWinner = false;
  /// Every replica succeeded with the winning output.
  bool Unanimous = false;
  /// Replica indexes whose output won the vote.
  std::vector<uint32_t> Winners;
  /// Replica indexes that crashed, aborted, or diverged.
  std::vector<uint32_t> Dissenters;
  /// The agreed output (empty when no winner).
  std::vector<uint8_t> Output;
};

/// Votes over per-replica results by byte-equality of outputs.
VoteResult voteOnOutputs(const std::vector<WorkloadResult> &Results);

} // namespace exterminator

#endif // EXTERMINATOR_RUNTIME_VOTER_H

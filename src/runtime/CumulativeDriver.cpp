//===- runtime/CumulativeDriver.cpp - Cumulative mode -------------------------===//

#include "runtime/CumulativeDriver.h"

#include "cumulative/SiteEstimator.h"
#include "support/RandomGenerator.h"

#include <algorithm>

using namespace exterminator;

CumulativeOutcome CumulativeDriver::run(uint64_t InputSeed, unsigned MaxRuns,
                                        unsigned VerifyRuns) {
  CumulativeOutcome Outcome;
  RandomGenerator SeedStream(Config.MasterSeed ^ 0xc0a1e5ceULL);
  CumulativeIsolator Isolator(Config.Cumulative);
  unsigned CleanStreak = 0;

  for (unsigned RunIndex = 0; RunIndex < MaxRuns; ++RunIndex) {
    const uint64_t Input = VaryInput ? InputSeed + RunIndex : InputSeed;
    SingleRunResult Run = runWorkloadOnce(Work, Input, SeedStream.next(),
                                          Config, Outcome.Patches);
    ++Outcome.RunsExecuted;
    if (Run.failed()) {
      ++Outcome.FailuresObserved;
      CleanStreak = 0;
    } else {
      ++CleanStreak;
    }

    const RunSummary Summary = summarizeRun(Run.FinalImage, Run.failed());
    if (Summary.CorruptionObserved)
      ++Outcome.CorruptRuns;
    Isolator.addRun(Summary);

    Outcome.Overflows = Isolator.classifyOverflows();
    Outcome.Danglings = Isolator.classifyDanglings();
    if (!Outcome.Overflows.empty() || !Outcome.Danglings.empty()) {
      if (!Outcome.Isolated) {
        Outcome.Isolated = true;
        Outcome.RunsToIsolation = Outcome.RunsExecuted;
        Outcome.FailuresToIsolation = Outcome.FailuresObserved;
      }
      // Fold findings into the live patch set.  A deferral that has
      // already been applied but keeps failing doubles instead — the
      // §6.2 logarithmic-convergence rule — because post-patch failures
      // measure their free-to-failure distance from the already-deferred
      // free.
      for (const CumulativeOverflowFinding &Finding : Outcome.Overflows)
        Outcome.Patches.addPad(Finding.AllocSite, Finding.PadBytes);
      for (const CumulativeDanglingFinding &Finding : Outcome.Danglings) {
        const uint64_t Existing = Outcome.Patches.deferralFor(
            Finding.AllocSite, Finding.FreeSite);
        uint64_t Target = Finding.DeferralTicks;
        if (Existing > 0 && CleanStreak == 0)
          Target = std::max(Target, Existing * 2 + 1);
        Outcome.Patches.addDeferral(Finding.AllocSite, Finding.FreeSite,
                                    Target);
      }
    }

    if (Outcome.Isolated && CleanStreak >= VerifyRuns) {
      Outcome.Corrected = true;
      break;
    }
  }
  return Outcome;
}

//===- runtime/CumulativeDriver.cpp - Cumulative mode -------------------------===//

#include "runtime/CumulativeDriver.h"

#include "support/RandomGenerator.h"

using namespace exterminator;

CumulativeOutcome CumulativeDriver::run(uint64_t InputSeed, unsigned MaxRuns,
                                        unsigned VerifyRuns) {
  CumulativeOutcome Outcome;
  RandomGenerator SeedStream(Config.MasterSeed ^ 0xc0a1e5ceULL);
  // The driver executes runs and counts outcomes; summarization,
  // classification, and patch folding (including the §6.2 doubling rule)
  // live in the diagnosis pipeline.
  DiagnosisPipeline Pipeline({Config.Isolation, Config.Cumulative});
  unsigned CleanStreak = 0;

  for (unsigned RunIndex = 0; RunIndex < MaxRuns; ++RunIndex) {
    const uint64_t Input = VaryInput ? InputSeed + RunIndex : InputSeed;
    SingleRunResult Run = runWorkloadOnce(Work, Input, SeedStream.next(),
                                          Config, Pipeline.patches());
    ++Outcome.RunsExecuted;
    if (Run.failed()) {
      ++Outcome.FailuresObserved;
      CleanStreak = 0;
    } else {
      ++CleanStreak;
    }

    const RunSummary Summary = Pipeline.summarize(Run.FinalImage,
                                                  Run.failed());
    if (Summary.CorruptionObserved)
      ++Outcome.CorruptRuns;
    const CumulativeDiagnosis Diagnosis =
        Pipeline.submitSummary(Summary, CleanStreak);

    Outcome.Overflows = Diagnosis.Overflows;
    Outcome.Danglings = Diagnosis.Danglings;
    if (Diagnosis.foundAnything() && !Outcome.Isolated) {
      Outcome.Isolated = true;
      Outcome.RunsToIsolation = Outcome.RunsExecuted;
      Outcome.FailuresToIsolation = Outcome.FailuresObserved;
    }
    Outcome.Patches = Pipeline.patches();

    if (Outcome.Isolated && CleanStreak >= VerifyRuns) {
      Outcome.Corrected = true;
      break;
    }
  }
  return Outcome;
}

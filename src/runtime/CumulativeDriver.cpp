//===- runtime/CumulativeDriver.cpp - Cumulative mode -------------------------===//

#include "runtime/CumulativeDriver.h"

#include "exchange/PatchClient.h"
#include "support/RandomGenerator.h"

using namespace exterminator;

CumulativeOutcome CumulativeDriver::run(uint64_t InputSeed, unsigned MaxRuns,
                                        unsigned VerifyRuns) {
  CumulativeOutcome Outcome;
  RandomGenerator SeedStream(Config.MasterSeed ^ 0xc0a1e5ceULL);
  // The driver executes runs and counts outcomes; summarization,
  // classification, and patch folding (including the §6.2 doubling rule)
  // live in the diagnosis pipeline — local, or behind the attached
  // exchange client.  The local pipeline still does the (stateless)
  // summarization in exchange mode.
  DiagnosisPipeline Pipeline({Config.Isolation, Config.Cumulative});
  unsigned CleanStreak = 0;

  if (Exchange && !Exchange->syncPatches())
    ++Outcome.TransportFailures;

  for (unsigned RunIndex = 0;
       RunIndex < MaxRuns && Outcome.TransportFailures == 0; ++RunIndex) {
    const uint64_t Input = VaryInput ? InputSeed + RunIndex : InputSeed;
    const PatchSet &Applied =
        Exchange ? Exchange->patches() : Pipeline.patches();
    SingleRunResult Run =
        runWorkloadOnce(Work, Input, SeedStream.next(), Config, Applied);
    ++Outcome.RunsExecuted;
    if (Run.failed()) {
      ++Outcome.FailuresObserved;
      CleanStreak = 0;
    } else {
      ++CleanStreak;
    }

    const RunSummary Summary = Pipeline.summarize(Run.FinalImage,
                                                  Run.failed());
    if (Summary.CorruptionObserved)
      ++Outcome.CorruptRuns;

    CumulativeDiagnosis Diagnosis;
    if (Exchange) {
      // syncPatches is free when the submission reply's (instance,
      // epoch) already matches the mirror — the common nothing-new run
      // costs one round trip, not two.
      if (!Exchange->submitSummary(Summary, CleanStreak, &Diagnosis) ||
          !Exchange->syncPatches()) {
        ++Outcome.TransportFailures;
        break;
      }
    } else {
      Diagnosis = Pipeline.submitSummary(Summary, CleanStreak);
    }

    Outcome.Overflows = Diagnosis.Overflows;
    Outcome.Danglings = Diagnosis.Danglings;
    if (Diagnosis.foundAnything() && !Outcome.Isolated) {
      Outcome.Isolated = true;
      Outcome.RunsToIsolation = Outcome.RunsExecuted;
      Outcome.FailuresToIsolation = Outcome.FailuresObserved;
    }
    Outcome.Patches = Exchange ? Exchange->patches() : Pipeline.patches();

    if (Outcome.Isolated && CleanStreak >= VerifyRuns) {
      Outcome.Corrected = true;
      break;
    }
  }
  return Outcome;
}

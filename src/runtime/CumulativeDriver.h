//===- runtime/CumulativeDriver.h - Cumulative mode ------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cumulative mode (§3.4, §5): suitable for broad deployment.  Each
/// execution — possibly over different inputs, with nondeterministic
/// allocation behavior — is reduced to a per-site statistical summary
/// (§5.1) and folded into the accumulated state; the Bayesian classifier
/// flags error sources once their trials cross the likelihood threshold,
/// and the derived patches correct subsequent executions.
///
/// The accumulated state can live in-process (a local DiagnosisPipeline)
/// or behind a PatchClient — the fleet deployment the paper's "community
/// of users" sketches (§6.4): each process ships its summaries to a
/// patch server and pulls back the community's merged patches.  The run
/// protocol is identical either way, and a test pins that the two
/// produce bit-identical patch sets for the same evidence.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_RUNTIME_CUMULATIVEDRIVER_H
#define EXTERMINATOR_RUNTIME_CUMULATIVEDRIVER_H

#include "diagnose/DiagnosisPipeline.h"
#include "runtime/Exterminator.h"

namespace exterminator {

// The exchange layer sits above the runtime: the driver holds only an
// optional pointer, so the wire stack stays out of runtime consumers.
class PatchClient;

/// Outcome of a cumulative session.
struct CumulativeOutcome {
  /// Total executions performed.
  unsigned RunsExecuted = 0;
  /// Failed executions among them.
  unsigned FailuresObserved = 0;
  /// Executions with observed heap corruption.
  unsigned CorruptRuns = 0;
  /// Runs and failures needed until the first site crossed the
  /// likelihood threshold (the paper's §7.2 metrics).
  unsigned RunsToIsolation = 0;
  unsigned FailuresToIsolation = 0;
  /// Isolation succeeded (some site crossed the threshold).
  bool Isolated = false;
  /// Patched runs reached a failure-free streak.
  bool Corrected = false;
  /// Exchange mode only: submissions/fetches that failed in transit
  /// (the session stops at the first one — evidence must not be lost
  /// silently).
  unsigned TransportFailures = 0;
  /// The classifier's findings when last computed.
  std::vector<CumulativeOverflowFinding> Overflows;
  std::vector<CumulativeDanglingFinding> Danglings;
  PatchSet Patches;
};

/// Drives repeated executions with summary accumulation (§5).
class CumulativeDriver {
public:
  /// \param VaryInput when true, each run uses a different input seed
  ///        (InputSeed + run index), modelling nondeterministic deployed
  ///        use; when false, the same input is re-run (the §7.2 espresso
  ///        experiments).
  CumulativeDriver(Workload &Work, const ExterminatorConfig &Config,
                   bool VaryInput = false)
      : Work(Work), Config(Config), VaryInput(VaryInput) {}

  /// Routes diagnosis through \p Client instead of a local pipeline:
  /// each run's summary is submitted to the patch server and the patch
  /// set applied to subsequent runs is the server's merged set (which
  /// may include other users' fixes).  Call before run().
  void attachExchange(PatchClient &Client) { Exchange = &Client; }

  /// Executes up to \p MaxRuns runs, folding each into the accumulated
  /// state.  Patches apply to subsequent executions as soon as they
  /// exist; deferrals double when a patched pair keeps failing (§6.2's
  /// logarithmic convergence).  The session ends once \p VerifyRuns
  /// consecutive patched executions stay failure-free.
  CumulativeOutcome run(uint64_t InputSeed, unsigned MaxRuns = 200,
                        unsigned VerifyRuns = 3);

private:
  Workload &Work;
  ExterminatorConfig Config;
  bool VaryInput;
  PatchClient *Exchange = nullptr;
};

} // namespace exterminator

#endif // EXTERMINATOR_RUNTIME_CUMULATIVEDRIVER_H

//===- runtime/ReplicatedDriver.cpp - Replicated mode ------------------------===//

#include "runtime/ReplicatedDriver.h"

#include "support/RandomGenerator.h"

#include <algorithm>

using namespace exterminator;

ReplicatedOutcome ReplicatedDriver::run(uint64_t InputSeed,
                                        const PatchSet &InitialPatches) {
  ReplicatedOutcome Outcome;
  Outcome.Patches = InitialPatches;
  RandomGenerator SeedStream(Config.MasterSeed ^ 0x5eed5eedULL);

  unsigned CleanStreak = 0;
  const unsigned MaxRounds = Config.MaxEpisodes + Config.DiscoveryAttempts;
  for (unsigned RoundIndex = 0; RoundIndex < MaxRounds; ++RoundIndex) {
    ReplicatedRound Round;

    // Broadcast the input to every replica (each gets an independently
    // randomized heap) and collect results.
    std::vector<uint64_t> HeapSeeds(NumReplicas);
    for (auto &Seed : HeapSeeds)
      Seed = SeedStream.next();

    std::vector<SingleRunResult> Runs;
    std::vector<WorkloadResult> Results;
    Runs.reserve(NumReplicas);
    for (unsigned R = 0; R < NumReplicas; ++R) {
      Runs.push_back(runWorkloadOnce(Work, InputSeed, HeapSeeds[R], Config,
                                     Outcome.Patches));
      Results.push_back(Runs.back().Result);
    }
    Round.Vote = voteOnOutputs(Results);

    bool AnySignal = false;
    uint64_t DumpTime = ~uint64_t(0);
    for (const SingleRunResult &Run : Runs) {
      if (Run.ErrorSignalled) {
        AnySignal = true;
        DumpTime = std::min(DumpTime, Run.FirstSignalTime);
      }
      if (Run.failed())
        DumpTime = std::min(DumpTime, Run.EndTime);
    }
    Round.ErrorDetected =
        AnySignal || !Round.Vote.Dissenters.empty() || !Round.Vote.HasWinner;

    if (!Round.ErrorDetected) {
      // With patches in hand, one agreeing round means corrected; before
      // any error has been seen, a clean round is only weak evidence —
      // the detector is probabilistic — so re-run with fresh seeds.
      ++CleanStreak;
      Outcome.Output = Round.Vote.Output;
      Outcome.Rounds.push_back(std::move(Round));
      if (!Outcome.Patches.empty()) {
        Outcome.Corrected = true;
        return Outcome;
      }
      if (CleanStreak >= Config.DiscoveryAttempts) {
        Outcome.ErrorFree = true;
        return Outcome;
      }
      continue;
    }
    CleanStreak = 0;

    // Lockstep dump: replay every replica to the earliest failure time
    // and capture its image there (sequential simulation of the paper's
    // concurrent signal-triggered dumps).  A replay failing before the
    // dump time lowers it — images are only comparable at a common
    // allocation time — and forces a recapture.
    if (DumpTime == ~uint64_t(0)) {
      // Pure divergence without failure: dump at the shortest run's end.
      for (const SingleRunResult &Run : Runs)
        DumpTime = std::min(DumpTime, Run.EndTime);
    }

    std::vector<HeapImage> Images;
    std::vector<HeapImage> EndImages;
    for (unsigned Attempt = 0; Attempt < 4 && Images.empty(); ++Attempt) {
      std::vector<HeapImage> Captured;
      std::vector<HeapImage> Ends;
      bool Lowered = false;
      for (unsigned R = 0; R < NumReplicas && !Lowered; ++R) {
        SingleRunResult Replay =
            runWorkloadOnce(Work, InputSeed, HeapSeeds[R], Config,
                            Outcome.Patches, DumpTime);
        if (Replay.failed())
          Ends.push_back(Replay.FinalImage);
        if (Replay.BreakpointImage) {
          Captured.push_back(std::move(*Replay.BreakpointImage));
        } else if (Replay.EndTime >= DumpTime) {
          Captured.push_back(std::move(Replay.FinalImage));
        } else {
          DumpTime = Replay.EndTime;
          Lowered = true;
        }
      }
      if (!Lowered) {
        Images = std::move(Captured);
        EndImages = std::move(Ends);
      }
    }
    Round.DumpTime = DumpTime;

    Round.Result = isolateErrors(Images, Config.Isolation);
    if (Round.Result.Patches.empty() && EndImages.size() >= 2) {
      // Dangling overwrites may postdate the last allocation; retry over
      // the end-of-run images of the failed replicas.
      Round.Result = isolateErrors(EndImages, Config.Isolation);
    }

    const bool Isolated = !Round.Result.Patches.empty();
    Outcome.Patches.merge(Round.Result.Patches);
    Outcome.Rounds.push_back(std::move(Round));
    if (!Isolated)
      return Outcome; // Cannot make progress on this error.
    // Patches reloaded (§6.3); the next round runs corrected replicas.
  }
  return Outcome;
}

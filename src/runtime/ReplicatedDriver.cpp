//===- runtime/ReplicatedDriver.cpp - Replicated mode ------------------------===//

#include "runtime/ReplicatedDriver.h"

#include "support/Executor.h"
#include "support/RandomGenerator.h"

#include <algorithm>
#include <memory>

using namespace exterminator;

namespace {

/// One replica's lockstep-dump replay result.
struct ReplicaCapture {
  /// Image at the dump time (or at the end of a run that reached it).
  HeapImage Image;
  /// End-of-run image when the replay failed.
  HeapImage EndImage;
  bool Failed = false;
  /// The replay ended strictly before the dump time; its end time is the
  /// new candidate dump time.
  bool Lowered = false;
  uint64_t EndTime = 0;
};

} // namespace

ReplicatedOutcome ReplicatedDriver::run(uint64_t InputSeed,
                                        const PatchSet &InitialPatches) {
  ReplicatedOutcome Outcome;
  DiagnosisPipeline Pipeline({Config.Isolation, Config.Cumulative});
  Pipeline.seedPatches(InitialPatches);
  Outcome.Patches = Pipeline.patches();
  RandomGenerator SeedStream(Config.MasterSeed ^ 0x5eed5eedULL);

  // The replica map: concurrent over the executor, or a plain loop under
  // --sequential.  Either way results commit to per-replica slots, so
  // the two paths produce bit-identical outcomes for the same seeds.
  std::unique_ptr<Executor> Exec;
  if (!Sequential && NumReplicas > 1)
    Exec = std::make_unique<Executor>(NumReplicas);
  auto forEachReplica = [&](const std::function<void(size_t)> &Body) {
    if (Exec)
      Exec->parallelFor(NumReplicas, Body);
    else
      for (size_t R = 0; R < NumReplicas; ++R)
        Body(R);
  };

  unsigned CleanStreak = 0;
  const unsigned MaxRounds = Config.MaxEpisodes + Config.DiscoveryAttempts;
  for (unsigned RoundIndex = 0; RoundIndex < MaxRounds; ++RoundIndex) {
    ReplicatedRound Round;

    // Broadcast the input to every replica (each gets an independently
    // randomized heap) and collect results.  Seeds are drawn up front so
    // the seed stream is independent of execution interleaving.
    std::vector<uint64_t> HeapSeeds(NumReplicas);
    for (auto &Seed : HeapSeeds)
      Seed = SeedStream.next();

    const PatchSet RoundPatches = Pipeline.patches();
    std::vector<SingleRunResult> Runs(NumReplicas);
    forEachReplica([&](size_t R) {
      Runs[R] = runWorkloadOnce(Work, InputSeed, HeapSeeds[R], Config,
                                RoundPatches);
    });
    std::vector<WorkloadResult> Results;
    Results.reserve(NumReplicas);
    for (const SingleRunResult &Run : Runs)
      Results.push_back(Run.Result);
    Round.Vote = voteOnOutputs(Results);

    bool AnySignal = false;
    uint64_t DumpTime = ~uint64_t(0);
    for (const SingleRunResult &Run : Runs) {
      if (Run.ErrorSignalled) {
        AnySignal = true;
        DumpTime = std::min(DumpTime, Run.FirstSignalTime);
      }
      if (Run.failed())
        DumpTime = std::min(DumpTime, Run.EndTime);
    }
    Round.ErrorDetected =
        AnySignal || !Round.Vote.Dissenters.empty() || !Round.Vote.HasWinner;

    if (!Round.ErrorDetected) {
      // With patches in hand, one agreeing round means corrected; before
      // any error has been seen, a clean round is only weak evidence —
      // the detector is probabilistic — so re-run with fresh seeds.
      ++CleanStreak;
      Outcome.Output = Round.Vote.Output;
      Outcome.Rounds.push_back(std::move(Round));
      if (!Pipeline.patches().empty()) {
        Outcome.Corrected = true;
        Outcome.Patches = Pipeline.patches();
        return Outcome;
      }
      if (CleanStreak >= Config.DiscoveryAttempts) {
        Outcome.ErrorFree = true;
        Outcome.Patches = Pipeline.patches();
        return Outcome;
      }
      continue;
    }
    CleanStreak = 0;

    // Lockstep dump: replay every replica to the earliest failure time
    // and capture its image there.  The replays run concurrently; the
    // join barrier is the dump barrier — no image is consumed until all
    // replicas have produced theirs.  A replay failing before the dump
    // time lowers it — images are only comparable at a common allocation
    // time — and forces a recapture of every replica.
    if (DumpTime == ~uint64_t(0)) {
      // Pure divergence without failure: dump at the shortest run's end.
      for (const SingleRunResult &Run : Runs)
        DumpTime = std::min(DumpTime, Run.EndTime);
    }

    ImageEvidence Evidence;
    for (unsigned Attempt = 0; Attempt < 4 && Evidence.Primary.empty();
         ++Attempt) {
      std::vector<ReplicaCapture> Captures(NumReplicas);
      forEachReplica([&](size_t R) {
        ReplicaCapture &Capture = Captures[R];
        SingleRunResult Replay = runWorkloadOnce(
            Work, InputSeed, HeapSeeds[R], Config, RoundPatches, DumpTime);
        Capture.Failed = Replay.failed();
        Capture.EndTime = Replay.EndTime;
        if (Replay.failed())
          Capture.EndImage = Replay.FinalImage;
        if (Replay.BreakpointImage)
          Capture.Image = std::move(*Replay.BreakpointImage);
        else if (Replay.EndTime >= DumpTime)
          Capture.Image = std::move(Replay.FinalImage);
        else
          Capture.Lowered = true;
      });

      uint64_t LoweredTo = ~uint64_t(0);
      for (const ReplicaCapture &Capture : Captures)
        if (Capture.Lowered)
          LoweredTo = std::min(LoweredTo, Capture.EndTime);
      if (LoweredTo != ~uint64_t(0)) {
        DumpTime = LoweredTo;
        continue;
      }
      for (ReplicaCapture &Capture : Captures) {
        Evidence.Primary.push_back(std::move(Capture.Image));
        if (Capture.Failed)
          Evidence.Fallback.push_back(std::move(Capture.EndImage));
      }
    }
    Round.DumpTime = DumpTime;

    // Submit the lockstep images; the pipeline owns isolation, the
    // fallback to end-of-run images, and the patch merge (§6.3's reload
    // source for the next round's replicas).
    Round.Result = Pipeline.submitImages(Evidence);

    const bool Isolated = !Round.Result.Patches.empty();
    Outcome.Rounds.push_back(std::move(Round));
    Outcome.Patches = Pipeline.patches();
    if (!Isolated)
      return Outcome; // Cannot make progress on this error.
    // Patches reloaded (§6.3); the next round runs corrected replicas.
  }
  Outcome.Patches = Pipeline.patches();
  return Outcome;
}

//===- codec/DeltaCodec.cpp - Base-image delta body codec -------------------===//

#include "codec/DeltaCodec.h"

#include "diefast/Canary.h"

#include <algorithm>
#include <cstring>

using namespace exterminator;
using namespace exterminator::imagedetail;

/// The canary fill word the image's heap used — the implied word of
/// CanaryRun records and the substitution key of full references.
static uint64_t canaryWordOf(const HeapImage &Image) {
  return Canary::fromValue(Image.CanaryValue).patternWord();
}

/// True when slot \p Loc can join a virgin region run (mirrors the plain
/// body encoder's predicate).
static bool isVirginSlot(const HeapImage &Image, const ImageLocation &Loc,
                         uint64_t &WordOut) {
  if (Image.slotFlags(Loc) != 0 || Image.objectId(Loc) != 0 ||
      Image.freeTime(Loc) != 0 || Image.allocSite(Loc) != 0 ||
      Image.freeSite(Loc) != 0 || Image.requestedSize(Loc) != 0)
    return false;
  const SlotContents Contents = Image.contents(Loc);
  if (Contents.runCount() != 1)
    return false;
  const ContentsRun &Run = Contents.run(0);
  if (Run.RunKind != ContentsRun::Pattern)
    return false;
  WordOut = Run.Word;
  return true;
}

/// Metadata equality between \p Loc in \p Image and \p BaseLoc in the
/// base — the precondition for either reference tag.
static bool metadataMatches(const HeapImage &Image, const ImageLocation &Loc,
                            const HeapImage &Base,
                            const ImageLocation &BaseLoc, uint64_t ObjectSize) {
  return Base.miniheap(BaseLoc).ObjectSize == ObjectSize &&
         Base.slotFlags(BaseLoc) == Image.slotFlags(Loc) &&
         Base.freeTime(BaseLoc) == Image.freeTime(Loc) &&
         Base.allocSite(BaseLoc) == Image.allocSite(Loc) &&
         Base.freeSite(BaseLoc) == Image.freeSite(Loc) &&
         Base.requestedSize(BaseLoc) == Image.requestedSize(Loc);
}

/// Run-structure equality under canary substitution: a base pattern run
/// holding the base's canary word is expected to hold the member's
/// canary word in the member.  This is exactly the map the decoder
/// applies, so a match guarantees bit-exact reconstruction
/// (HeapImage::operator== compares run tables, not just bytes).
static bool runsEqualSubstituted(const HeapImage &Base,
                                 const ImageLocation &BaseLoc,
                                 const HeapImage &Member,
                                 const ImageLocation &Loc,
                                 uint64_t BaseCanaryWord,
                                 uint64_t MemberCanaryWord) {
  const SlotContents CB = Base.contents(BaseLoc);
  const SlotContents CM = Member.contents(Loc);
  if (CB.runCount() != CM.runCount())
    return false;
  for (size_t R = 0; R < CB.runCount(); ++R) {
    const ContentsRun &RB = CB.run(R);
    const ContentsRun &RM = CM.run(R);
    if (RB.RunKind != RM.RunKind || RB.Length != RM.Length)
      return false;
    if (RB.RunKind == ContentsRun::Pattern) {
      const uint64_t Expected =
          RB.Word == BaseCanaryWord ? MemberCanaryWord : RB.Word;
      if (RM.Word != Expected)
        return false;
    } else if (std::memcmp(Base.pool().data() + RB.PoolOffset,
                           Member.pool().data() + RM.PoolOffset,
                           RB.Length) != 0) {
      return false;
    }
  }
  return true;
}

/// writeSlotContents with the delta-body extension: pattern runs of the
/// image's own canary word become CanaryRun records (no word byte).
static void writeSlotContentsDelta(StreamWriter &Writer,
                                   const HeapImage &Image,
                                   const SlotContents &Contents,
                                   uint64_t CanaryWord) {
  Writer.writeVarU64(Contents.runCount());
  for (size_t R = 0; R < Contents.runCount(); ++R) {
    const ContentsRun &Run = Contents.run(R);
    if (Run.RunKind == ContentsRun::Pattern && Run.Word == CanaryWord) {
      Writer.writeU8(CanaryRunKind);
      Writer.writeVarU64(Run.Length);
    } else if (Run.RunKind == ContentsRun::Pattern) {
      Writer.writeU8(Run.RunKind);
      Writer.writeVarU64(Run.Length);
      Writer.writeU64(Run.Word);
    } else {
      Writer.writeU8(Run.RunKind);
      Writer.writeVarU64(Run.Length);
      Writer.writeBytes(Image.pool().data() + Run.PoolOffset, Run.Length);
    }
  }
}

/// readSlotContents accepting CanaryRun records.
static bool readSlotContentsDelta(StreamReader &Reader, HeapImage &Image,
                                  uint64_t ObjectSize, uint64_t CanaryWord,
                                  std::vector<uint8_t> &Scratch) {
  const uint64_t RunCount = Reader.readVarU64();
  if (Reader.failed() || RunCount > ObjectSize / 8 + 1)
    return false;
  uint64_t Total = 0;
  for (uint64_t R = 0; R < RunCount; ++R) {
    const uint8_t Kind = Reader.readU8();
    const uint64_t Length = Reader.readVarU64();
    // Non-wrapping form: Total + Length could overflow on a corrupt
    // varint and slip past the bound into a huge allocation.
    if (Reader.failed() || Length == 0 || Length > ObjectSize - Total)
      return false;
    if (Kind == ContentsRun::Pattern || Kind == CanaryRunKind) {
      if (Length % 8 != 0)
        return false;
      uint64_t Word = CanaryWord;
      if (Kind == ContentsRun::Pattern) {
        Word = Reader.readU64();
        if (Reader.failed())
          return false;
      }
      Image.addPatternRun(Word, static_cast<uint32_t>(Length));
    } else if (Kind == ContentsRun::Literal) {
      Scratch.resize(Length);
      if (!Reader.readBytes(Scratch.data(), Length))
        return false;
      Image.addLiteralRun(Scratch.data(), Length);
    } else {
      return false;
    }
    Total += Length;
  }
  return Total == ObjectSize;
}

void exterminator::writeDeltaImageBody(StreamWriter &Writer,
                                       const HeapImage &Image,
                                       const SiteDictionary &Sites,
                                       const HeapImageView *Base) {
  const uint64_t CanaryWord = canaryWordOf(Image);
  const uint64_t BaseCanaryWord =
      Base ? canaryWordOf(Base->image()) : uint64_t(0);
  Writer.writeVarU64(Image.miniheapCount());

  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    Writer.writeVarU64(Mini.SizeClassIndex);
    Writer.writeVarU64(Mini.ObjectSize);
    Writer.writeU64(Mini.BaseAddress);
    Writer.writeVarU64(Mini.CreationTime);
    Writer.writeVarU64(Mini.NumSlots);

    for (uint32_t S = 0; S < Mini.NumSlots;) {
      const ImageLocation Loc{M, S};
      uint64_t Word = 0;
      if (isVirginSlot(Image, Loc, Word)) {
        uint32_t Count = 1;
        uint64_t NextWord = 0;
        while (S + Count < Mini.NumSlots &&
               isVirginSlot(Image, ImageLocation{M, S + Count}, NextWord) &&
               NextWord == Word)
          ++Count;
        Writer.writeU8(VirginRunTag);
        Writer.writeVarU64(Count);
        Writer.writeU64(Word);
        S += Count;
        continue;
      }

      // Reference the base image's slot for this object id when the
      // metadata agrees — the dominant case across replicated dumps.
      const uint64_t ObjectId = Image.objectId(Loc);
      if (Base && ObjectId != 0) {
        if (const auto BaseLoc = Base->findById(ObjectId)) {
          if (metadataMatches(Image, Loc, Base->image(), *BaseLoc,
                              Mini.ObjectSize)) {
            if (runsEqualSubstituted(Base->image(), *BaseLoc, Image, Loc,
                                     BaseCanaryWord, CanaryWord)) {
              Writer.writeU8(SlotRefFullTag);
              Writer.writeVarU64(ObjectId);
            } else {
              // Heap-dependent bytes (pointers, layout-divergent fills):
              // ship the contents, still elide the metadata.
              Writer.writeU8(SlotRefMetaTag);
              Writer.writeVarU64(ObjectId);
              writeSlotContentsDelta(Writer, Image, Image.contents(Loc),
                                     CanaryWord);
            }
            ++S;
            continue;
          }
        }
      }

      const uint8_t Flags = Image.slotFlags(Loc);
      const bool HasMeta =
          Image.objectId(Loc) != 0 || Image.freeTime(Loc) != 0 ||
          Image.allocSite(Loc) != 0 || Image.freeSite(Loc) != 0 ||
          Image.requestedSize(Loc) != 0;
      Writer.writeU8(Flags | (HasMeta ? HasMetaBit : 0));
      if (HasMeta) {
        Writer.writeVarU64(Image.objectId(Loc));
        Writer.writeVarU64(Image.freeTime(Loc));
        Writer.writeVarU64(Sites.indexOf(Image.allocSite(Loc)));
        Writer.writeVarU64(Sites.indexOf(Image.freeSite(Loc)));
        Writer.writeVarU64(Image.requestedSize(Loc));
      }
      writeSlotContentsDelta(Writer, Image, Image.contents(Loc), CanaryWord);
      ++S;
    }
  }
}

/// Copies the base slot's contents runs into \p Image's current slot
/// under canary substitution, preserving run structure exactly (so a
/// decoded bundle re-encodes byte-identically).
static void copyBaseContents(HeapImage &Image, const HeapImage &Base,
                             const ImageLocation &BaseLoc,
                             uint64_t BaseCanaryWord,
                             uint64_t MemberCanaryWord) {
  const SlotContents Contents = Base.contents(BaseLoc);
  for (size_t R = 0; R < Contents.runCount(); ++R) {
    const ContentsRun &Run = Contents.run(R);
    if (Run.RunKind == ContentsRun::Pattern)
      Image.addPatternRun(Run.Word == BaseCanaryWord ? MemberCanaryWord
                                                     : Run.Word,
                          Run.Length);
    else
      Image.addLiteralRun(Base.pool().data() + Run.PoolOffset, Run.Length);
  }
}

/// Resolves a reference tag's object id against the base; false on a
/// corrupt reference (unknown id, size mismatch).
static bool resolveBaseRef(StreamReader &Reader, const HeapImageView &Base,
                           uint64_t ObjectSize, ImageLocation &BaseLocOut) {
  const uint64_t ObjectId = Reader.readVarU64();
  if (Reader.failed() || ObjectId == 0)
    return false;
  const auto BaseLoc = Base.findById(ObjectId);
  if (!BaseLoc || Base.image().miniheap(*BaseLoc).ObjectSize != ObjectSize)
    return false;
  BaseLocOut = *BaseLoc;
  return true;
}

bool exterminator::readDeltaImageBody(StreamReader &Reader, HeapImage &Image,
                                      const std::vector<SiteId> &SiteTable,
                                      const HeapImageView *Base,
                                      uint64_t &SlotBudget) {
  const uint64_t CanaryWord = canaryWordOf(Image);
  const uint64_t BaseCanaryWord =
      Base ? canaryWordOf(Base->image()) : uint64_t(0);
  const uint64_t NumMiniheaps = Reader.readVarU64();
  if (Reader.failed() || NumMiniheaps > MaxMiniheaps)
    return false;

  std::vector<uint8_t> Scratch;
  for (uint64_t M = 0; M < NumMiniheaps; ++M) {
    const uint64_t SizeClassIndex = Reader.readVarU64();
    const uint64_t ObjectSize = Reader.readVarU64();
    const uint64_t BaseAddress = Reader.readU64();
    const uint64_t CreationTime = Reader.readVarU64();
    const uint64_t NumSlots = Reader.readVarU64();
    if (Reader.failed() || NumSlots > MaxSlotsPerMiniheap ||
        NumSlots > SlotBudget || ObjectSize == 0 ||
        ObjectSize > MaxObjectSizeBound || ObjectSize % 8 != 0)
      return false;
    SlotBudget -= NumSlots;
    Image.beginMiniheap(static_cast<uint32_t>(SizeClassIndex), ObjectSize,
                        BaseAddress, CreationTime);
    Image.reserveSlots(std::min(NumSlots, ReserveCap));

    for (uint64_t S = 0; S < NumSlots;) {
      const uint8_t Tag = Reader.readU8();
      if (Reader.failed())
        return false;
      if (Tag == VirginRunTag) {
        const uint64_t Count = Reader.readVarU64();
        const uint64_t Word = Reader.readU64();
        // Non-wrapping form (see readSlotContentsDelta).
        if (Reader.failed() || Count == 0 || Count > NumSlots - S)
          return false;
        for (uint64_t I = 0; I < Count; ++I) {
          Image.addSlot(0, 0, 0, 0, 0, 0);
          Image.addPatternRun(Word, static_cast<uint32_t>(ObjectSize));
        }
        S += Count;
        continue;
      }
      if (Tag == SlotRefFullTag || Tag == SlotRefMetaTag) {
        if (!Base)
          return false; // The first image has no base to reference.
        ImageLocation BaseLoc;
        if (!resolveBaseRef(Reader, *Base, ObjectSize, BaseLoc))
          return false;
        const HeapImage &B = Base->image();
        Image.addSlot(B.slotFlags(BaseLoc), B.objectId(BaseLoc),
                      B.freeTime(BaseLoc), B.allocSite(BaseLoc),
                      B.freeSite(BaseLoc), B.requestedSize(BaseLoc));
        if (Tag == SlotRefFullTag)
          copyBaseContents(Image, B, BaseLoc, BaseCanaryWord, CanaryWord);
        else if (!readSlotContentsDelta(Reader, Image, ObjectSize, CanaryWord,
                                        Scratch))
          return false;
        ++S;
        continue;
      }
      if (Tag & ~(FlagsMask | HasMetaBit))
        return false;
      uint64_t ObjectId = 0, FreeTime = 0, RequestedSize = 0;
      SiteId AllocSite = 0, FreeSite = 0;
      if (Tag & HasMetaBit) {
        ObjectId = Reader.readVarU64();
        FreeTime = Reader.readVarU64();
        const uint64_t AllocIndex = Reader.readVarU64();
        const uint64_t FreeIndex = Reader.readVarU64();
        RequestedSize = Reader.readVarU64();
        if (Reader.failed() || AllocIndex >= SiteTable.size() ||
            FreeIndex >= SiteTable.size() || RequestedSize > ~uint32_t(0))
          return false;
        AllocSite = SiteTable[AllocIndex];
        FreeSite = SiteTable[FreeIndex];
      }
      Image.addSlot(Tag & FlagsMask, ObjectId, FreeTime, AllocSite,
                    FreeSite, static_cast<uint32_t>(RequestedSize));
      if (!readSlotContentsDelta(Reader, Image, ObjectSize, CanaryWord,
                                 Scratch))
        return false;
      ++S;
    }
  }
  return !Reader.failed();
}

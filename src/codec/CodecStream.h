//===- codec/CodecStream.h - Codec-wrapped byte streams --------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The codec-wrapped stages the Serializer streaming layer grows in PR
/// 10: a CompressingSink that chops its input into bounded blocks and LZ
/// compresses each, and the matching DecompressingSource.  Any
/// StreamWriter/StreamReader pipeline gains compression by interposing
/// these between the field codec and the real sink/source — the bundle
/// file container ("XIC1", ImageBundle.cpp) is the first user.
///
/// Stream format (repeated blocks, then a terminator):
///
///   varint RawLen      block's decompressed size; 0 terminates the stream
///   varint EncLen      compressed size; 0 ==> RawLen stored bytes follow
///   body               EncLen LZ bytes, or RawLen stored bytes
///
/// Blocks are capped at CodecStreamBlockCap raw bytes, and the decoder
/// validates both declared lengths against that cap *before* sizing any
/// allocation from them — the streaming analogue of decodeCodecBlock's
/// bomb budget.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CODEC_CODECSTREAM_H
#define EXTERMINATOR_CODEC_CODECSTREAM_H

#include "support/Serializer.h"

#include <cstdint>
#include <vector>

namespace exterminator {

/// Raw bytes per compressed block: large enough to give the LZ window
/// real context, small enough that decode buffers stay modest.
inline constexpr size_t CodecStreamBlockCap = size_t(256) * 1024;

/// A ByteSink stage that LZ-compresses what is written through it.
/// Call finish() after the last write — it flushes the trailing partial
/// block and the stream terminator.
class CompressingSink : public ByteSink {
public:
  explicit CompressingSink(ByteSink &Inner) : Inner(Inner) {}
  ~CompressingSink() override;

  bool write(const void *Data, size_t Size) override;

  /// Flushes buffered bytes and writes the terminator; returns false if
  /// any write failed.  Idempotent.
  bool finish();

private:
  bool flushBlock();

  ByteSink &Inner;
  std::vector<uint8_t> Buffer;
  std::vector<uint8_t> Scratch;
  bool Finished = false;
  bool Failed = false;
};

/// A ByteSource stage that decompresses a CompressingSink stream.  After
/// the terminator block, reads return 0 (end of stream); any
/// malformation (truncation, oversized declared lengths, corrupt LZ
/// bytes) makes every subsequent read return 0 with failed() set, so
/// downstream StreamReaders fail sticky as usual.
class DecompressingSource : public ByteSource {
public:
  explicit DecompressingSource(ByteSource &Inner) : Inner(Inner) {}

  size_t read(void *Out, size_t Size) override;

  bool failed() const { return Failed; }
  /// True once the terminator was consumed and the buffer drained.
  bool finished() const { return Done && Offset == Block.size() && !Failed; }

private:
  bool refill();

  ByteSource &Inner;
  std::vector<uint8_t> Block;
  std::vector<uint8_t> Scratch;
  size_t Offset = 0;
  bool Done = false;
  bool Failed = false;
};

} // namespace exterminator

#endif // EXTERMINATOR_CODEC_CODECSTREAM_H

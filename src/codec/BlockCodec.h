//===- codec/BlockCodec.h - Block compression codecs -----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The codec layer every byte path routes through (PR 10): a small
/// LZ77-style block codec plus the envelope framing that makes a
/// compressed blob self-describing and *adversarially budgeted* — the
/// declared expanded size is validated against a caller-supplied bound
/// before any allocation is sized from it, so a compression bomb is a
/// decode error, never an OOM (the same discipline as MaxWireSlots).
///
/// The codec is special-purpose by design (the engel_coding idiom):
/// evidence bytes are dominated by varint-packed metadata and short
/// repeated structures, so a byte-oriented LZ with a 64 KiB window and
/// greedy hash-chain matching captures most of what a general-purpose
/// compressor would, at memcpy-class speed and ~200 lines.
///
/// Wire format of one LZ block (sequences until input exhausts):
///
///   token u8: high nibble = literal count, low nibble = match length-4;
///             nibble 15 ==> extension bytes follow (each adds its value,
///             a byte < 255 terminates)
///   [literal-count extension bytes]
///   literal bytes
///   offset u16 LE (1..65535, back-reference into decoded output)
///   [match-length extension bytes]
///
/// The final sequence carries literals only (match nibble 0, no offset).
/// The decoder knows the exact raw size up front and validates every
/// back-reference, length, and the terminal state; compressors never
/// emit a block that fails to shrink (they return 0 instead and the
/// envelope stores raw bytes).
///
/// Consumers: WireProtocol v4 frame payloads, StateStore snapshots and
/// journal records, the bundle file container (CodecStream.h), and the
/// delta-encoded image bundles (DeltaCodec.h).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CODEC_BLOCKCODEC_H
#define EXTERMINATOR_CODEC_BLOCKCODEC_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace exterminator {

/// Identifies the encoding of an envelope body.
enum class CodecId : uint8_t {
  /// Stored bytes, no transform.
  Raw = 0,
  /// The LZ77 block codec above.
  Lz = 1,
};

const char *codecName(CodecId Id);

/// Worst-case compressed size the LZ encoder may produce for \p RawSize
/// input bytes (incompressible data degenerates to literal runs with one
/// token + extensions per 255-byte stretch).
size_t lzMaxCompressedSize(size_t RawSize);

/// Compresses \p Size bytes into \p Out (replacing its contents).
/// Returns the compressed size, or 0 when the input is incompressible
/// (or too small to bother) — the caller then stores raw bytes.  Never
/// returns a size >= \p Size.
size_t lzCompress(const uint8_t *Data, size_t Size, std::vector<uint8_t> &Out);

/// Decompresses exactly \p RawSize bytes into \p Out (which must hold
/// \p RawSize bytes).  Returns false on any malformation: truncation,
/// a back-reference before the start of output, overlong lengths, or a
/// stream that ends early or late.  \p Out contents are unspecified on
/// failure.
bool lzDecompress(const uint8_t *Comp, size_t CompSize, uint8_t *Out,
                  size_t RawSize);

/// Encodes \p Size bytes as a self-describing envelope:
///
///   u8 CodecId ++ varint RawSize ++ body
///
/// picking Lz when it shrinks the envelope and Raw otherwise.
std::vector<uint8_t> encodeCodecBlock(const uint8_t *Data, size_t Size);
std::vector<uint8_t> encodeCodecBlock(const std::vector<uint8_t> &Raw);

/// Decodes an envelope produced by encodeCodecBlock into \p RawOut.
/// The declared raw size is checked against \p MaxRawSize *before* any
/// allocation — a bomb declaring terabytes is rejected for the price of
/// reading two varint bytes.  Returns false on unknown codec ids,
/// declared-size overruns, truncation, or corrupt LZ streams.
bool decodeCodecBlock(const uint8_t *Data, size_t Size,
                      std::vector<uint8_t> &RawOut, uint64_t MaxRawSize);
bool decodeCodecBlock(const std::vector<uint8_t> &Envelope,
                      std::vector<uint8_t> &RawOut, uint64_t MaxRawSize);

/// Process-wide codec counters (relaxed atomics underneath; this is the
/// snapshot shape).  Scraped as xterm_codec_* via registerCodecMetrics
/// (observe/MetricsRegistry.h).
struct CodecStatsSnapshot {
  uint64_t CompressCalls = 0;
  uint64_t CompressInBytes = 0;
  uint64_t CompressOutBytes = 0;
  uint64_t DecompressCalls = 0;
  uint64_t DecompressOutBytes = 0;
  /// Blocks the encoder stored raw because LZ failed to shrink them.
  uint64_t IncompressibleBlocks = 0;
  /// Decode rejections: bombs, truncation, corrupt back-references.
  uint64_t RejectedBlocks = 0;
};

CodecStatsSnapshot codecStats();

namespace codecdetail {
/// Internal stat hooks shared by the envelope and stream codecs.
void noteCompress(uint64_t InBytes, uint64_t OutBytes, bool Stored);
void noteDecompress(uint64_t OutBytes);
void noteReject();
} // namespace codecdetail

} // namespace exterminator

#endif // EXTERMINATOR_CODEC_BLOCKCODEC_H

//===- codec/DeltaCodec.h - Base-image delta body codec --------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RLE-run-aware delta codec for image bundles (format v2): member
/// images encode against the bundle's first image instead of standalone.
///
/// Replicated dumps (§4 isolation input) are captures of the *same
/// program state* under differently-randomized heaps, so almost every
/// object's metadata is identical across images — only its slot
/// position, heap-dependent pointer words, and the per-heap canary value
/// differ.  General-purpose compression cannot see this (the layouts are
/// permuted), but object ids name the same logical object in every
/// image, so a member slot can reference the base image's slot by id:
///
///   0xfe ++ varint ObjectId              full reference: metadata *and*
///                                        contents from the base
///   0xfd ++ varint ObjectId ++ contents  metadata reference: contents
///                                        (run records) follow inline
///
/// Being run-aware buys two canary tricks a byte codec cannot see:
///
///  * Contents runs in delta bodies gain a third kind, CanaryRun: a
///    pattern run whose word is the image's *own* canary fill word
///    carries only its length (freed slots dominate end-of-run dumps,
///    and every one of them repeats the same 8-byte word).
///
///  * Full references compare and reconstruct contents under canary
///    substitution: a base pattern run holding the base's canary word
///    decodes as the member's canary word.  Freed slots therefore
///    full-reference across heaps even though their raw bytes differ.
///
/// Tags 0xfe/0xfd extend the slot-record tag space next to VirginRunTag
/// (0xff); plain records and virgin runs remain available as fallbacks,
/// so a delta body degrades gracefully toward the v1 encoding when the
/// images do not actually correlate.  The decoder resolves references
/// through a HeapImageView of the already-decoded base and validates
/// every id (present in the base, matching object size) — a corrupt
/// reference is a decode error, never a wild copy.
///
/// Passing a null base writes/reads a body with the CanaryRun encoding
/// but no references — how a v2 bundle encodes its first image.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_CODEC_DELTACODEC_H
#define EXTERMINATOR_CODEC_DELTACODEC_H

#include "heapimage/HeapImage.h"
#include "heapimage/ImageFormatDetail.h"

#include <cstdint>

namespace exterminator {

/// Full base reference: varint ObjectId follows; metadata and contents
/// come from the base image's slot with that id (contents under canary
/// substitution).
inline constexpr uint8_t SlotRefFullTag = 0xfe;
/// Metadata-only base reference: varint ObjectId, then this slot's own
/// contents run records.
inline constexpr uint8_t SlotRefMetaTag = 0xfd;

/// The third contents-run kind of delta bodies: a pattern run of the
/// image's own canary fill word, carrying only a length.
inline constexpr uint8_t CanaryRunKind = 2;

/// Writes \p Image's body delta-encoded against \p Base (null for the
/// bundle's first image: CanaryRun encoding only, no references).  Site
/// references index \p Sites, same as writeImageBody.  Slots whose
/// object id is absent from the base or whose metadata diverges fall
/// back to plain records.
void writeDeltaImageBody(StreamWriter &Writer, const HeapImage &Image,
                         const imagedetail::SiteDictionary &Sites,
                         const HeapImageView *Base);

/// Reads a delta-encoded body, resolving references through \p Base
/// (null rejects reference tags, for the first image).  Returns false
/// on malformed input: unknown ids, object-size mismatches, or any of
/// the plain-body malformations.  \p SlotBudget semantics match
/// readImageBody.
bool readDeltaImageBody(StreamReader &Reader, HeapImage &Image,
                        const std::vector<SiteId> &SiteTable,
                        const HeapImageView *Base, uint64_t &SlotBudget);

} // namespace exterminator

#endif // EXTERMINATOR_CODEC_DELTACODEC_H

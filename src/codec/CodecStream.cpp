//===- codec/CodecStream.cpp - Codec-wrapped byte streams -------------------===//

#include "codec/CodecStream.h"

#include "codec/BlockCodec.h"

#include <algorithm>
#include <cstring>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// CompressingSink
//===----------------------------------------------------------------------===//

CompressingSink::~CompressingSink() { finish(); }

bool CompressingSink::write(const void *Data, size_t Size) {
  if (Failed || Finished)
    return false;
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  while (Size > 0) {
    const size_t Take = std::min(Size, CodecStreamBlockCap - Buffer.size());
    Buffer.insert(Buffer.end(), Bytes, Bytes + Take);
    Bytes += Take;
    Size -= Take;
    if (Buffer.size() == CodecStreamBlockCap && !flushBlock())
      return false;
  }
  return true;
}

bool CompressingSink::flushBlock() {
  if (Buffer.empty())
    return true;
  StreamWriter Writer(Inner);
  Writer.writeVarU64(Buffer.size());
  const size_t CompSize = lzCompress(Buffer.data(), Buffer.size(), Scratch);
  if (CompSize != 0) {
    Writer.writeVarU64(CompSize);
    Writer.writeBytes(Scratch.data(), CompSize);
  } else {
    Writer.writeVarU64(0); // Stored: RawLen bytes follow verbatim.
    Writer.writeBytes(Buffer.data(), Buffer.size());
  }
  codecdetail::noteCompress(Buffer.size(),
                            CompSize != 0 ? CompSize : Buffer.size(),
                            CompSize == 0);
  Buffer.clear();
  if (Writer.failed())
    Failed = true;
  return !Failed;
}

bool CompressingSink::finish() {
  if (Finished)
    return !Failed;
  if (!flushBlock()) {
    Finished = true;
    return false;
  }
  StreamWriter Writer(Inner);
  Writer.writeVarU64(0); // Terminator.
  if (Writer.failed())
    Failed = true;
  Finished = true;
  return !Failed;
}

//===----------------------------------------------------------------------===//
// DecompressingSource
//===----------------------------------------------------------------------===//

size_t DecompressingSource::read(void *Out, size_t Size) {
  uint8_t *Bytes = static_cast<uint8_t *>(Out);
  size_t Total = 0;
  while (Size > 0) {
    if (Offset == Block.size()) {
      if (Done || Failed || !refill())
        break;
    }
    const size_t Take = std::min(Size, Block.size() - Offset);
    std::memcpy(Bytes, Block.data() + Offset, Take);
    Offset += Take;
    Bytes += Take;
    Size -= Take;
    Total += Take;
  }
  return Total;
}

bool DecompressingSource::refill() {
  StreamReader Reader(Inner);
  const uint64_t RawLen = Reader.readVarU64();
  if (Reader.failed()) {
    Failed = true; // Truncated before the terminator.
    return false;
  }
  if (RawLen == 0) {
    Done = true;
    return false;
  }
  const uint64_t EncLen = Reader.readVarU64();
  // Both declared lengths are validated against the block cap before
  // they size an allocation (compression-bomb budget).
  if (Reader.failed() || RawLen > CodecStreamBlockCap ||
      EncLen > lzMaxCompressedSize(CodecStreamBlockCap)) {
    codecdetail::noteReject();
    Failed = true;
    return false;
  }
  Block.resize(RawLen);
  Offset = 0;
  if (EncLen == 0) {
    if (!Reader.readBytes(Block.data(), RawLen)) {
      codecdetail::noteReject();
      Failed = true;
      return false;
    }
  } else {
    Scratch.resize(EncLen);
    if (!Reader.readBytes(Scratch.data(), EncLen) ||
        !lzDecompress(Scratch.data(), EncLen, Block.data(), RawLen)) {
      codecdetail::noteReject();
      Failed = true;
      return false;
    }
  }
  codecdetail::noteDecompress(RawLen);
  return true;
}

//===- codec/BlockCodec.cpp - Block compression codecs ----------------------===//

#include "codec/BlockCodec.h"

#include "support/Serializer.h"

#include <atomic>
#include <cstring>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

namespace {
struct CodecCounters {
  std::atomic<uint64_t> CompressCalls{0};
  std::atomic<uint64_t> CompressInBytes{0};
  std::atomic<uint64_t> CompressOutBytes{0};
  std::atomic<uint64_t> DecompressCalls{0};
  std::atomic<uint64_t> DecompressOutBytes{0};
  std::atomic<uint64_t> IncompressibleBlocks{0};
  std::atomic<uint64_t> RejectedBlocks{0};
};
CodecCounters &counters() {
  static CodecCounters C;
  return C;
}
} // namespace

void codecdetail::noteCompress(uint64_t InBytes, uint64_t OutBytes,
                               bool Stored) {
  CodecCounters &C = counters();
  C.CompressCalls.fetch_add(1, std::memory_order_relaxed);
  C.CompressInBytes.fetch_add(InBytes, std::memory_order_relaxed);
  C.CompressOutBytes.fetch_add(OutBytes, std::memory_order_relaxed);
  if (Stored)
    C.IncompressibleBlocks.fetch_add(1, std::memory_order_relaxed);
}

void codecdetail::noteDecompress(uint64_t OutBytes) {
  CodecCounters &C = counters();
  C.DecompressCalls.fetch_add(1, std::memory_order_relaxed);
  C.DecompressOutBytes.fetch_add(OutBytes, std::memory_order_relaxed);
}

void codecdetail::noteReject() {
  counters().RejectedBlocks.fetch_add(1, std::memory_order_relaxed);
}

CodecStatsSnapshot exterminator::codecStats() {
  const CodecCounters &C = counters();
  CodecStatsSnapshot S;
  S.CompressCalls = C.CompressCalls.load(std::memory_order_relaxed);
  S.CompressInBytes = C.CompressInBytes.load(std::memory_order_relaxed);
  S.CompressOutBytes = C.CompressOutBytes.load(std::memory_order_relaxed);
  S.DecompressCalls = C.DecompressCalls.load(std::memory_order_relaxed);
  S.DecompressOutBytes = C.DecompressOutBytes.load(std::memory_order_relaxed);
  S.IncompressibleBlocks = C.IncompressibleBlocks.load(std::memory_order_relaxed);
  S.RejectedBlocks = C.RejectedBlocks.load(std::memory_order_relaxed);
  return S;
}

const char *exterminator::codecName(CodecId Id) {
  switch (Id) {
  case CodecId::Raw:
    return "raw";
  case CodecId::Lz:
    return "lz";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// LZ block codec
//===----------------------------------------------------------------------===//

namespace {

/// Inputs shorter than this never shrink (token + offset overhead).
constexpr size_t MinCompressInput = 16;
/// Back-reference window: offsets are u16, 0 is invalid.
constexpr size_t MaxOffset = 65535;
/// Hash table of 4-byte sequence positions (greedy, last-writer-wins).
constexpr unsigned HashBits = 13;
constexpr uint32_t NoPosition = ~uint32_t(0);

inline uint32_t load32(const uint8_t *P) {
  uint32_t V;
  std::memcpy(&V, P, sizeof(V));
  return V;
}

inline uint32_t hashSequence(uint32_t Sequence) {
  // Knuth multiplicative hash; the shift keeps the top HashBits.
  return (Sequence * 2654435761u) >> (32 - HashBits);
}

/// Appends a nibble-extension length: each byte adds its value, a byte
/// below 255 terminates.
void emitExtension(std::vector<uint8_t> &Out, size_t Excess) {
  while (Excess >= 255) {
    Out.push_back(255);
    Excess -= 255;
  }
  Out.push_back(static_cast<uint8_t>(Excess));
}

void emitSequence(std::vector<uint8_t> &Out, const uint8_t *Literals,
                  size_t LiteralLen, size_t Offset, size_t MatchLen) {
  const size_t LitNibble = LiteralLen < 15 ? LiteralLen : 15;
  // MatchLen == 0 encodes the terminal literal-only sequence.
  const size_t MatchExcess = MatchLen == 0 ? 0 : MatchLen - 4;
  const size_t MatchNibble = MatchExcess < 15 ? MatchExcess : 15;
  Out.push_back(static_cast<uint8_t>(LitNibble << 4 | MatchNibble));
  if (LitNibble == 15)
    emitExtension(Out, LiteralLen - 15);
  Out.insert(Out.end(), Literals, Literals + LiteralLen);
  if (MatchLen == 0)
    return;
  Out.push_back(static_cast<uint8_t>(Offset & 0xff));
  Out.push_back(static_cast<uint8_t>(Offset >> 8));
  if (MatchNibble == 15)
    emitExtension(Out, MatchExcess - 15);
}

} // namespace

size_t exterminator::lzMaxCompressedSize(size_t RawSize) {
  // All-literal degenerate stream: one token per sequence plus one
  // extension byte per 255 literals, plus slack for the terminal token.
  return RawSize + RawSize / 255 + 16;
}

size_t exterminator::lzCompress(const uint8_t *Data, size_t Size,
                                std::vector<uint8_t> &Out) {
  Out.clear();
  if (Size < MinCompressInput)
    return 0;

  std::vector<uint32_t> Table(size_t(1) << HashBits, NoPosition);
  size_t Anchor = 0;
  size_t Pos = 0;
  // Leave the final 4 bytes unmatched so load32 never reads past the end
  // and the terminal sequence always has literals available.
  const size_t MatchableEnd = Size - 4;

  while (Pos < MatchableEnd) {
    const uint32_t Sequence = load32(Data + Pos);
    uint32_t &Slot = Table[hashSequence(Sequence)];
    const uint32_t Candidate = Slot;
    Slot = static_cast<uint32_t>(Pos);
    if (Candidate == NoPosition || Pos - Candidate > MaxOffset ||
        load32(Data + Candidate) != Sequence) {
      ++Pos;
      continue;
    }
    size_t MatchLen = 4;
    while (Pos + MatchLen < Size &&
           Data[Candidate + MatchLen] == Data[Pos + MatchLen])
      ++MatchLen;
    emitSequence(Out, Data + Anchor, Pos - Anchor, Pos - Candidate, MatchLen);
    Pos += MatchLen;
    Anchor = Pos;
    if (Out.size() >= Size) {
      Out.clear();
      return 0; // Expanding: caller stores raw.
    }
  }

  emitSequence(Out, Data + Anchor, Size - Anchor, 0, 0);
  if (Out.size() >= Size) {
    Out.clear();
    return 0;
  }
  return Out.size();
}

namespace {

/// Reads a nibble extension; false on truncation or a length already
/// past \p Bound (bounds the adversarial 255... stream early).
bool readExtension(const uint8_t *In, size_t InSize, size_t &IP, size_t &Len,
                   size_t Bound) {
  for (;;) {
    if (IP >= InSize)
      return false;
    const uint8_t B = In[IP++];
    Len += B;
    if (Len > Bound)
      return false;
    if (B < 255)
      return true;
  }
}

} // namespace

bool exterminator::lzDecompress(const uint8_t *Comp, size_t CompSize,
                                uint8_t *Out, size_t RawSize) {
  size_t IP = 0;
  size_t OP = 0;
  for (;;) {
    if (IP >= CompSize)
      return false; // Truncated: every stream ends with a terminal token.
    const uint8_t Token = Comp[IP++];
    size_t LiteralLen = Token >> 4;
    if (LiteralLen == 15 &&
        !readExtension(Comp, CompSize, IP, LiteralLen, RawSize))
      return false;
    if (LiteralLen > RawSize - OP || LiteralLen > CompSize - IP)
      return false;
    std::memcpy(Out + OP, Comp + IP, LiteralLen);
    OP += LiteralLen;
    IP += LiteralLen;

    if (IP == CompSize)
      // Terminal sequence: literals only, exact raw size.
      return OP == RawSize && (Token & 0x0f) == 0;

    if (CompSize - IP < 2)
      return false;
    const size_t Offset = size_t(Comp[IP]) | size_t(Comp[IP + 1]) << 8;
    IP += 2;
    if (Offset == 0 || Offset > OP)
      return false; // Back-reference before the start of output.
    size_t MatchLen = (Token & 0x0f) + size_t(4);
    if ((Token & 0x0f) == 15 &&
        !readExtension(Comp, CompSize, IP, MatchLen, RawSize))
      return false;
    if (MatchLen > RawSize - OP)
      return false;
    // Byte-wise: matches may overlap their own output (RLE idiom).
    const uint8_t *Src = Out + OP - Offset;
    for (size_t I = 0; I < MatchLen; ++I)
      Out[OP + I] = Src[I];
    OP += MatchLen;
  }
}

//===----------------------------------------------------------------------===//
// Envelope
//===----------------------------------------------------------------------===//

std::vector<uint8_t> exterminator::encodeCodecBlock(const uint8_t *Data,
                                                    size_t Size) {
  ByteWriter Writer;
  std::vector<uint8_t> Lz;
  const size_t CompSize = lzCompress(Data, Size, Lz);
  const bool Stored = CompSize == 0;
  if (Stored) {
    Writer.writeU8(static_cast<uint8_t>(CodecId::Raw));
    Writer.writeVarU64(Size);
    Writer.writeBytes(Data, Size);
  } else {
    Writer.writeU8(static_cast<uint8_t>(CodecId::Lz));
    Writer.writeVarU64(Size);
    Writer.writeBytes(Lz.data(), CompSize);
  }
  codecdetail::noteCompress(Size, Writer.size(), Stored);
  return Writer.buffer();
}

std::vector<uint8_t>
exterminator::encodeCodecBlock(const std::vector<uint8_t> &Raw) {
  return encodeCodecBlock(Raw.data(), Raw.size());
}

bool exterminator::decodeCodecBlock(const uint8_t *Data, size_t Size,
                                    std::vector<uint8_t> &RawOut,
                                    uint64_t MaxRawSize) {
  ByteReader Reader(Data, Size);
  const uint8_t Id = Reader.readU8();
  const uint64_t RawSize = Reader.readVarU64();
  // Budget check precedes the resize: a bomb declaring terabytes is
  // rejected for the price of two varint bytes.
  if (Reader.failed() || RawSize > MaxRawSize) {
    codecdetail::noteReject();
    return false;
  }
  const size_t BodySize = Reader.remaining();
  const uint8_t *Body = Data + (Size - BodySize);
  if (Id == static_cast<uint8_t>(CodecId::Raw)) {
    if (BodySize != RawSize) {
      codecdetail::noteReject();
      return false;
    }
    RawOut.assign(Body, Body + BodySize);
  } else if (Id == static_cast<uint8_t>(CodecId::Lz)) {
    RawOut.resize(RawSize);
    if (!lzDecompress(Body, BodySize, RawOut.data(), RawSize)) {
      codecdetail::noteReject();
      return false;
    }
  } else {
    codecdetail::noteReject();
    return false;
  }
  codecdetail::noteDecompress(RawSize);
  return true;
}

bool exterminator::decodeCodecBlock(const std::vector<uint8_t> &Envelope,
                                    std::vector<uint8_t> &RawOut,
                                    uint64_t MaxRawSize) {
  return decodeCodecBlock(Envelope.data(), Envelope.size(), RawOut,
                          MaxRawSize);
}

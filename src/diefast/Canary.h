//===- diefast/Canary.h - Random canaries ----------------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DieFast's random canaries (§3.3).  Instead of a fixed pattern like
/// 0xDEADBEEF — which a program could legitimately store — DieFast picks a
/// random 32-bit value at startup, so any fixed data value collides with
/// it with probability at most 1/2^31.  The canary's last bit is set: if
/// the program dereferences a canary as a pointer, the misalignment traps
/// (§3.3, "Random Canaries").
///
/// Canaries fill *freed* slots (implicit fence-posts): because allocated
/// objects are separated by E(M-1) freed slots on a DieHard heap, freed
/// space acts as fence-posts with zero space overhead.
///
/// fill/verify run on every malloc and every free, so they dispatch to
/// the widest vector unit the CPU offers: AVX2 or SSE2 on x86-64, with a
/// portable word-wise fallback elsewhere.  Selection happens once at
/// startup through function pointers (the libp pattern); the
/// canary_dispatch namespace exposes the knob the benchmarks use to pin
/// the scalar baseline.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_DIEFAST_CANARY_H
#define EXTERMINATOR_DIEFAST_CANARY_H

#include "support/RandomGenerator.h"

#include <cstddef>
#include <cstdint>
#include <optional>

namespace exterminator {

/// Controls which fill/verify implementation the Canary hot path uses.
namespace canary_dispatch {

enum class Mode {
  /// Best implementation the running CPU supports (startup default).
  Auto,
  /// Portable word-at-a-time code (bench baseline toggle).
  Scalar,
  /// 16-byte SSE2 kernels (x86-64 only; ignored elsewhere).
  Sse2,
  /// 32-byte AVX2 kernels (requires AVX2 hardware; ignored without it).
  Avx2,
  /// 64-byte AVX-512BW fill/verify/match kernels (verify-zero and the
  /// pair scan stay on their AVX2/scalar forms); requires AVX-512BW
  /// hardware, ignored without it.
  Avx512,
};

/// Repoints the hot-path function pointers; Auto re-runs CPU detection.
/// Unsupported requests degrade to the best available implementation.
void force(Mode M);

/// Name of the active implementation: "avx512", "avx2", "sse2", or
/// "scalar".
const char *activeName();

} // namespace canary_dispatch

/// Startup-selected kernel pointers (the libp pattern).  Exposed in the
/// header only so Canary's wrappers can dispatch without an extra call
/// through the .cpp; use canary_dispatch to change them.
namespace canary_detail {

using FillFn = void (*)(uint8_t *Bytes, size_t Size, uint64_t Word);
using VerifyFn = bool (*)(const uint8_t *Bytes, size_t Size, uint64_t Word);
/// Number of leading 8-byte words of \p Bytes equal to \p Word (the
/// repeat scan of the heap-image run encoder): compares vector-width
/// blocks and converts the first mismatching byte back to a word count.
using MatchWordsFn = size_t (*)(const uint8_t *Bytes, size_t Words,
                                uint64_t Word);
/// Smallest index I with word[I] == word[I+1] (where the run encoder's
/// next pattern run starts), or \p Words when no adjacent pair matches.
/// Lets literal regions scan at vector width instead of word-at-a-time.
using FindPairFn = size_t (*)(const uint8_t *Bytes, size_t Words);
/// Fused verify+zero: checks \p Size bytes against the pattern while
/// zeroing the first \p ZeroPrefix bytes of every block it has just
/// verified.  Returns the number of prefix bytes zeroed before a
/// mismatch, or AllVerifiedSentinel when the whole region was intact
/// (prefix then fully zeroed).
using VerifyZeroFn = size_t (*)(uint8_t *Bytes, size_t Size,
                                size_t ZeroPrefix, uint64_t Word);

inline constexpr size_t AllVerifiedSentinel = ~size_t(0);

extern FillFn Fill;
extern VerifyFn Verify;
extern VerifyZeroFn VerifyZero;
extern MatchWordsFn MatchWords;
extern FindPairFn FindPair;

} // namespace canary_detail

/// Byte range [Begin, End) of corrupted canary within a slot.
struct CorruptionExtent {
  size_t Begin = 0;
  size_t End = 0;
  size_t length() const { return End - Begin; }
};

/// A random 32-bit canary with its low bit set.
class Canary {
public:
  /// Draws a fresh random canary from \p Rng.
  static Canary random(RandomGenerator &Rng);

  /// Reconstructs a canary with a known value (heap-image processing).
  static Canary fromValue(uint32_t Value) { return Canary(Value); }

  uint32_t value() const { return Value; }

  /// Return value of verifyAndZeroPrefix when the whole region held the
  /// intact pattern.
  static constexpr size_t AllVerified = canary_detail::AllVerifiedSentinel;

  /// Fills \p Size bytes at \p Ptr with the repeated canary pattern.
  void fill(void *Ptr, size_t Size) const {
    canary_detail::Fill(static_cast<uint8_t *>(Ptr), Size, patternWord());
  }

  /// True if \p Size bytes at \p Ptr hold the intact pattern.
  bool verify(const void *Ptr, size_t Size) const {
    return canary_detail::Verify(static_cast<const uint8_t *>(Ptr), Size,
                                 patternWord());
  }

  /// The DieFast malloc fast path (§3.3 + §2.1 fused): verifies \p Size
  /// bytes and zero-fills the first \p ZeroPrefix of them in the same
  /// sweep, so a reused slot is read once instead of verify-then-memset
  /// passes.  Only already-verified bytes are ever zeroed.  Returns
  /// AllVerified on an intact pattern (prefix fully zeroed); otherwise
  /// the number of prefix bytes zeroed before the corruption — refill
  /// that many bytes (they held intact canary) to restore the slot for
  /// evidence collection.
  size_t verifyAndZeroPrefix(void *Ptr, size_t Size, size_t ZeroPrefix) const {
    return canary_detail::VerifyZero(static_cast<uint8_t *>(Ptr), Size,
                                     ZeroPrefix, patternWord());
  }

  /// The smallest byte range covering every corrupted byte, or
  /// std::nullopt if the pattern is intact.
  std::optional<CorruptionExtent> findCorruption(const void *Ptr,
                                                 size_t Size) const;

  /// The canary byte expected at offset \p Offset of a filled region.
  uint8_t byteAt(size_t Offset) const {
    return static_cast<uint8_t>(Value >> (8 * (Offset % 4)));
  }

  /// The pattern repeated into one 64-bit word (hot-path fill/verify).
  uint64_t patternWord() const;

private:
  explicit Canary(uint32_t Value) : Value(Value) {}

  uint32_t Value;
};

} // namespace exterminator

#endif // EXTERMINATOR_DIEFAST_CANARY_H

//===- diefast/Canary.h - Random canaries ----------------------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DieFast's random canaries (§3.3).  Instead of a fixed pattern like
/// 0xDEADBEEF — which a program could legitimately store — DieFast picks a
/// random 32-bit value at startup, so any fixed data value collides with
/// it with probability at most 1/2^31.  The canary's last bit is set: if
/// the program dereferences a canary as a pointer, the misalignment traps
/// (§3.3, "Random Canaries").
///
/// Canaries fill *freed* slots (implicit fence-posts): because allocated
/// objects are separated by E(M-1) freed slots on a DieHard heap, freed
/// space acts as fence-posts with zero space overhead.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_DIEFAST_CANARY_H
#define EXTERMINATOR_DIEFAST_CANARY_H

#include "support/RandomGenerator.h"

#include <cstddef>
#include <cstdint>
#include <optional>

namespace exterminator {

/// Byte range [Begin, End) of corrupted canary within a slot.
struct CorruptionExtent {
  size_t Begin = 0;
  size_t End = 0;
  size_t length() const { return End - Begin; }
};

/// A random 32-bit canary with its low bit set.
class Canary {
public:
  /// Draws a fresh random canary from \p Rng.
  static Canary random(RandomGenerator &Rng);

  /// Reconstructs a canary with a known value (heap-image processing).
  static Canary fromValue(uint32_t Value) { return Canary(Value); }

  uint32_t value() const { return Value; }

  /// Fills \p Size bytes at \p Ptr with the repeated canary pattern.
  void fill(void *Ptr, size_t Size) const;

  /// True if \p Size bytes at \p Ptr hold the intact pattern.
  bool verify(const void *Ptr, size_t Size) const;

  /// The smallest byte range covering every corrupted byte, or
  /// std::nullopt if the pattern is intact.
  std::optional<CorruptionExtent> findCorruption(const void *Ptr,
                                                 size_t Size) const;

  /// The canary byte expected at offset \p Offset of a filled region.
  uint8_t byteAt(size_t Offset) const {
    return static_cast<uint8_t>(Value >> (8 * (Offset % 4)));
  }

  /// The pattern repeated into one 64-bit word (hot-path fill/verify).
  uint64_t patternWord() const;

private:
  explicit Canary(uint32_t Value) : Value(Value) {}

  uint32_t Value;
};

} // namespace exterminator

#endif // EXTERMINATOR_DIEFAST_CANARY_H

//===- diefast/CanaryOps.h - Shared per-slot canary operations -*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-slot halves of the DieFast protocol (§3.3, Figure 4, §2.1),
/// factored out of DieFastHeap so the concurrent allocator front-end
/// (PR 7) applies byte-for-byte the same semantics to slots that pass
/// through thread-cache magazines: verify-or-quarantine on reuse,
/// neighbor sweeps and probabilistic canary fill on free.  Only the slot
/// mechanics live here; quarantining, error signalling, and retry policy
/// stay with the calling heap.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_DIEFAST_CANARYOPS_H
#define EXTERMINATOR_DIEFAST_CANARYOPS_H

#include "alloc/DieHardHeap.h"
#include "alloc/Miniheap.h"
#include "diefast/Canary.h"
#include "support/RandomGenerator.h"

#include <cstring>

namespace exterminator {
namespace canary_ops {

/// The alloc-time check on a reserved slot (Figure 4 + §2.1): verifies
/// the previous tenant's canary when one was laid down, zero-filling the
/// first \p RequestSize bytes per \p ZeroFill.  When the canary check and
/// the zeroing can fuse (canaried slot, zero-fill on, fast path), the
/// slot is traversed once; the slot's tail keeps whatever canary it
/// carried, which stays sound because the next free re-fills the whole
/// slot.  Returns true when the slot is clean and ready to commit; false
/// when the canary was corrupted — intact-but-zeroed prefix bytes are
/// restored first, so the caller quarantines a slot carrying its exact
/// corruption evidence.
inline bool prepareReusedSlot(const Canary &C, const SlotMetadata &Meta,
                              uint8_t *Ptr, size_t ObjectSize,
                              size_t RequestSize, bool ZeroFill,
                              bool LegacyHotPath) {
  if (Meta.Canaried && ZeroFill && !LegacyHotPath) {
    const size_t Zeroed = C.verifyAndZeroPrefix(Ptr, ObjectSize, RequestSize);
    if (Zeroed != Canary::AllVerified) {
      // Only intact canary bytes were zeroed; restore them so the
      // quarantined slot carries its exact corruption evidence.
      C.fill(Ptr, Zeroed);
      return false;
    }
    return true;
  }
  if (Meta.Canaried && !C.verify(Ptr, ObjectSize))
    return false;
  if (ZeroFill)
    std::memset(Ptr, 0, RequestSize);
  return true;
}

/// The post-free neighbor sweep (§3.3, "implicit fence-posts"): visits
/// the freed slot's address-order neighbors that are free and canaried
/// and whose canary no longer verifies, invoking
/// \p OnCorrupt(ObjectRef) for each.  Random placement means the
/// identity of these neighbors differs from run to run, so repeated runs
/// check different pairs and detect overflows within E(H) frees.
template <typename OnCorruptT>
inline void sweepFreedNeighbors(Miniheap &Mini, const Canary &C,
                                const ObjectRef &Ref, OnCorruptT OnCorrupt) {
  const auto CheckOne = [&](size_t Slot) {
    if (Mini.isAllocated(Slot) || !Mini.slot(Slot).Canaried)
      return;
    if (!C.verify(Mini.slotPointer(Slot), Mini.objectSize()))
      OnCorrupt(ObjectRef{Ref.ClassIndex, Ref.HeapIndex, Slot});
  };
  if (Ref.SlotIndex > 0)
    CheckOne(Ref.SlotIndex - 1);
  if (Ref.SlotIndex + 1 < Mini.numSlots())
    CheckOne(Ref.SlotIndex + 1);
}

/// Probabilistically fills a just-freed slot with canaries and records
/// the outcome in its metadata (§3.3; p < 1 makes each run a Bernoulli
/// trial over which freed objects got canaried, §5.2).
inline void canaryFillFreedSlot(Miniheap &Mini, const Canary &C,
                                RandomGenerator &Rng, double Probability,
                                size_t Slot) {
  SlotMetadata &Meta = Mini.slot(Slot);
  if (Rng.chance(Probability)) {
    C.fill(Mini.slotPointer(Slot), Mini.objectSize());
    Meta.Canaried = true;
  } else {
    Meta.Canaried = false;
  }
}

} // namespace canary_ops
} // namespace exterminator

#endif // EXTERMINATOR_DIEFAST_CANARYOPS_H

//===- diefast/ErrorSignal.h - DieFast error reports -----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The error signals DieFast raises (§3.3–3.4).  In the paper these are
/// delivered as signals that make Exterminator force a heap-image dump;
/// here they are a callback carrying the same information (what kind of
/// check failed, on which slot, at what allocation time).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_DIEFAST_ERRORSIGNAL_H
#define EXTERMINATOR_DIEFAST_ERRORSIGNAL_H

#include "alloc/DieHardHeap.h"

#include <cstdint>
#include <functional>

namespace exterminator {

/// Which DieFast check detected heap corruption.
enum class ErrorSignalKind {
  /// verifyCanary failed on the slot chosen by an allocation.
  CanaryCorruptOnAlloc,
  /// verifyCanary failed on a free neighbor of a just-freed object.
  CanaryCorruptOnFree,
};

/// One detected corruption event.
struct ErrorSignal {
  ErrorSignalKind Kind;
  /// The corrupted (and now quarantined) slot.
  ObjectRef Where;
  /// Allocation-clock value when the corruption was detected.
  uint64_t DetectionTime;
};

/// Receives DieFast error signals; typically dumps a heap image.
using ErrorSignalHandler = std::function<void(const ErrorSignal &)>;

} // namespace exterminator

#endif // EXTERMINATOR_DIEFAST_ERRORSIGNAL_H

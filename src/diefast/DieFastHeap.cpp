//===- diefast/DieFastHeap.cpp - Probabilistic debugging allocator ---------===//

#include "diefast/DieFastHeap.h"

#include "diefast/CanaryOps.h"

using namespace exterminator;

DieFastHeap::DieFastHeap(const DieFastConfig &Config,
                         const CallContext *Context)
    : Config(Config), Heap(Config.Heap, Context),
      // The canary stream must be independent of heap placement, or the
      // canary value would leak the layout; fork a derived seed.
      Rng(Config.Heap.Seed ^ 0xca11a7c0ffee1234ULL),
      HeapCanary(Canary::random(Rng)) {}

DieFastHeap::~DieFastHeap() = default;

void *DieFastHeap::allocate(size_t Size) {
  if (!sizeclass::fits(Size))
    return nullptr;

  Heap.tickAllocationClock(Size);
  if (Config.Heap.LegacyHotPath)
    Stats = Heap.stats(); // pre-PR-1 per-op copy, kept for the bench toggle

  const unsigned ClassIndex = sizeclass::classFor(Size);
  for (;;) {
    const ObjectRef Ref = Heap.reserveSlot(ClassIndex);
    Miniheap &Mini = Heap.miniheap(Ref);
    uint8_t *Ptr = Mini.slotPointer(Ref.SlotIndex);

    // Figure 4: check that the object either wasn't canary-filled or is
    // uncorrupted, fusing the §2.1 zero-fill into the verification sweep
    // (see canary_ops::prepareReusedSlot).  A corrupt slot is never
    // reused ("bad object isolation"): mark it allocated-for-good and
    // pick another slot.
    if (!canary_ops::prepareReusedSlot(
            HeapCanary, Mini.slot(Ref.SlotIndex), Ptr, Mini.objectSize(),
            Size, Config.ZeroFillAllocations, Config.Heap.LegacyHotPath)) {
      Heap.markBad(Ref);
      signalError(ErrorSignalKind::CanaryCorruptOnAlloc, Ref);
      continue;
    }

    Heap.commitAllocation(Ref, Size);
    return Ptr;
  }
}

void DieFastHeap::deallocate(void *Ptr) {
  deallocateImpl(Ptr, std::nullopt);
}

void DieFastHeap::deallocateWithSite(void *Ptr, SiteId FreeSite) {
  deallocateImpl(Ptr, FreeSite);
}

void DieFastHeap::deallocateResolved(const ObjectRef &Ref, SiteId FreeSite) {
  if (!Heap.deallocateResolved(Ref, FreeSite))
    return; // Double free: counted and ignored (Table 1).
  afterFree(Ref);
}

void DieFastHeap::deallocateImpl(void *Ptr,
                                 std::optional<SiteId> SiteOverride) {
  ObjectRef Ref;
  if (!Heap.deallocateWithRef(Ptr, Ref, SiteOverride))
    return; // Invalid or double free: counted and ignored (Table 1).
  afterFree(Ref);
}

void DieFastHeap::afterFree(const ObjectRef &Ref) {
  if (Config.Heap.LegacyHotPath)
    Stats = Heap.stats(); // pre-PR-1 per-op copy, kept for the bench toggle

  // Check the preceding and following objects (§3.3); neighbors live in
  // the freed slot's own miniheap, so it is resolved exactly once for the
  // neighbor checks and the canary fill.  Quarantine preserves the
  // corrupted contents for the error isolator.
  Miniheap &Mini = Heap.miniheap(Ref);
  canary_ops::sweepFreedNeighbors(
      Mini, HeapCanary, Ref, [&](const ObjectRef &Corrupt) {
        Heap.quarantine(Corrupt);
        signalError(ErrorSignalKind::CanaryCorruptOnFree, Corrupt);
      });

  // Probabilistically fill the freed object with canaries.  Cumulative
  // mode needs p < 1 to turn each run into a Bernoulli trial over which
  // freed objects got canaried (§5.2).
  canary_ops::canaryFillFreedSlot(Mini, HeapCanary, Rng,
                                  Config.CanaryFillProbability,
                                  Ref.SlotIndex);
}

void DieFastHeap::signalError(ErrorSignalKind Kind, const ObjectRef &Where) {
  ++ErrorsSignalled;
  if (OnError)
    OnError(ErrorSignal{Kind, Where, Heap.allocationClock()});
}

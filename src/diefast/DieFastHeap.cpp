//===- diefast/DieFastHeap.cpp - Probabilistic debugging allocator ---------===//

#include "diefast/DieFastHeap.h"

#include <cstring>

using namespace exterminator;

DieFastHeap::DieFastHeap(const DieFastConfig &Config,
                         const CallContext *Context)
    : Config(Config), Heap(Config.Heap, Context),
      // The canary stream must be independent of heap placement, or the
      // canary value would leak the layout; fork a derived seed.
      Rng(Config.Heap.Seed ^ 0xca11a7c0ffee1234ULL),
      HeapCanary(Canary::random(Rng)) {}

DieFastHeap::~DieFastHeap() = default;

void *DieFastHeap::allocate(size_t Size) {
  if (!sizeclass::fits(Size))
    return nullptr;

  Heap.tickAllocationClock(Size);
  if (Config.Heap.LegacyHotPath)
    Stats = Heap.stats(); // pre-PR-1 per-op copy, kept for the bench toggle

  const unsigned ClassIndex = sizeclass::classFor(Size);
  for (;;) {
    const ObjectRef Ref = Heap.reserveSlot(ClassIndex);
    Miniheap &Mini = Heap.miniheap(Ref);
    SlotMetadata &Meta = Mini.slot(Ref.SlotIndex);
    uint8_t *Ptr = Mini.slotPointer(Ref.SlotIndex);

    // Figure 4: check that the object either wasn't canary-filled or is
    // uncorrupted.  A corrupt slot is never reused ("bad object
    // isolation"): mark it allocated-for-good and pick another slot.
    //
    // Zeroing the requested bytes (§2.1) is fused into the verification
    // sweep: the slot is traversed once instead of verify-then-memset.
    // The slot's tail keeps whatever canary it carried: the next free
    // re-fills the whole slot, so the alloc-time whole-slot verification
    // stays sound.
    if (Meta.Canaried && Config.ZeroFillAllocations &&
        !Config.Heap.LegacyHotPath) {
      const size_t Zeroed =
          HeapCanary.verifyAndZeroPrefix(Ptr, Mini.objectSize(), Size);
      if (Zeroed != Canary::AllVerified) {
        // Only intact canary bytes were zeroed; restore them so the
        // quarantined slot carries its exact corruption evidence.
        HeapCanary.fill(Ptr, Zeroed);
        Heap.markBad(Ref);
        signalError(ErrorSignalKind::CanaryCorruptOnAlloc, Ref);
        continue;
      }
      Heap.commitAllocation(Ref, Size);
      return Ptr;
    }

    if (Meta.Canaried && !HeapCanary.verify(Ptr, Mini.objectSize())) {
      Heap.markBad(Ref);
      signalError(ErrorSignalKind::CanaryCorruptOnAlloc, Ref);
      continue;
    }

    Heap.commitAllocation(Ref, Size);
    if (Config.ZeroFillAllocations)
      std::memset(Ptr, 0, Size);
    return Ptr;
  }
}

void DieFastHeap::deallocate(void *Ptr) {
  deallocateImpl(Ptr, std::nullopt);
}

void DieFastHeap::deallocateWithSite(void *Ptr, SiteId FreeSite) {
  deallocateImpl(Ptr, FreeSite);
}

void DieFastHeap::deallocateResolved(const ObjectRef &Ref, SiteId FreeSite) {
  if (!Heap.deallocateResolved(Ref, FreeSite))
    return; // Double free: counted and ignored (Table 1).
  afterFree(Ref);
}

void DieFastHeap::deallocateImpl(void *Ptr,
                                 std::optional<SiteId> SiteOverride) {
  ObjectRef Ref;
  if (!Heap.deallocateWithRef(Ptr, Ref, SiteOverride))
    return; // Invalid or double free: counted and ignored (Table 1).
  afterFree(Ref);
}

void DieFastHeap::afterFree(const ObjectRef &Ref) {
  if (Config.Heap.LegacyHotPath)
    Stats = Heap.stats(); // pre-PR-1 per-op copy, kept for the bench toggle

  // Check the preceding and following objects: random placement means the
  // identity of these neighbors differs from run to run, so repeated runs
  // check different pairs and detect overflows within E(H) frees (§3.3).
  // Neighbors live in the freed slot's own miniheap, so it is resolved
  // exactly once for the neighbor checks and the canary fill.
  Miniheap &Mini = Heap.miniheap(Ref);
  if (Ref.SlotIndex > 0) {
    const size_t Prev = Ref.SlotIndex - 1;
    if (!Mini.isAllocated(Prev) && Mini.slot(Prev).Canaried)
      checkSlot(Mini, ObjectRef{Ref.ClassIndex, Ref.HeapIndex, Prev},
                ErrorSignalKind::CanaryCorruptOnFree);
  }
  if (Ref.SlotIndex + 1 < Mini.numSlots()) {
    const size_t Next = Ref.SlotIndex + 1;
    if (!Mini.isAllocated(Next) && Mini.slot(Next).Canaried)
      checkSlot(Mini, ObjectRef{Ref.ClassIndex, Ref.HeapIndex, Next},
                ErrorSignalKind::CanaryCorruptOnFree);
  }

  // Probabilistically fill the freed object with canaries.  Cumulative
  // mode needs p < 1 to turn each run into a Bernoulli trial over which
  // freed objects got canaried (§5.2).
  SlotMetadata &Meta = Mini.slot(Ref.SlotIndex);
  if (Rng.chance(Config.CanaryFillProbability)) {
    HeapCanary.fill(Mini.slotPointer(Ref.SlotIndex), Mini.objectSize());
    Meta.Canaried = true;
  } else {
    Meta.Canaried = false;
  }
}

bool DieFastHeap::checkSlot(Miniheap &Mini, const ObjectRef &Ref,
                            ErrorSignalKind Kind) {
  const uint8_t *Ptr = Mini.slotPointer(Ref.SlotIndex);
  if (HeapCanary.verify(Ptr, Mini.objectSize()))
    return true;
  // Quarantine preserves the corrupted contents for the error isolator.
  Heap.quarantine(Ref);
  signalError(Kind, Ref);
  return false;
}

void DieFastHeap::signalError(ErrorSignalKind Kind, const ObjectRef &Where) {
  ++ErrorsSignalled;
  if (OnError)
    OnError(ErrorSignal{Kind, Where, Heap.allocationClock()});
}

//===- diefast/DieFastHeap.cpp - Probabilistic debugging allocator ---------===//

#include "diefast/DieFastHeap.h"

#include <cstring>

using namespace exterminator;

DieFastHeap::DieFastHeap(const DieFastConfig &Config,
                         const CallContext *Context)
    : Config(Config), Heap(Config.Heap, Context),
      // The canary stream must be independent of heap placement, or the
      // canary value would leak the layout; fork a derived seed.
      Rng(Config.Heap.Seed ^ 0xca11a7c0ffee1234ULL),
      HeapCanary(Canary::random(Rng)) {}

DieFastHeap::~DieFastHeap() = default;

void *DieFastHeap::allocate(size_t Size) {
  if (!sizeclass::fits(Size))
    return nullptr;

  Heap.tickAllocationClock(Size);
  Stats = Heap.stats();

  const unsigned ClassIndex = sizeclass::classFor(Size);
  for (;;) {
    const ObjectRef Ref = Heap.reserveSlot(ClassIndex);
    Miniheap &Mini = Heap.miniheap(Ref);
    SlotMetadata &Meta = Mini.slot(Ref.SlotIndex);
    uint8_t *Ptr = Mini.slotPointer(Ref.SlotIndex);

    // Figure 4: check that the object either wasn't canary-filled or is
    // uncorrupted.  A corrupt slot is never reused ("bad object
    // isolation"): mark it allocated-for-good and pick another slot.
    if (Meta.Canaried && !HeapCanary.verify(Ptr, Mini.objectSize())) {
      Heap.markBad(Ref);
      signalError(ErrorSignalKind::CanaryCorruptOnAlloc, Ref);
      continue;
    }

    Heap.commitAllocation(Ref, Size);
    // Zero the requested bytes (§2.1).  The slot's tail keeps whatever
    // canary it carried: the next free re-fills the whole slot, so the
    // alloc-time whole-slot verification stays sound.
    if (Config.ZeroFillAllocations)
      std::memset(Ptr, 0, Size);
    return Ptr;
  }
}

void DieFastHeap::deallocate(void *Ptr) {
  deallocateImpl(Ptr, std::nullopt);
}

void DieFastHeap::deallocateWithSite(void *Ptr, SiteId FreeSite) {
  deallocateImpl(Ptr, FreeSite);
}

void DieFastHeap::deallocateResolved(const ObjectRef &Ref, SiteId FreeSite) {
  if (!Heap.deallocateResolved(Ref, FreeSite)) {
    Stats = Heap.stats();
    return; // Double free: counted and ignored (Table 1).
  }
  afterFree(Ref);
}

void DieFastHeap::deallocateImpl(void *Ptr,
                                 std::optional<SiteId> SiteOverride) {
  ObjectRef Ref;
  if (!Heap.deallocateWithRef(Ptr, Ref, SiteOverride)) {
    Stats = Heap.stats();
    return; // Invalid or double free: counted and ignored (Table 1).
  }
  afterFree(Ref);
}

void DieFastHeap::afterFree(const ObjectRef &Ref) {
  Stats = Heap.stats();

  // Check the preceding and following objects: random placement means the
  // identity of these neighbors differs from run to run, so repeated runs
  // check different pairs and detect overflows within E(H) frees (§3.3).
  if (std::optional<ObjectRef> Prev = Heap.previousSlot(Ref)) {
    const Miniheap &Mini = Heap.miniheap(*Prev);
    if (!Mini.isAllocated(Prev->SlotIndex) && Mini.slot(Prev->SlotIndex).Canaried)
      checkSlot(*Prev, ErrorSignalKind::CanaryCorruptOnFree);
  }
  if (std::optional<ObjectRef> Next = Heap.nextSlot(Ref)) {
    const Miniheap &Mini = Heap.miniheap(*Next);
    if (!Mini.isAllocated(Next->SlotIndex) && Mini.slot(Next->SlotIndex).Canaried)
      checkSlot(*Next, ErrorSignalKind::CanaryCorruptOnFree);
  }

  // Probabilistically fill the freed object with canaries.  Cumulative
  // mode needs p < 1 to turn each run into a Bernoulli trial over which
  // freed objects got canaried (§5.2).
  Miniheap &Mini = Heap.miniheap(Ref);
  SlotMetadata &Meta = Mini.slot(Ref.SlotIndex);
  if (Rng.chance(Config.CanaryFillProbability)) {
    HeapCanary.fill(Mini.slotPointer(Ref.SlotIndex), Mini.objectSize());
    Meta.Canaried = true;
  } else {
    Meta.Canaried = false;
  }
}

bool DieFastHeap::checkSlot(const ObjectRef &Ref, ErrorSignalKind Kind) {
  Miniheap &Mini = Heap.miniheap(Ref);
  const uint8_t *Ptr = Mini.slotPointer(Ref.SlotIndex);
  if (HeapCanary.verify(Ptr, Mini.objectSize()))
    return true;
  // Quarantine preserves the corrupted contents for the error isolator.
  Heap.quarantine(Ref);
  signalError(Kind, Ref);
  return false;
}

void DieFastHeap::signalError(ErrorSignalKind Kind, const ObjectRef &Where) {
  ++ErrorsSignalled;
  if (OnError)
    OnError(ErrorSignal{Kind, Where, Heap.allocationClock()});
}

//===- diefast/DieFastHeap.h - Probabilistic debugging allocator -*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DieFast (paper §3.3, Figure 4): DieHard's randomized heap extended to
/// *detect and expose* memory errors rather than merely tolerate them.
///
/// On every allocation, the memory about to be returned is checked: if it
/// was canary-filled when freed and the canary is no longer intact, the
/// slot is quarantined (bad-object isolation preserves its contents and
/// its previous owner's metadata for the error isolator), an error is
/// signalled, and a different slot is chosen.  On every deallocation the
/// freed slot's address-order neighbors are checked the same way, and the
/// freed slot itself is filled with canaries — always in iterative and
/// replicated modes, with probability p in cumulative mode (needed to
/// isolate read-only dangling pointers, §5.2).
///
/// Allocated objects are zero-filled: Exterminator cannot repair
/// uninitialized reads, so it makes them deterministic instead (§2.1).
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_DIEFAST_DIEFASTHEAP_H
#define EXTERMINATOR_DIEFAST_DIEFASTHEAP_H

#include "alloc/DieHardHeap.h"
#include "diefast/Canary.h"
#include "diefast/ErrorSignal.h"

#include <cstdint>

namespace exterminator {

/// Tuning knobs for DieFast.
struct DieFastConfig {
  /// The underlying DieHard heap configuration.
  DieHardConfig Heap;
  /// Probability p of filling a freed object with canaries.  Iterative
  /// and replicated modes use 1.0 ("Exterminator always fills freed
  /// objects with canaries when not running in cumulative mode"); the
  /// cumulative mode uses p = 1/2 (§5.2).
  double CanaryFillProbability = 1.0;
  /// Zero-fill allocated objects (§2.1); on by default.
  bool ZeroFillAllocations = true;
};

/// The DieFast probabilistic debugging allocator.
class DieFastHeap : public Allocator {
public:
  explicit DieFastHeap(const DieFastConfig &Config = DieFastConfig(),
                       const CallContext *Context = nullptr);
  ~DieFastHeap() override;

  void *allocate(size_t Size) override;
  void deallocate(void *Ptr) override;
  const char *name() const override { return "diefast"; }

  /// Counters live in the underlying DieHard heap; forwarding keeps the
  /// per-operation stats copy off the hot path.
  const AllocatorStats &stats() const override { return Heap.stats(); }

  /// Like \c deallocate but records \p FreeSite instead of sampling the
  /// call context (deferred frees keep their original site, §6.3).
  void deallocateWithSite(void *Ptr, SiteId FreeSite);

  /// Frees an already-resolved live slot (single pointer lookup across
  /// the whole correcting/DieFast/DieHard stack).
  void deallocateResolved(const ObjectRef &Ref, SiteId FreeSite);

  /// Installs the handler invoked on each detected corruption.
  void setErrorHandler(ErrorSignalHandler Handler) {
    OnError = std::move(Handler);
  }

  /// Number of corruptions signalled so far.
  uint64_t errorsSignalled() const { return ErrorsSignalled; }

  const Canary &canary() const { return HeapCanary; }

  /// The underlying randomized heap (heap-image capture, queries).
  DieHardHeap &heap() { return Heap; }
  const DieHardHeap &heap() const { return Heap; }

  double canaryFillProbability() const {
    return Config.CanaryFillProbability;
  }

private:
  void deallocateImpl(void *Ptr, std::optional<SiteId> SiteOverride);

  /// Neighbor canary checks plus probabilistic canary fill of the slot
  /// that was just freed (the Figure 4 post-free work, via canary_ops).
  void afterFree(const ObjectRef &Ref);

  void signalError(ErrorSignalKind Kind, const ObjectRef &Where);

  DieFastConfig Config;
  DieHardHeap Heap;
  RandomGenerator Rng;
  Canary HeapCanary;
  ErrorSignalHandler OnError;
  uint64_t ErrorsSignalled = 0;
};

} // namespace exterminator

#endif // EXTERMINATOR_DIEFAST_DIEFASTHEAP_H

//===- diefast/Canary.cpp - Random canaries --------------------------------===//

#include "diefast/Canary.h"

#include <cstring>

using namespace exterminator;

Canary Canary::random(RandomGenerator &Rng) {
  // Low bit set: dereferencing the canary as a pointer misaligns and
  // traps, while collision probability with program data stays 1/2^31.
  return Canary(Rng.next32() | 1u);
}

/// The canary pattern repeated into a 64-bit word.  Slots are at least
/// 8-byte aligned and sized, so fill/verify run word-at-a-time on the
/// allocator's hot path (§3.3: the checks run on every malloc and free).
uint64_t Canary::patternWord() const {
  return (uint64_t(Value) << 32) | Value;
}

void Canary::fill(void *Ptr, size_t Size) const {
  uint8_t *Bytes = static_cast<uint8_t *>(Ptr);
  const uint64_t Word = patternWord();
  size_t I = 0;
  for (; I + 8 <= Size; I += 8)
    std::memcpy(Bytes + I, &Word, 8);
  for (; I < Size; ++I)
    Bytes[I] = byteAt(I);
}

bool Canary::verify(const void *Ptr, size_t Size) const {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Ptr);
  const uint64_t Word = patternWord();
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t Have;
    std::memcpy(&Have, Bytes + I, 8);
    if (Have != Word)
      return false;
  }
  for (; I < Size; ++I)
    if (Bytes[I] != byteAt(I))
      return false;
  return true;
}

std::optional<CorruptionExtent>
Canary::findCorruption(const void *Ptr, size_t Size) const {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Ptr);
  const uint64_t Word = patternWord();
  std::optional<CorruptionExtent> Extent;
  auto NoteByte = [&](size_t I) {
    if (Bytes[I] == byteAt(I))
      return;
    if (!Extent)
      Extent = CorruptionExtent{I, I + 1};
    else
      Extent->End = I + 1;
  };
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t Have;
    std::memcpy(&Have, Bytes + I, 8);
    if (Have == Word)
      continue;
    for (size_t B = I; B < I + 8; ++B)
      NoteByte(B);
  }
  for (; I < Size; ++I)
    NoteByte(I);
  return Extent;
}

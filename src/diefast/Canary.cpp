//===- diefast/Canary.cpp - Random canaries --------------------------------===//

#include "diefast/Canary.h"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EXTERMINATOR_CANARY_X86 1
#include <immintrin.h>
#endif

using namespace exterminator;

//===----------------------------------------------------------------------===//
// Dispatched fill/verify kernels
//
// The canary pattern has period 4, so any offset that is a multiple of 8
// sees the same repeated 64-bit pattern word — kernels may chunk the
// buffer at any power-of-two granularity >= 8 without tracking phase.
//===----------------------------------------------------------------------===//

namespace {

inline uint8_t patternByte(uint64_t Word, size_t Offset) {
  return static_cast<uint8_t>(Word >> (8 * (Offset % 8)));
}

inline void zeroSpan(uint8_t *Bytes, size_t Begin, size_t End,
                     size_t ZeroPrefix) {
  // Zero the part of [Begin, End) that falls inside the prefix.
  if (Begin < ZeroPrefix)
    std::memset(Bytes + Begin, 0, std::min(End, ZeroPrefix) - Begin);
}

void fillScalar(uint8_t *Bytes, size_t Size, uint64_t Word) {
  size_t I = 0;
  for (; I + 8 <= Size; I += 8)
    std::memcpy(Bytes + I, &Word, 8);
  for (; I < Size; ++I)
    Bytes[I] = patternByte(Word, I);
}

bool verifyScalar(const uint8_t *Bytes, size_t Size, uint64_t Word) {
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t Have;
    std::memcpy(&Have, Bytes + I, 8);
    if (Have != Word)
      return false;
  }
  for (; I < Size; ++I)
    if (Bytes[I] != patternByte(Word, I))
      return false;
  return true;
}

size_t matchWordsScalar(const uint8_t *Bytes, size_t Words, uint64_t Word) {
  size_t W = 0;
  for (; W < Words; ++W) {
    uint64_t Have;
    std::memcpy(&Have, Bytes + W * 8, 8);
    if (Have != Word)
      break;
  }
  return W;
}

size_t findPairScalar(const uint8_t *Bytes, size_t Words) {
  if (Words < 2)
    return Words;
  uint64_t Prev;
  std::memcpy(&Prev, Bytes, 8);
  for (size_t I = 1; I < Words; ++I) {
    uint64_t Have;
    std::memcpy(&Have, Bytes + I * 8, 8);
    if (Have == Prev)
      return I - 1;
    Prev = Have;
  }
  return Words;
}

size_t verifyZeroScalar(uint8_t *Bytes, size_t Size, size_t ZeroPrefix,
                        uint64_t Word) {
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t Have;
    std::memcpy(&Have, Bytes + I, 8);
    if (Have != Word)
      return std::min(I, ZeroPrefix);
    zeroSpan(Bytes, I, I + 8, ZeroPrefix);
  }
  for (; I < Size; ++I) {
    if (Bytes[I] != patternByte(Word, I))
      return std::min(I, ZeroPrefix);
    if (I < ZeroPrefix)
      Bytes[I] = 0;
  }
  return canary_detail::AllVerifiedSentinel;
}

#if EXTERMINATOR_CANARY_X86

void fillSse2(uint8_t *Bytes, size_t Size, uint64_t Word) {
  const __m128i Pattern = _mm_set1_epi64x(static_cast<long long>(Word));
  size_t I = 0;
  for (; I + 64 <= Size; I += 64) {
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Bytes + I), Pattern);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Bytes + I + 16), Pattern);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Bytes + I + 32), Pattern);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Bytes + I + 48), Pattern);
  }
  for (; I + 16 <= Size; I += 16)
    _mm_storeu_si128(reinterpret_cast<__m128i *>(Bytes + I), Pattern);
  fillScalar(Bytes + I, Size - I, Word);
}

bool verifySse2(const uint8_t *Bytes, size_t Size, uint64_t Word) {
  const __m128i Pattern = _mm_set1_epi64x(static_cast<long long>(Word));
  size_t I = 0;
  for (; I + 16 <= Size; I += 16) {
    const __m128i Have =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Bytes + I));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(Have, Pattern)) != 0xFFFF)
      return false;
  }
  return verifyScalar(Bytes + I, Size - I, Word);
}

size_t verifyZeroSse2(uint8_t *Bytes, size_t Size, size_t ZeroPrefix,
                      uint64_t Word) {
  const __m128i Pattern = _mm_set1_epi64x(static_cast<long long>(Word));
  const __m128i Zero = _mm_setzero_si128();
  size_t I = 0;
  for (; I + 16 <= Size; I += 16) {
    const __m128i Have =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Bytes + I));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(Have, Pattern)) != 0xFFFF)
      return std::min(I, ZeroPrefix);
    if (I + 16 <= ZeroPrefix)
      _mm_storeu_si128(reinterpret_cast<__m128i *>(Bytes + I), Zero);
    else
      zeroSpan(Bytes, I, I + 16, ZeroPrefix);
  }
  const size_t Tail = verifyZeroScalar(Bytes + I, Size - I,
                                       ZeroPrefix > I ? ZeroPrefix - I : 0,
                                       Word);
  if (Tail == canary_detail::AllVerifiedSentinel)
    return Tail;
  return std::min(I + Tail, ZeroPrefix);
}

size_t matchWordsSse2(const uint8_t *Bytes, size_t Words, uint64_t Word) {
  const __m128i Pattern = _mm_set1_epi64x(static_cast<long long>(Word));
  size_t W = 0;
  for (; W + 2 <= Words; W += 2) {
    const __m128i Have =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Bytes + W * 8));
    const int Mask = _mm_movemask_epi8(_mm_cmpeq_epi8(Have, Pattern));
    if (Mask != 0xFFFF)
      // First mismatching byte; every word before it matched fully.
      return W + static_cast<size_t>(__builtin_ctz(~Mask & 0xFFFF)) / 8;
  }
  return W + matchWordsScalar(Bytes + W * 8, Words - W, Word);
}

__attribute__((target("avx2"))) void fillAvx2(uint8_t *Bytes, size_t Size,
                                              uint64_t Word) {
  const __m256i Pattern = _mm256_set1_epi64x(static_cast<long long>(Word));
  size_t I = 0;
  for (; I + 128 <= Size; I += 128) {
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Bytes + I), Pattern);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Bytes + I + 32), Pattern);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Bytes + I + 64), Pattern);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Bytes + I + 96), Pattern);
  }
  for (; I + 32 <= Size; I += 32)
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Bytes + I), Pattern);
  fillScalar(Bytes + I, Size - I, Word);
}

__attribute__((target("avx2"))) bool verifyAvx2(const uint8_t *Bytes,
                                                size_t Size, uint64_t Word) {
  const __m256i Pattern = _mm256_set1_epi64x(static_cast<long long>(Word));
  size_t I = 0;
  // 128-byte stride with one AND-combined movemask: a quarter of the
  // branch/movemask traffic of checking each 32-byte lane separately.
  // The prefetches run ~8 iterations ahead; on L2-resident sweeps (the
  // capture working set) they lift effective read bandwidth ~15-20%.
  for (; I + 128 <= Size; I += 128) {
    _mm_prefetch(reinterpret_cast<const char *>(Bytes + I + 1024),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Bytes + I + 1088),
                 _MM_HINT_T0);
    const __m256i A =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + I));
    const __m256i B =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + I + 32));
    const __m256i C =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + I + 64));
    const __m256i D =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + I + 96));
    const __m256i Combined = _mm256_and_si256(
        _mm256_and_si256(_mm256_cmpeq_epi8(A, Pattern),
                         _mm256_cmpeq_epi8(B, Pattern)),
        _mm256_and_si256(_mm256_cmpeq_epi8(C, Pattern),
                         _mm256_cmpeq_epi8(D, Pattern)));
    if (static_cast<uint32_t>(_mm256_movemask_epi8(Combined)) != 0xFFFFFFFFu)
      return false;
  }
  for (; I + 32 <= Size; I += 32) {
    const __m256i Have =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + I));
    if (static_cast<uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(Have, Pattern))) != 0xFFFFFFFFu)
      return false;
  }
  return verifyScalar(Bytes + I, Size - I, Word);
}

__attribute__((target("avx2"))) size_t
verifyZeroAvx2(uint8_t *Bytes, size_t Size, size_t ZeroPrefix, uint64_t Word) {
  const __m256i Pattern = _mm256_set1_epi64x(static_cast<long long>(Word));
  const __m256i Zero = _mm256_setzero_si256();
  size_t I = 0;
  for (; I + 32 <= Size; I += 32) {
    const __m256i Have =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + I));
    if (static_cast<uint32_t>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(Have, Pattern))) != 0xFFFFFFFFu)
      return std::min(I, ZeroPrefix);
    if (I + 32 <= ZeroPrefix)
      _mm256_storeu_si256(reinterpret_cast<__m256i *>(Bytes + I), Zero);
    else
      zeroSpan(Bytes, I, I + 32, ZeroPrefix);
  }
  const size_t Tail = verifyZeroScalar(Bytes + I, Size - I,
                                       ZeroPrefix > I ? ZeroPrefix - I : 0,
                                       Word);
  if (Tail == canary_detail::AllVerifiedSentinel)
    return Tail;
  return std::min(I + Tail, ZeroPrefix);
}

__attribute__((target("avx2"))) size_t
matchWordsAvx2(const uint8_t *Bytes, size_t Words, uint64_t Word) {
  const __m256i Pattern = _mm256_set1_epi64x(static_cast<long long>(Word));
  size_t W = 0;
  // 16-word (128 B) stride; on a mismatch fall through to the 4-word
  // loop over the failing block to pin the exact word.
  for (; W + 16 <= Words; W += 16) {
    const __m256i A = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(Bytes + W * 8));
    const __m256i B = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(Bytes + W * 8 + 32));
    const __m256i C = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(Bytes + W * 8 + 64));
    const __m256i D = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(Bytes + W * 8 + 96));
    const __m256i Combined = _mm256_and_si256(
        _mm256_and_si256(_mm256_cmpeq_epi8(A, Pattern),
                         _mm256_cmpeq_epi8(B, Pattern)),
        _mm256_and_si256(_mm256_cmpeq_epi8(C, Pattern),
                         _mm256_cmpeq_epi8(D, Pattern)));
    if (static_cast<uint32_t>(_mm256_movemask_epi8(Combined)) != 0xFFFFFFFFu)
      break;
  }
  for (; W + 4 <= Words; W += 4) {
    const __m256i Have =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + W * 8));
    const uint32_t Mask = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(Have, Pattern)));
    if (Mask != 0xFFFFFFFFu)
      // First mismatching byte; every word before it matched fully.
      return W + static_cast<size_t>(__builtin_ctz(~Mask)) / 8;
  }
  return W + matchWordsScalar(Bytes + W * 8, Words - W, Word);
}

__attribute__((target("avx2"))) size_t findPairAvx2(const uint8_t *Bytes,
                                                    size_t Words) {
  // Compare words[I..I+3] against words[I+1..I+4] in one shot; a set
  // lane marks an adjacent equal pair.  The shifted load needs word
  // I+4, so the vector loop requires I+5 <= Words.
  size_t I = 0;
  for (; I + 5 <= Words; I += 4) {
    const __m256i A =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bytes + I * 8));
    const __m256i B = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(Bytes + I * 8 + 8));
    const int Mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(A, B)));
    if (Mask != 0)
      return I + static_cast<size_t>(__builtin_ctz(
                     static_cast<unsigned>(Mask)));
  }
  const size_t Tail = findPairScalar(Bytes + I * 8, Words - I);
  return Tail == Words - I ? Words : I + Tail;
}

__attribute__((target("avx512f,avx512bw"))) void
fillAvx512(uint8_t *Bytes, size_t Size, uint64_t Word) {
  const __m512i Pattern = _mm512_set1_epi64(static_cast<long long>(Word));
  size_t I = 0;
  for (; I + 256 <= Size; I += 256) {
    _mm512_storeu_si512(Bytes + I, Pattern);
    _mm512_storeu_si512(Bytes + I + 64, Pattern);
    _mm512_storeu_si512(Bytes + I + 128, Pattern);
    _mm512_storeu_si512(Bytes + I + 192, Pattern);
  }
  for (; I + 64 <= Size; I += 64)
    _mm512_storeu_si512(Bytes + I, Pattern);
  fillScalar(Bytes + I, Size - I, Word);
}

__attribute__((target("avx512f,avx512bw"))) bool
verifyAvx512(const uint8_t *Bytes, size_t Size, uint64_t Word) {
  const __m512i Pattern = _mm512_set1_epi64(static_cast<long long>(Word));
  size_t I = 0;
  for (; I + 256 <= Size; I += 256) {
    _mm_prefetch(reinterpret_cast<const char *>(Bytes + I + 1024),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Bytes + I + 1088),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Bytes + I + 1152),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char *>(Bytes + I + 1216),
                 _MM_HINT_T0);
    const __mmask64 Bad =
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + I), Pattern) |
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + I + 64), Pattern) |
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + I + 128),
                                Pattern) |
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + I + 192), Pattern);
    if (Bad)
      return false;
  }
  for (; I + 64 <= Size; I += 64)
    if (_mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + I), Pattern))
      return false;
  return verifyScalar(Bytes + I, Size - I, Word);
}

__attribute__((target("avx512f,avx512bw"))) size_t
matchWordsAvx512(const uint8_t *Bytes, size_t Words, uint64_t Word) {
  const __m512i Pattern = _mm512_set1_epi64(static_cast<long long>(Word));
  size_t W = 0;
  for (; W + 32 <= Words; W += 32) {
    const __mmask64 Bad =
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + W * 8), Pattern) |
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + W * 8 + 64),
                                Pattern) |
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + W * 8 + 128),
                                Pattern) |
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + W * 8 + 192),
                                Pattern);
    if (Bad)
      break;
  }
  for (; W + 8 <= Words; W += 8) {
    const __mmask64 Bad =
        _mm512_cmpneq_epi8_mask(_mm512_loadu_si512(Bytes + W * 8), Pattern);
    if (Bad)
      // First mismatching byte; every word before it matched fully.
      return W + static_cast<size_t>(__builtin_ctzll(Bad)) / 8;
  }
  return W + matchWordsScalar(Bytes + W * 8, Words - W, Word);
}

#endif // EXTERMINATOR_CANARY_X86

struct CanaryOps {
  canary_detail::FillFn Fill;
  canary_detail::VerifyFn Verify;
  canary_detail::VerifyZeroFn VerifyZero;
  canary_detail::MatchWordsFn MatchWords;
  canary_detail::FindPairFn FindPair;
  const char *Name;
};

CanaryOps selectOps(canary_dispatch::Mode M) {
  using canary_dispatch::Mode;
#if EXTERMINATOR_CANARY_X86
  // SSE2 has no packed 64-bit equality, so its pair scan stays scalar.
  const CanaryOps Sse2 = {fillSse2, verifySse2, verifyZeroSse2, matchWordsSse2,
                          findPairScalar, "sse2"};
  const CanaryOps Avx2 = {fillAvx2, verifyAvx2, verifyZeroAvx2, matchWordsAvx2,
                          findPairAvx2, "avx2"};
  // The AVX-512 tier upgrades the streaming kernels (fill, verify,
  // match); verify-zero's prefix masking and the pair scan keep their
  // AVX2 forms, which are not the capture bottleneck.
  const CanaryOps Avx512 = {fillAvx512, verifyAvx512, verifyZeroAvx2,
                            matchWordsAvx512, findPairAvx2, "avx512"};
  const bool HaveAvx2 = __builtin_cpu_supports("avx2");
  const bool HaveAvx512 = __builtin_cpu_supports("avx512bw");
  switch (M) {
  case Mode::Scalar:
    return {fillScalar, verifyScalar, verifyZeroScalar, matchWordsScalar,
            findPairScalar, "scalar"};
  case Mode::Sse2:
    return Sse2;
  case Mode::Avx2:
    return HaveAvx2 ? Avx2 : Sse2;
  case Mode::Avx512:
  case Mode::Auto:
    break;
  }
  if (HaveAvx512)
    return Avx512;
  return HaveAvx2 ? Avx2 : Sse2;
#else
  (void)M;
  return {fillScalar, verifyScalar, verifyZeroScalar, matchWordsScalar,
          findPairScalar, "scalar"};
#endif
}

const char *ActiveName = "scalar";

} // namespace

namespace exterminator {
namespace canary_detail {

FillFn Fill = fillScalar;
VerifyFn Verify = verifyScalar;
VerifyZeroFn VerifyZero = verifyZeroScalar;
MatchWordsFn MatchWords = matchWordsScalar;
FindPairFn FindPair = findPairScalar;

} // namespace canary_detail
} // namespace exterminator

void canary_dispatch::force(Mode M) {
  const CanaryOps Ops = selectOps(M);
  canary_detail::Fill = Ops.Fill;
  canary_detail::Verify = Ops.Verify;
  canary_detail::VerifyZero = Ops.VerifyZero;
  canary_detail::MatchWords = Ops.MatchWords;
  canary_detail::FindPair = Ops.FindPair;
  ActiveName = Ops.Name;
}

const char *canary_dispatch::activeName() { return ActiveName; }

namespace {

/// Startup selection, libp-style: one CPU probe before main, then every
/// call is a plain indirect jump.
struct DispatchInitializer {
  DispatchInitializer() { canary_dispatch::force(canary_dispatch::Mode::Auto); }
} InitializeDispatch;

} // namespace

//===----------------------------------------------------------------------===//
// Canary
//===----------------------------------------------------------------------===//

Canary Canary::random(RandomGenerator &Rng) {
  // Low bit set: dereferencing the canary as a pointer misaligns and
  // traps, while collision probability with program data stays 1/2^31.
  return Canary(Rng.next32() | 1u);
}

/// The canary pattern repeated into a 64-bit word.  Slots are at least
/// 8-byte aligned and sized, so fill/verify run word-at-a-time on the
/// allocator's hot path (§3.3: the checks run on every malloc and free).
uint64_t Canary::patternWord() const {
  return (uint64_t(Value) << 32) | Value;
}

std::optional<CorruptionExtent>
Canary::findCorruption(const void *Ptr, size_t Size) const {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Ptr);
  const uint64_t Word = patternWord();

  // The overwhelmingly common outcome is an intact pattern: settle it
  // with one dispatched sweep before any chunked extent scanning.
  if (canary_detail::Verify(Bytes, Size, Word))
    return std::nullopt;

  std::optional<CorruptionExtent> Extent;

  // Expected bytes come straight off the pattern word — no per-byte
  // byteAt recomputation in the extent scan.
  auto ScanRange = [&](size_t Begin, size_t End) {
    for (size_t B = Begin; B < End; ++B) {
      if (Bytes[B] == patternByte(Word, B))
        continue;
      if (!Extent)
        Extent = CorruptionExtent{B, B + 1};
      else
        Extent->End = B + 1;
    }
  };

  // Let the dispatched verifier skip clean chunks; byte-scan only the
  // chunks that fail.
  static constexpr size_t Chunk = 64;
  size_t I = 0;
  for (; I + Chunk <= Size; I += Chunk)
    if (!canary_detail::Verify(Bytes + I, Chunk, Word))
      ScanRange(I, I + Chunk);
  for (; I + 8 <= Size; I += 8) {
    uint64_t Have;
    std::memcpy(&Have, Bytes + I, 8);
    if (Have != Word)
      ScanRange(I, I + 8);
  }
  ScanRange(I, Size);
  return Extent;
}

//===- tests/patch_test.cpp - Runtime patch tests ------------------------------===//

#include "patch/PatchIO.h"
#include "patch/PatchMerge.h"
#include "patch/RuntimePatch.h"
#include "support/Serializer.h"

#include <gtest/gtest.h>

using namespace exterminator;

TEST(PatchSet, EmptyByDefault) {
  PatchSet Patches;
  EXPECT_TRUE(Patches.empty());
  EXPECT_EQ(Patches.padFor(123), 0u);
  EXPECT_EQ(Patches.deferralFor(1, 2), 0u);
}

TEST(PatchSet, AddPadKeepsMaximum) {
  PatchSet Patches;
  Patches.addPad(10, 6);
  Patches.addPad(10, 4); // smaller: ignored (§6.1)
  EXPECT_EQ(Patches.padFor(10), 6u);
  Patches.addPad(10, 36);
  EXPECT_EQ(Patches.padFor(10), 36u);
}

TEST(PatchSet, AddDeferralKeepsMaximum) {
  PatchSet Patches;
  Patches.addDeferral(1, 2, 100);
  Patches.addDeferral(1, 2, 50);
  EXPECT_EQ(Patches.deferralFor(1, 2), 100u);
  Patches.addDeferral(1, 2, 2001);
  EXPECT_EQ(Patches.deferralFor(1, 2), 2001u);
}

TEST(PatchSet, DeferralIsKeyedOnSitePair) {
  PatchSet Patches;
  Patches.addDeferral(1, 2, 100);
  EXPECT_EQ(Patches.deferralFor(1, 2), 100u);
  EXPECT_EQ(Patches.deferralFor(2, 1), 0u);
  EXPECT_EQ(Patches.deferralFor(1, 3), 0u);
}

TEST(PatchSet, MergeTakesMaxima) {
  PatchSet A, B;
  A.addPad(10, 6);
  A.addPad(11, 20);
  A.addDeferral(1, 2, 100);
  B.addPad(10, 36);
  B.addPad(12, 8);
  B.addDeferral(1, 2, 40);
  B.addDeferral(3, 4, 7);

  A.merge(B);
  EXPECT_EQ(A.padFor(10), 36u);
  EXPECT_EQ(A.padFor(11), 20u);
  EXPECT_EQ(A.padFor(12), 8u);
  EXPECT_EQ(A.deferralFor(1, 2), 100u);
  EXPECT_EQ(A.deferralFor(3, 4), 7u);
  EXPECT_EQ(A.padCount(), 3u);
  EXPECT_EQ(A.deferralCount(), 2u);
}

TEST(PatchSet, MergeIsCommutative) {
  PatchSet A, B, A2, B2;
  A.addPad(10, 6);
  A.addDeferral(1, 2, 100);
  B.addPad(10, 36);
  B.addDeferral(3, 4, 7);
  A2 = A;
  B2 = B;
  A.merge(B);
  B2.merge(A2);
  EXPECT_TRUE(A == B2);
}

TEST(PatchSet, PadsAndDeferralsAreSorted) {
  PatchSet Patches;
  Patches.addPad(30, 1);
  Patches.addPad(10, 2);
  Patches.addPad(20, 3);
  const auto Pads = Patches.pads();
  ASSERT_EQ(Pads.size(), 3u);
  EXPECT_EQ(Pads[0].AllocSite, 10u);
  EXPECT_EQ(Pads[1].AllocSite, 20u);
  EXPECT_EQ(Pads[2].AllocSite, 30u);

  Patches.addDeferral(2, 9, 1);
  Patches.addDeferral(1, 5, 2);
  Patches.addDeferral(1, 3, 3);
  const auto Deferrals = Patches.deferrals();
  ASSERT_EQ(Deferrals.size(), 3u);
  EXPECT_EQ(Deferrals[0].AllocSite, 1u);
  EXPECT_EQ(Deferrals[0].FreeSite, 3u);
  EXPECT_EQ(Deferrals[1].FreeSite, 5u);
  EXPECT_EQ(Deferrals[2].AllocSite, 2u);
}

TEST(PatchSet, ClearEmpties) {
  PatchSet Patches;
  Patches.addPad(1, 1);
  Patches.addDeferral(1, 2, 3);
  Patches.clear();
  EXPECT_TRUE(Patches.empty());
}

TEST(PatchIO, RoundTrip) {
  PatchSet Patches;
  Patches.addPad(0xdeadbeef, 6);
  Patches.addPad(0x12345678, 36);
  Patches.addDeferral(0xa, 0xb, 2001);

  PatchSet Back;
  ASSERT_TRUE(deserializePatchSet(serializePatchSet(Patches), Back));
  EXPECT_TRUE(Back == Patches);
}

TEST(PatchIO, EmptySetRoundTrips) {
  PatchSet Back;
  ASSERT_TRUE(deserializePatchSet(serializePatchSet(PatchSet()), Back));
  EXPECT_TRUE(Back.empty());
}

TEST(PatchIO, RejectsGarbage) {
  PatchSet Back;
  EXPECT_FALSE(deserializePatchSet({0, 1, 2, 3}, Back));
}

TEST(PatchIO, MalformedInputLeavesOutputUntouched) {
  // All-or-nothing: a buffer that fails mid-stream (every truncation
  // point of a valid encoding) must not half-populate — or clear — the
  // output set a caller already holds.
  PatchSet Full;
  Full.addPad(0xdeadbeef, 6);
  Full.addFrontPad(0xcafe, 12);
  Full.addDeferral(0xa, 0xb, 2001);
  const std::vector<uint8_t> Bytes = serializePatchSet(Full);

  PatchSet Existing;
  Existing.addPad(42, 8);
  const PatchSet Original = Existing;
  for (size_t Cut = 0; Cut < Bytes.size(); ++Cut) {
    const std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(deserializePatchSet(Truncated, Existing))
        << "accepted truncation at " << Cut;
    EXPECT_TRUE(Existing == Original) << "mutated output at cut " << Cut;
  }
  // And the full buffer still replaces the output wholesale.
  ASSERT_TRUE(deserializePatchSet(Bytes, Existing));
  EXPECT_TRUE(Existing == Full);
}

TEST(PatchIO, FileRoundTrip) {
  PatchSet Patches;
  Patches.addPad(77, 6);
  const std::string Path = ::testing::TempDir() + "/patch_test.xpt";
  ASSERT_TRUE(savePatchSet(Patches, Path));
  PatchSet Back;
  ASSERT_TRUE(loadPatchSet(Path, Back));
  EXPECT_TRUE(Back == Patches);
}

TEST(PatchMerge, MergesManySets) {
  // Collaborative correction (§6.4): three users, each with a different
  // observed error; the merged patch covers all of them.
  PatchSet User1, User2, User3;
  User1.addPad(100, 6);
  User2.addPad(100, 12);
  User2.addDeferral(5, 6, 500);
  User3.addPad(200, 4);
  User3.addDeferral(5, 6, 900);

  const PatchSet Merged = mergePatchSets({User1, User2, User3});
  EXPECT_EQ(Merged.padFor(100), 12u);
  EXPECT_EQ(Merged.padFor(200), 4u);
  EXPECT_EQ(Merged.deferralFor(5, 6), 900u);
}

TEST(PatchMerge, MergePatchFilesEndToEnd) {
  const std::string Dir = ::testing::TempDir();
  PatchSet User1, User2;
  User1.addPad(100, 6);
  User2.addPad(100, 36);
  User2.addDeferral(1, 2, 64);
  ASSERT_TRUE(savePatchSet(User1, Dir + "/user1.xpt"));
  ASSERT_TRUE(savePatchSet(User2, Dir + "/user2.xpt"));

  ASSERT_TRUE(mergePatchFiles({Dir + "/user1.xpt", Dir + "/user2.xpt"},
                              Dir + "/merged.xpt"));
  PatchSet Merged;
  ASSERT_TRUE(loadPatchSet(Dir + "/merged.xpt", Merged));
  EXPECT_EQ(Merged.padFor(100), 36u);
  EXPECT_EQ(Merged.deferralFor(1, 2), 64u);
}

TEST(PatchMerge, MissingInputFileFails) {
  EXPECT_FALSE(mergePatchFiles({"/nonexistent/patches.xpt"},
                               ::testing::TempDir() + "/out.xpt"));
}

TEST(PatchMerge, MergeIsOrderIndependent) {
  // Max-merge must be commutative: last-writer-wins on merge order would
  // under-pad whichever site the larger observation merged first.
  PatchSet Big, Small, Other;
  Big.addPad(100, 36);
  Big.addFrontPad(100, 16);
  Big.addDeferral(7, 8, 900);
  Small.addPad(100, 6);
  Small.addFrontPad(100, 4);
  Small.addDeferral(7, 8, 50);
  Other.addPad(200, 9);

  const PatchSet AB = mergePatchSets({Big, Small, Other});
  const PatchSet BA = mergePatchSets({Other, Small, Big});
  EXPECT_TRUE(AB == BA);
  EXPECT_EQ(AB.padFor(100), 36u);
  EXPECT_EQ(AB.frontPadFor(100), 16u);
  EXPECT_EQ(AB.deferralFor(7, 8), 900u);
  EXPECT_EQ(AB.padFor(200), 9u);
}

TEST(PatchMerge, DuplicatePadEntriesInOneFileTakeMax) {
  // A patch file with duplicate pad records for one allocation site
  // (e.g. produced by concatenating reports) must load as the max, not
  // whichever record happens to come last.
  ByteWriter Writer;
  Writer.writeU32(0x58505432); // "XPT2"
  Writer.writeU64(2);          // two pad records, same site
  Writer.writeU32(123);
  Writer.writeU32(40);
  Writer.writeU32(123);
  Writer.writeU32(8); // smaller, later: must not win
  Writer.writeU64(0); // front pads
  Writer.writeU64(0); // deferrals
  PatchSet Loaded;
  ASSERT_TRUE(deserializePatchSet(Writer.buffer(), Loaded));
  EXPECT_EQ(Loaded.padCount(), 1u);
  EXPECT_EQ(Loaded.padFor(123), 40u);
}

TEST(PatchMerge, DuplicateSetsAreIdempotent) {
  PatchSet User;
  User.addPad(100, 6);
  User.addDeferral(1, 2, 64);
  const PatchSet Merged = mergePatchSets({User, User, User});
  EXPECT_TRUE(Merged == User);
}

//===----------------------------------------------------------------------===//
// Hardware-fault reports (PR 9)
//===----------------------------------------------------------------------===//

TEST(HardwareReports, KindMaskOrsAndEvidenceMaxMerges) {
  PatchSet Patches;
  EXPECT_TRUE(Patches.addHardwareReport(0x1000, HardwareFaultBitFlip, 2));
  // Same page: kinds accumulate, evidence takes the max.
  EXPECT_TRUE(Patches.addHardwareReport(0x1000, HardwareFaultStuckAt, 1));
  // Nothing new: no change reported.
  EXPECT_FALSE(Patches.addHardwareReport(0x1000, HardwareFaultBitFlip, 2));
  ASSERT_EQ(Patches.hardwareReportCount(), 1u);
  const auto Reports = Patches.hardwareReports();
  EXPECT_EQ(Reports[0].PageAddress, 0x1000u);
  EXPECT_EQ(Reports[0].KindMask,
            uint32_t(HardwareFaultBitFlip | HardwareFaultStuckAt));
  EXPECT_EQ(Reports[0].EvidenceRegions, 2u);
  EXPECT_EQ(Patches.hardwareEvidenceTotal(), 2u);
}

TEST(HardwareReports, MergeIsIdempotentAndCommutative) {
  PatchSet A, B;
  A.addHardwareReport(0x1000, HardwareFaultBitFlip, 3);
  A.addPad(0x10, 8);
  B.addHardwareReport(0x1000, HardwareFaultRowCluster, 1);
  B.addHardwareReport(0x2000, HardwareFaultStuckAt, 5);

  PatchSet AB = A;
  AB.merge(B);
  PatchSet BA = B;
  BA.merge(A);
  EXPECT_TRUE(AB == BA);
  EXPECT_FALSE(AB.merge(B)); // re-merge changes nothing
  EXPECT_EQ(AB.hardwareReportCount(), 2u);
  EXPECT_EQ(AB.hardwareEvidenceTotal(), 8u);
  EXPECT_EQ(AB.hardwareReports()[0].KindMask,
            uint32_t(HardwareFaultBitFlip | HardwareFaultRowCluster));
}

TEST(HardwareReports, SerializationIsBackwardCompatible) {
  // Without hardware reports the wire bytes are the pre-PR-9 XPT2 format
  // verbatim; with reports, the XPT3 extension round-trips everything.
  PatchSet SoftwareOnly;
  SoftwareOnly.addPad(0xdeadbeef, 6);
  SoftwareOnly.addDeferral(0xa, 0xb, 2001);
  const std::vector<uint8_t> V2 = serializePatchSet(SoftwareOnly);
  ASSERT_GE(V2.size(), 4u);
  // "XPT2" little-endian magic leads the buffer.
  EXPECT_EQ(V2[0], uint8_t('2'));
  EXPECT_EQ(V2[3], uint8_t('X'));
  PatchSet Back;
  ASSERT_TRUE(deserializePatchSet(V2, Back));
  EXPECT_TRUE(Back == SoftwareOnly);

  PatchSet WithHardware = SoftwareOnly;
  WithHardware.addHardwareReport(0x7000, HardwareFaultBitFlip, 4);
  const std::vector<uint8_t> V3 = serializePatchSet(WithHardware);
  EXPECT_EQ(V3[0], uint8_t('3'));
  ASSERT_TRUE(deserializePatchSet(V3, Back));
  EXPECT_TRUE(Back == WithHardware);
  EXPECT_EQ(Back.hardwareReportCount(), 1u);
  EXPECT_EQ(Back.hardwareReports()[0].EvidenceRegions, 4u);
}

TEST(HardwareReports, EmptyIncludesHardwareTable) {
  PatchSet Patches;
  EXPECT_TRUE(Patches.empty());
  Patches.addHardwareReport(0x4000, HardwareFaultBitFlip, 1);
  EXPECT_FALSE(Patches.empty());
  Patches.clear();
  EXPECT_TRUE(Patches.empty());
  EXPECT_EQ(Patches.hardwareReportCount(), 0u);
}

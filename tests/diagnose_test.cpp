//===- tests/diagnose_test.cpp - DiagnosisPipeline tests ----------------------===//
//
// The pipeline is the single ingestion point for diagnosis evidence:
// image sets (§4 isolation) and run summaries (§5 classification) both
// land in one active patch set.  These tests pin the ingestion flow,
// the fallback-image behavior, the §6.2 deferral doubling, and the
// acceptance criterion that v1- and v2-loaded images diagnose
// identically through the pipeline.
//
//===----------------------------------------------------------------------===//

#include "diagnose/DiagnosisPipeline.h"

#include "heapimage/HeapImageIO.h"
#include "TestHelpers.h"
#include "workload/ScriptedBugs.h"

#include <gtest/gtest.h>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {

// The canonical scripted bugs' frame tokens (workload/ScriptedBugs.h).
constexpr uint32_t SiteA = ScriptedBugSites().Culprit;
constexpr uint32_t SiteB = ScriptedBugSites().Bystander;
constexpr uint32_t SiteF = ScriptedBugSites().Free;

SiteId tokenSite(uint32_t Token) {
  CallContext Context;
  Context.pushFrame(Token);
  return Context.currentSite();
}

std::vector<TraceOp> overflowTrace(uint32_t OverflowBytes) {
  return scriptedOverflowTrace(OverflowBytes);
}

std::vector<TraceOp> danglingTrace() { return scriptedDanglingTrace(); }

} // namespace

//===----------------------------------------------------------------------===//
// Image evidence
//===----------------------------------------------------------------------===//

TEST(DiagnosisPipeline, SubmitImagesMatchesDirectIsolation) {
  const auto Images = imagesFromTrace(overflowTrace(6), 3);
  const IsolationResult Direct = isolateErrors(Images);

  DiagnosisPipeline Pipeline;
  const IsolationResult Piped = Pipeline.submitImages({Images, {}});

  ASSERT_FALSE(Piped.Overflows.empty());
  EXPECT_EQ(Piped.Overflows.front().CulpritAllocSite,
            Direct.Overflows.front().CulpritAllocSite);
  EXPECT_EQ(Piped.Overflows.front().PadBytes,
            Direct.Overflows.front().PadBytes);
  EXPECT_TRUE(Piped.Patches == Direct.Patches);
  EXPECT_TRUE(Pipeline.patches() == Direct.Patches);
}

TEST(DiagnosisPipeline, PatchesAccumulateAcrossSubmissions) {
  DiagnosisPipeline Pipeline;
  Pipeline.submitImages({imagesFromTrace(overflowTrace(6), 3), {}});
  const size_t AfterOverflow = Pipeline.patches().padCount();
  Pipeline.submitImages({imagesFromTrace(danglingTrace(), 3), {}});
  // The second submission adds a deferral without losing the pad.
  EXPECT_EQ(Pipeline.patches().padCount(), AfterOverflow);
  EXPECT_EQ(Pipeline.patches().deferralCount(), 1u);
  EXPECT_GT(Pipeline.patches().padFor(tokenSite(SiteA)), 0u);
  EXPECT_GT(Pipeline.patches().deferralFor(tokenSite(SiteA),
                                           tokenSite(SiteF)),
            0u);
}

TEST(DiagnosisPipeline, SeededPatchesAreKeptAndMerged) {
  DiagnosisPipeline Pipeline;
  PatchSet Seed;
  Seed.addPad(tokenSite(SiteA), 200); // larger than the observed overflow
  Seed.addPad(0x4242, 3);
  Pipeline.seedPatches(Seed);
  Pipeline.submitImages({imagesFromTrace(overflowTrace(6), 3), {}});
  // Max-merge: the seeded 200-byte pad survives the smaller finding,
  // and unrelated seeds are untouched.
  EXPECT_EQ(Pipeline.patches().padFor(tokenSite(SiteA)), 200u);
  EXPECT_EQ(Pipeline.patches().padFor(0x4242), 3u);
}

TEST(DiagnosisPipeline, FallbackImagesUsedWhenPrimaryYieldsNothing) {
  // Primary images with no corruption at all; the dangling evidence only
  // exists in the fallback set.
  std::vector<TraceOp> Clean;
  for (uint32_t I = 0; I < 24; ++I)
    Clean.push_back(TraceOp::alloc(I, 64, SiteB));
  ImageEvidence Evidence;
  Evidence.Primary = imagesFromTrace(Clean, 3);
  Evidence.Fallback = imagesFromTrace(danglingTrace(), 3);

  DiagnosisPipeline Pipeline;
  const IsolationResult Result = Pipeline.submitImages(Evidence);
  ASSERT_FALSE(Result.Danglings.empty());
  EXPECT_EQ(Result.Danglings.front().AllocSite, tokenSite(SiteA));
}

TEST(DiagnosisPipeline, FewerThanTwoImagesYieldNothing) {
  DiagnosisPipeline Pipeline;
  const auto One = imagesFromTrace(overflowTrace(6), 1);
  EXPECT_TRUE(Pipeline.submitImages({One, {}}).Patches.empty());
  EXPECT_TRUE(Pipeline.patches().empty());
}

//===----------------------------------------------------------------------===//
// v1/v2 equivalence through the pipeline (acceptance pin)
//===----------------------------------------------------------------------===//

TEST(DiagnosisPipeline, V1AndV2ImagesDiagnoseIdentically) {
  for (uint32_t OverflowBytes : {6u, 20u}) {
    const auto Captured = imagesFromTrace(overflowTrace(OverflowBytes), 3);

    std::vector<HeapImage> FromV1, FromV2;
    for (const HeapImage &Image : Captured) {
      HeapImage V1, V2;
      ASSERT_TRUE(deserializeHeapImage(serializeHeapImageV1(Image), V1));
      ASSERT_TRUE(deserializeHeapImage(serializeHeapImage(Image), V2));
      FromV1.push_back(std::move(V1));
      FromV2.push_back(std::move(V2));
    }

    DiagnosisPipeline PipeV1, PipeV2;
    const IsolationResult A = PipeV1.submitImages({FromV1, {}});
    const IsolationResult B = PipeV2.submitImages({FromV2, {}});

    ASSERT_FALSE(A.Overflows.empty());
    ASSERT_EQ(A.Overflows.size(), B.Overflows.size());
    for (size_t I = 0; I < A.Overflows.size(); ++I) {
      EXPECT_EQ(A.Overflows[I].CulpritObjectId,
                B.Overflows[I].CulpritObjectId);
      EXPECT_EQ(A.Overflows[I].PadBytes, B.Overflows[I].PadBytes);
      EXPECT_EQ(A.Overflows[I].EvidenceBytes, B.Overflows[I].EvidenceBytes);
      EXPECT_DOUBLE_EQ(A.Overflows[I].Score, B.Overflows[I].Score);
    }
    EXPECT_TRUE(PipeV1.patches() == PipeV2.patches());
  }
}

TEST(DiagnosisPipeline, SummariesFromV1AndV2ImagesAgree) {
  // Cumulative isolation consumes summaries; a summary computed from a
  // v1-loaded image must equal one from the v2 round-trip.
  const auto Images = imagesFromTrace(danglingTrace(), 2);
  DiagnosisPipeline Pipeline;
  for (const HeapImage &Image : Images) {
    HeapImage V1, V2;
    ASSERT_TRUE(deserializeHeapImage(serializeHeapImageV1(Image), V1));
    ASSERT_TRUE(deserializeHeapImage(serializeHeapImage(Image), V2));
    const RunSummary A = Pipeline.summarize(V1, /*Failed=*/true);
    const RunSummary B = Pipeline.summarize(V2, /*Failed=*/true);
    EXPECT_EQ(A.CorruptionObserved, B.CorruptionObserved);
    EXPECT_EQ(A.EndTime, B.EndTime);
    EXPECT_EQ(A.OverflowTrials, B.OverflowTrials);
    EXPECT_EQ(A.DanglingTrials, B.DanglingTrials);
  }
}

//===----------------------------------------------------------------------===//
// Summary evidence
//===----------------------------------------------------------------------===//

TEST(DiagnosisPipeline, SummariesAccumulateInCumulativeState) {
  DiagnosisPipeline Pipeline;
  const auto Images = imagesFromTrace(danglingTrace(), 3);
  for (const HeapImage &Image : Images)
    Pipeline.submitSummary(Pipeline.summarize(Image, /*Failed=*/true),
                           /*CleanStreak=*/0);
  EXPECT_EQ(Pipeline.cumulative().runCount(), 3u);
  EXPECT_EQ(Pipeline.cumulative().failedRunCount(), 3u);
}

TEST(DiagnosisPipeline, DeferralDoublingOnContinuedFailure) {
  DiagnosisPipeline Pipeline;
  // Preload an applied deferral, as if an earlier episode patched it.
  PatchSet Applied;
  const SiteId Alloc = tokenSite(SiteA), Free = tokenSite(SiteF);
  Applied.addDeferral(Alloc, Free, 100);
  Pipeline.seedPatches(Applied);

  // A finding for the same pair with a *smaller* deferral while failures
  // continue (CleanStreak == 0) must double the applied value, not
  // regress it (§6.2).
  RunSummary Failing;
  Failing.Failed = true;
  Failing.EndTime = 50;
  DanglingTrial Trial;
  Trial.AllocSite = Alloc;
  Trial.FreeSite = Free;
  Trial.Probability = 0.5; // chance-level X with Y always observed
  Trial.Observed = true;
  Trial.FreeToFailure = 10;
  Failing.DanglingTrials.push_back(Trial);

  // Drive the classifier over the threshold with correlated evidence:
  // failures always observe the canaried pair.
  for (int I = 0; I < 30; ++I)
    Pipeline.submitSummary(Failing, /*CleanStreak=*/0);

  ASSERT_GT(Pipeline.patches().deferralFor(Alloc, Free), 100u);
  EXPECT_GE(Pipeline.patches().deferralFor(Alloc, Free), 201u);
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

TEST(DiagnosisPipeline, ReportRendersActivePatches) {
  DiagnosisPipeline Pipeline;
  EXPECT_NE(Pipeline.report().find("No errors recorded"), std::string::npos);
  Pipeline.submitImages({imagesFromTrace(overflowTrace(6), 3), {}});
  const std::string Report = Pipeline.report();
  EXPECT_NE(Report.find("heap-buffer-overflow"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Hardware-fault evidence (PR 9)
//===----------------------------------------------------------------------===//

TEST(DiagnosisPipeline, HardwareEvidenceReportsPagesNotPatches) {
  FaultPlan Fault;
  Fault.Kind = FaultKind::RowCluster;
  Fault.TriggerAllocation = 150;
  Fault.PatternSeed = 11;

  DiagnosisPipeline Pipeline;
  const std::vector<HeapImage> Images = scriptedHardwareEvidenceImages(3, Fault);
  const IsolationResult Result = Pipeline.submitImages({Images, {}});

  // Decorrelated physical damage must never be mistaken for a site bug.
  EXPECT_EQ(Result.Patches.padCount(), 0u);
  EXPECT_EQ(Result.Patches.frontPadCount(), 0u);
  EXPECT_EQ(Result.Patches.deferralCount(), 0u);
  ASSERT_FALSE(Result.HardwareFaults.empty());

  // The hardware table is part of the active set and versions it.
  EXPECT_GT(Pipeline.patches().hardwareReportCount(), 0u);
  EXPECT_EQ(Pipeline.patches().padCount(), 0u);
  EXPECT_GE(Pipeline.epoch(), 1u);

  // Re-submitting the same evidence max-merges to a no-op.
  const uint64_t Epoch = Pipeline.epoch();
  Pipeline.submitImages({Images, {}});
  EXPECT_EQ(Pipeline.epoch(), Epoch);

  // The observability plane sees the faults...
  std::vector<MetricSample> Samples;
  Pipeline.collectMetrics(Samples);
  MetricsSnapshot Snap;
  Snap.Samples = Samples;
  const MetricSample *Faults = Snap.find("xterm_hardware_faults_total", "");
  ASSERT_NE(Faults, nullptr);
  EXPECT_GT(Faults->Value, 0.0);
  const MetricSample *Pages =
      Snap.find("xterm_active_patches",
                MetricsRegistry::label("kind", "hardware_page"));
  ASSERT_NE(Pages, nullptr);
  EXPECT_GT(Pages->Value, 0.0);

  // ...and the human-readable report names the failure class.
  EXPECT_NE(Pipeline.report().find("hardware memory fault"),
            std::string::npos);
}

//===- tests/property_test.cpp - Probabilistic property sweeps -----------------===//
//
// Property-style tests of the probabilistic claims the system rests on
// (Theorems 1-3 and the randomization properties of the heap), swept over
// seeds and parameters with TEST_P.  These complement bench/exp_theorems:
// the bench prints the tables, these enforce the invariants.
//
//===----------------------------------------------------------------------===//

#include "alloc/DieHardHeap.h"
#include "diefast/DieFastHeap.h"
#include "support/RandomGenerator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// Placement randomization (the root of every probabilistic guarantee)
//===----------------------------------------------------------------------===//

class PlacementSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlacementSweep, PlacementIsIndependentAcrossSeeds) {
  // Two heaps with different seeds place the same allocation sequence
  // into slots that agree no more often than chance.
  DieHardConfig ConfigA, ConfigB;
  ConfigA.Seed = GetParam();
  ConfigB.Seed = GetParam() ^ 0xffffffffULL;
  ConfigA.InitialSlots = ConfigB.InitialSlots = 64;
  DieHardHeap A(ConfigA), B(ConfigB);

  unsigned Agreements = 0;
  constexpr unsigned N = 32; // stay under 1/M of the initial 64 slots
  for (unsigned I = 0; I < N; ++I) {
    auto Ra = A.findObject(A.allocate(32));
    auto Rb = B.findObject(B.allocate(32));
    Agreements += Ra->SlotIndex == Rb->SlotIndex;
  }
  // E[agreements] = N * (1/64)-ish; 10 would be a wild outlier.
  EXPECT_LT(Agreements, 10u);
}

TEST_P(PlacementSweep, FreedSlotNotImmediatelyReused) {
  // DieHard makes prompt reuse unlikely: after freeing one object among
  // many free slots, the next allocation rarely lands on it.
  DieHardConfig Config;
  Config.Seed = GetParam();
  Config.InitialSlots = 64;
  DieHardHeap Heap(Config);

  unsigned Reuses = 0;
  constexpr unsigned Trials = 64;
  for (unsigned I = 0; I < Trials; ++I) {
    void *Ptr = Heap.allocate(32);
    Heap.deallocate(Ptr);
    void *Next = Heap.allocate(32);
    Reuses += Next == Ptr;
    Heap.deallocate(Next);
  }
  // Reuse probability is ~1/64 per trial; 16 would be absurd.
  EXPECT_LT(Reuses, 16u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===//
// Theorem 1 flavor: identical placement relations vanish with extra heaps
//===----------------------------------------------------------------------===//

TEST(TheoremProperties, AdjacencyRarelySurvivesTwoRandomizations) {
  // For a pair of objects allocated together, the probability they are
  // adjacent (victim right after culprit) in TWO independently seeded
  // heaps is ~(1/H)^2: over 200 seed pairs we expect ~0 occurrences.
  unsigned BothAdjacent = 0;
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    bool Adjacent[2];
    for (int Heap = 0; Heap < 2; ++Heap) {
      DieHardConfig Config;
      Config.Seed = Seed * 2 + Heap + 1;
      Config.InitialSlots = 64;
      DieHardHeap H(Config);
      std::vector<void *> Hold;
      for (int I = 0; I < 20; ++I)
        Hold.push_back(H.allocate(32));
      auto A = H.findObject(Hold[10]);
      auto B = H.findObject(Hold[11]);
      Adjacent[Heap] = A->HeapIndex == B->HeapIndex &&
                       B->SlotIndex == A->SlotIndex + 1;
    }
    BothAdjacent += Adjacent[0] && Adjacent[1];
  }
  EXPECT_LE(BothAdjacent, 2u);
}

//===----------------------------------------------------------------------===//
// Theorem 2 flavor: canaried-space fraction under M
//===----------------------------------------------------------------------===//

class CanariedSpaceSweep : public ::testing::TestWithParam<double> {};

TEST_P(CanariedSpaceSweep, FreedFractionApproachesSteadyState) {
  // After heavy churn at p = 1, the fraction of slots holding canaries
  // must be at least (M-1)/M minus slack for miniheap growth granularity
  // — the quantity Theorem 2's detection bound builds on.
  const double M = GetParam();
  DieFastConfig Config;
  Config.Heap.Seed = 77;
  Config.Heap.Multiplier = M;
  Config.Heap.InitialSlots = 64;
  DieFastHeap Heap(Config);

  std::vector<void *> Live;
  RandomGenerator Rng(5);
  for (int I = 0; I < 4000; ++I) {
    if (Live.size() < 40 || Rng.chance(0.5)) {
      Live.push_back(Heap.allocate(32));
    } else {
      const size_t Pick = Rng.nextBelow(Live.size());
      Heap.deallocate(Live[Pick]);
      Live.erase(Live.begin() + Pick);
    }
  }

  size_t Canaried = 0, Total = 0;
  Heap.heap().forEachMiniheap(
      [&](unsigned /*C*/, unsigned /*H*/, const Miniheap &Mini) {
        if (Mini.objectSize() != 32)
          return;
        Total += Mini.numSlots();
        for (size_t S = 0; S < Mini.numSlots(); ++S)
          if (!Mini.isAllocated(S) && Mini.slot(S).Canaried)
            ++Canaried;
      });
  ASSERT_GT(Total, 0u);
  const double Fraction = double(Canaried) / double(Total);
  // At least half the steady-state free fraction must carry canaries
  // after this much churn.
  EXPECT_GT(Fraction, (M - 1.0) / M * 0.5)
      << "canaried fraction " << Fraction << " at M = " << M;
}

INSTANTIATE_TEST_SUITE_P(Multipliers, CanariedSpaceSweep,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0));

//===----------------------------------------------------------------------===//
// Canary collision properties (§3.3, "Random Canaries")
//===----------------------------------------------------------------------===//

TEST(CanaryProperties, DistinctAcrossManySeeds) {
  std::set<uint32_t> Values;
  for (uint64_t Seed = 0; Seed < 300; ++Seed) {
    RandomGenerator Rng(Seed);
    Values.insert(Canary::random(Rng).value());
  }
  // Collisions among 300 random 31-bit draws are possible but should be
  // rare; near-total duplication would mean broken seeding.
  EXPECT_GT(Values.size(), 295u);
}

TEST(CanaryProperties, FixedDataRarelyMatchesCanary) {
  // A program storing a fixed 32-bit value collides with the canary in
  // at most 1/2^31 of runs; across 2000 seeds we should see none.
  const uint32_t CommonValues[] = {0, 1, 0xffffffffu, 0xdeadbeefu, 42};
  unsigned Collisions = 0;
  for (uint64_t Seed = 0; Seed < 2000; ++Seed) {
    RandomGenerator Rng(Seed);
    const uint32_t Value = Canary::random(Rng).value();
    for (uint32_t Common : CommonValues)
      Collisions += Value == Common;
  }
  EXPECT_EQ(Collisions, 0u);
}

TEST(CanaryProperties, CanaryValueIsNeverAValidObjectAddress) {
  // The low bit guarantees misalignment: interpreting a canary as a
  // pointer never resolves to an object start on any heap.
  DieHardConfig Config;
  Config.Seed = 3;
  DieHardHeap Heap(Config);
  for (int I = 0; I < 32; ++I)
    Heap.allocate(32);
  for (uint64_t Seed = 0; Seed < 64; ++Seed) {
    RandomGenerator Rng(Seed);
    const uint32_t Value = Canary::random(Rng).value();
    const uint64_t AsPointer = (uint64_t(Value) << 32) | Value;
    auto Found = Heap.findObject(reinterpret_cast<void *>(AsPointer));
    if (Found) {
      // Even if it lands inside a slab, it cannot be a slot start: slots
      // are 8-byte aligned and the canary's low bit is set.
      EXPECT_NE(reinterpret_cast<uint64_t>(Heap.objectPointer(*Found)),
                AsPointer);
    }
  }
}

//===----------------------------------------------------------------------===//
// RNG statistical sanity (chi-square-ish)
//===----------------------------------------------------------------------===//

class RngSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSweep, ByteFrequenciesAreFlat) {
  RandomGenerator Rng(GetParam());
  int Counts[256] = {};
  constexpr int Draws = 256 * 400;
  for (int I = 0; I < Draws; ++I)
    ++Counts[Rng.next() & 0xff];
  double ChiSquare = 0;
  for (int B = 0; B < 256; ++B) {
    const double Expected = Draws / 256.0;
    ChiSquare += (Counts[B] - Expected) * (Counts[B] - Expected) / Expected;
  }
  // 255 dof: mean 255, sd ~22.6; 400 is a ~6-sigma bound.
  EXPECT_LT(ChiSquare, 400.0);
}

TEST_P(RngSweep, NoShortCycles) {
  RandomGenerator Rng(GetParam());
  const uint64_t First = Rng.next();
  for (int I = 0; I < 10000; ++I)
    ASSERT_NE(Rng.next(), First) << "cycle at step " << I;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSweep,
                         ::testing::Values(0, 1, 42, 0xdeadbeef,
                                           0xffffffffffffffffULL));

//===----------------------------------------------------------------------===//
// Site-hash distribution: patches key on these hashes, so distinct call
// paths must rarely collide.
//===----------------------------------------------------------------------===//

TEST(SiteHashProperties, DistinctPathsRarelyCollide) {
  std::set<SiteId> Hashes;
  unsigned Total = 0;
  for (uint32_t A = 1; A <= 40; ++A)
    for (uint32_t B = 1; B <= 40; ++B) {
      CallContext Context;
      Context.pushFrame(A * 0x101);
      Context.pushFrame(B * 0x313);
      Hashes.insert(Context.currentSite());
      ++Total;
    }
  // 1600 two-frame paths: collisions under DJB2 should be minimal.
  EXPECT_GT(Hashes.size(), Total - 8);
}

TEST(SiteHashProperties, DepthBeyondFiveIsIgnored) {
  // Guaranteed by construction, but patches depend on it: two paths
  // differing only 6+ frames up hash identically, so one patch covers
  // both (the paper's 5-frame context).
  CallContext A, B;
  A.pushFrame(111);
  B.pushFrame(222);
  for (uint32_t F = 1; F <= 5; ++F) {
    A.pushFrame(F);
    B.pushFrame(F);
  }
  EXPECT_EQ(A.currentSite(), B.currentSite());
}

//===- tests/backward_test.cpp - Backward-overflow extension tests -------------===//
//
// Tests of the §2.1 extension: the paper assumes forward overflows and
// notes "it is possible to extend Exterminator to handle backwards
// overflows"; this reproduction implements that extension — detection of
// negative-offset corruption agreement and correction via front padding.
//
//===----------------------------------------------------------------------===//

#include "isolate/ErrorIsolator.h"
#include "patch/PatchIO.h"
#include "runtime/IterativeDriver.h"

#include "TestHelpers.h"
#include "workload/TraceWorkload.h"

#include <gtest/gtest.h>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {
constexpr uint32_t SiteA = 0x100, SiteB = 0x200, SiteF = 0x300;

SiteId tokenSite(uint32_t Token) {
  CallContext Context;
  Context.pushFrame(Token);
  return Context.currentSite();
}

/// A 64-byte buffer underrun by \p Bytes amid canaried churn.
std::vector<TraceOp> underflowTrace(uint32_t Bytes) {
  std::vector<TraceOp> Ops;
  for (uint32_t Round = 0; Round < 6; ++Round) {
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::alloc(1000 + Round * 30 + I, 64, SiteB));
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::free(1000 + Round * 30 + I, SiteF));
  }
  Ops.push_back(TraceOp::alloc(100, 64, SiteA));
  Ops.push_back(TraceOp::write(100, 0, 64, 0x11)); // in-bounds
  Ops.push_back(TraceOp::writeBack(100, Bytes, Bytes, 0x66)); // underrun!
  for (uint32_t I = 200; I < 212; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
    Ops.push_back(TraceOp::free(I, SiteF));
  }
  return Ops;
}
} // namespace

TEST(BackwardOverflow, IsolatorFindsNegativeOffsetCulprit) {
  const auto Images = imagesFromTrace(underflowTrace(8), 4);
  const IsolationResult Result = isolateErrors(Images);
  ASSERT_FALSE(Result.Overflows.empty());
  const OverflowCandidate &Top = Result.Overflows.front();
  EXPECT_EQ(Top.CulpritAllocSite, tokenSite(SiteA));
  EXPECT_GE(Top.FrontPadBytes, 8u);
  EXPECT_EQ(Result.Patches.frontPadFor(tokenSite(SiteA)),
            Top.FrontPadBytes);
}

TEST(BackwardOverflow, DisabledExtensionFindsNothing) {
  const auto Images = imagesFromTrace(underflowTrace(8), 4);
  IsolationConfig Config;
  Config.Overflow.DetectBackwardOverflows = false;
  const IsolationResult Result = isolateErrors(Images, Config);
  EXPECT_TRUE(Result.Patches.empty());
}

TEST(BackwardOverflow, FrontPadShiftsPointerAndFreeStillWorks) {
  CallContext Context;
  CorrectingHeap Heap(DieFastConfig(), &Context);
  PatchSet Patches;
  CallContext Probe;
  Probe.pushFrame(0xa);
  Patches.addFrontPad(Probe.currentSite(), 8);
  Heap.setPatches(Patches);

  uint8_t *Ptr;
  {
    CallContext::Scope Scope(Context, 0xa);
    Ptr = static_cast<uint8_t *>(Heap.allocate(56));
  }
  ASSERT_NE(Ptr, nullptr);
  // The app pointer is 8 bytes into the slot: an 8-byte underrun stays
  // inside the object's own allocation.
  auto Ref = Heap.diefast().heap().findObject(Ptr);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_EQ(Ptr, Heap.diefast().heap().objectPointer(*Ref) + 8);
  for (int I = 1; I <= 8; ++I)
    Ptr[-I] = 0x77;

  // The program frees the pointer it was given; no invalid free, no
  // corruption.
  {
    CallContext::Scope Scope(Context, 0xf);
    Heap.deallocate(Ptr);
  }
  EXPECT_EQ(Heap.stats().InvalidFrees, 0u);
  EXPECT_EQ(Heap.stats().Deallocations, 1u);
  EXPECT_EQ(Heap.diefast().errorsSignalled(), 0u);
}

TEST(BackwardOverflow, FrontPadRoundsToAlignment) {
  CallContext Context;
  CorrectingHeap Heap(DieFastConfig(), &Context);
  PatchSet Patches;
  CallContext Probe;
  Probe.pushFrame(0xa);
  Patches.addFrontPad(Probe.currentSite(), 5); // rounds up to 8
  Heap.setPatches(Patches);

  uint8_t *Ptr;
  {
    CallContext::Scope Scope(Context, 0xa);
    Ptr = static_cast<uint8_t *>(Heap.allocate(32));
  }
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Ptr) % 8, 0u);
}

TEST(BackwardOverflow, EndToEndIterativeCorrection) {
  TraceWorkload Work(underflowTrace(8));
  ExterminatorConfig Config;
  Config.MasterSeed = 0xbacc;
  IterativeDriver Driver(Work, Config);
  const IterativeOutcome Outcome = Driver.run(1);
  ASSERT_FALSE(Outcome.Episodes.empty());
  EXPECT_TRUE(Outcome.Corrected);
  EXPECT_GE(Outcome.Patches.frontPadFor(tokenSite(SiteA)), 8u);
}

TEST(BackwardOverflow, PatchSetFrontPadSemantics) {
  PatchSet Patches;
  Patches.addFrontPad(1, 8);
  Patches.addFrontPad(1, 4); // smaller: ignored
  EXPECT_EQ(Patches.frontPadFor(1), 8u);
  EXPECT_EQ(Patches.frontPadFor(2), 0u);
  EXPECT_FALSE(Patches.empty());
  EXPECT_EQ(Patches.frontPadCount(), 1u);

  PatchSet Other;
  Other.addFrontPad(1, 16);
  Patches.merge(Other);
  EXPECT_EQ(Patches.frontPadFor(1), 16u);
}

TEST(BackwardOverflow, FrontPadsSurviveSerialization) {
  PatchSet Patches;
  Patches.addPad(1, 6);
  Patches.addFrontPad(2, 8);
  Patches.addDeferral(3, 4, 99);
  PatchSet Back;
  ASSERT_TRUE(deserializePatchSet(serializePatchSet(Patches), Back));
  EXPECT_TRUE(Back == Patches);
}

TEST(BackwardOverflow, GuardRegionAbsorbsSlotZeroUnderrun) {
  // An underrun from the first slot of a miniheap must not touch memory
  // the allocator does not own (the front guard absorbs it).
  DieHardConfig Config;
  Config.Seed = 1;
  DieHardHeap Heap(Config);
  // Find an object in slot 0.
  for (int I = 0; I < 200; ++I) {
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
    auto Ref = Heap.findObject(Ptr);
    if (Ref->SlotIndex == 0) {
      Ptr[-1] = 0x5a; // lands in the guard, not in foreign memory
      Ptr[-64] = 0x5a;
      SUCCEED();
      return;
    }
    Heap.deallocate(Ptr);
  }
  GTEST_SKIP() << "slot 0 never drawn";
}

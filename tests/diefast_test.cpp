//===- tests/diefast_test.cpp - DieFast tests --------------------------------===//

#include "diefast/DieFastHeap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace exterminator;

static DieFastConfig testConfig(uint64_t Seed = 1, double P = 1.0) {
  DieFastConfig Config;
  Config.Heap.Seed = Seed;
  Config.Heap.InitialSlots = 16;
  Config.CanaryFillProbability = P;
  return Config;
}

//===----------------------------------------------------------------------===//
// Canary
//===----------------------------------------------------------------------===//

TEST(Canary, RandomCanaryHasLowBitSet) {
  RandomGenerator Rng(1);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Canary::random(Rng).value() & 1u, 1u);
}

TEST(Canary, RandomCanariesDiffer) {
  RandomGenerator Rng(2);
  EXPECT_NE(Canary::random(Rng).value(), Canary::random(Rng).value());
}

TEST(Canary, FillVerifyRoundTrip) {
  const Canary C = Canary::fromValue(0xdeadbeefu | 1);
  uint8_t Buffer[64];
  C.fill(Buffer, sizeof(Buffer));
  EXPECT_TRUE(C.verify(Buffer, sizeof(Buffer)));
}

TEST(Canary, VerifyDetectsSingleByteCorruption) {
  const Canary C = Canary::fromValue(0x12345679u);
  uint8_t Buffer[32];
  C.fill(Buffer, sizeof(Buffer));
  Buffer[17] ^= 0xff;
  EXPECT_FALSE(C.verify(Buffer, sizeof(Buffer)));
}

TEST(Canary, FindCorruptionReturnsExactEnvelope) {
  const Canary C = Canary::fromValue(0xabcdef01u);
  uint8_t Buffer[64];
  C.fill(Buffer, sizeof(Buffer));
  Buffer[10] ^= 1;
  Buffer[20] ^= 1;
  auto Extent = C.findCorruption(Buffer, sizeof(Buffer));
  ASSERT_TRUE(Extent.has_value());
  EXPECT_EQ(Extent->Begin, 10u);
  EXPECT_EQ(Extent->End, 21u);
  EXPECT_EQ(Extent->length(), 11u);
}

TEST(Canary, FindCorruptionOnIntactBufferIsEmpty) {
  const Canary C = Canary::fromValue(0x55555555u);
  uint8_t Buffer[16];
  C.fill(Buffer, sizeof(Buffer));
  EXPECT_FALSE(C.findCorruption(Buffer, sizeof(Buffer)).has_value());
}

TEST(Canary, ByteAtMatchesLittleEndianPattern) {
  const Canary C = Canary::fromValue(0x04030201u);
  EXPECT_EQ(C.byteAt(0), 0x01);
  EXPECT_EQ(C.byteAt(1), 0x02);
  EXPECT_EQ(C.byteAt(2), 0x03);
  EXPECT_EQ(C.byteAt(3), 0x04);
  EXPECT_EQ(C.byteAt(4), 0x01); // repeats
}

TEST(Canary, DispatchModesAgree) {
  // Scalar, SSE2, and AVX2 kernels must be byte-for-byte interchangeable
  // on every size and corruption pattern (unsupported modes degrade to
  // the best available, so forcing is always safe).
  RandomGenerator Rng(11);
  const Canary C = Canary::random(Rng);
  const canary_dispatch::Mode Modes[] = {
      canary_dispatch::Mode::Scalar, canary_dispatch::Mode::Sse2,
      canary_dispatch::Mode::Avx2, canary_dispatch::Mode::Avx512,
      canary_dispatch::Mode::Auto};
  for (size_t Size : {size_t(1), size_t(7), size_t(8), size_t(16),
                      size_t(24), size_t(63), size_t(64), size_t(65),
                      size_t(129), size_t(256), size_t(1000)}) {
    // Reference fill from the scalar kernel.
    canary_dispatch::force(canary_dispatch::Mode::Scalar);
    std::vector<uint8_t> Reference(Size);
    C.fill(Reference.data(), Size);
    for (canary_dispatch::Mode Mode : Modes) {
      canary_dispatch::force(Mode);
      std::vector<uint8_t> Buffer(Size, 0xAB);
      C.fill(Buffer.data(), Size);
      ASSERT_EQ(Buffer, Reference) << "size " << Size;
      EXPECT_TRUE(C.verify(Buffer.data(), Size));
      EXPECT_FALSE(C.findCorruption(Buffer.data(), Size).has_value());
      if (Size < 3)
        continue;
      // Corrupt one interior byte: every mode must detect it at the
      // same extent.
      Buffer[Size / 2] ^= 0xFF;
      EXPECT_FALSE(C.verify(Buffer.data(), Size));
      auto Extent = C.findCorruption(Buffer.data(), Size);
      ASSERT_TRUE(Extent.has_value());
      EXPECT_EQ(Extent->Begin, Size / 2);
      EXPECT_EQ(Extent->End, Size / 2 + 1);
    }
  }
  canary_dispatch::force(canary_dispatch::Mode::Auto);
}

TEST(Canary, VerifyAndZeroPrefixOnIntactSlot) {
  RandomGenerator Rng(12);
  const Canary C = Canary::random(Rng);
  for (size_t Size : {size_t(16), size_t(64), size_t(256), size_t(1000)}) {
    for (size_t Prefix : {size_t(0), size_t(1), Size / 2, Size}) {
      std::vector<uint8_t> Buffer(Size);
      C.fill(Buffer.data(), Size);
      EXPECT_EQ(C.verifyAndZeroPrefix(Buffer.data(), Size, Prefix),
                Canary::AllVerified);
      for (size_t I = 0; I < Prefix; ++I)
        ASSERT_EQ(Buffer[I], 0) << "prefix byte " << I;
      for (size_t I = Prefix; I < Size; ++I)
        ASSERT_EQ(Buffer[I], C.byteAt(I)) << "tail byte " << I;
    }
  }
}

TEST(Canary, VerifyAndZeroPrefixRestoresOnCorruption) {
  // On a corrupted slot the fused kernel reports how many prefix bytes
  // it zeroed; refilling exactly that many must reproduce the slot as it
  // was (the quarantined-evidence invariant), in every dispatch mode.
  RandomGenerator Rng(13);
  const Canary C = Canary::random(Rng);
  const canary_dispatch::Mode Modes[] = {
      canary_dispatch::Mode::Scalar, canary_dispatch::Mode::Sse2,
      canary_dispatch::Mode::Avx2, canary_dispatch::Mode::Avx512};
  for (canary_dispatch::Mode Mode : Modes) {
    canary_dispatch::force(Mode);
    for (size_t Corrupt : {size_t(0), size_t(5), size_t(64), size_t(200),
                           size_t(255)}) {
      constexpr size_t Size = 256;
      std::vector<uint8_t> Buffer(Size);
      C.fill(Buffer.data(), Size);
      Buffer[Corrupt] ^= 0x5A;
      const std::vector<uint8_t> Snapshot = Buffer;
      const size_t Zeroed = C.verifyAndZeroPrefix(Buffer.data(), Size, Size);
      ASSERT_NE(Zeroed, Canary::AllVerified);
      ASSERT_LE(Zeroed, Corrupt); // never zeroes at or past the corruption
      C.fill(Buffer.data(), Zeroed);
      EXPECT_EQ(Buffer, Snapshot) << "corrupt byte " << Corrupt;
    }
  }
  canary_dispatch::force(canary_dispatch::Mode::Auto);
}

//===----------------------------------------------------------------------===//
// DieFastHeap basics
//===----------------------------------------------------------------------===//

TEST(DieFastHeap, AllocationsAreZeroFilled) {
  DieFastHeap Heap(testConfig());
  for (int I = 0; I < 20; ++I) {
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(64));
    ASSERT_NE(Ptr, nullptr);
    for (int B = 0; B < 64; ++B)
      EXPECT_EQ(Ptr[B], 0) << "allocation " << I << " byte " << B;
    std::memset(Ptr, 0xff, 64); // dirty it for the next reuse
    Heap.deallocate(Ptr);
  }
}

TEST(DieFastHeap, FreeFillsWithCanary) {
  DieFastHeap Heap(testConfig());
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(64));
  Heap.deallocate(Ptr);
  // p = 1.0 outside cumulative mode: the slot must hold the canary.
  EXPECT_TRUE(Heap.canary().verify(Ptr, 64));
  auto Ref = Heap.heap().findObject(Ptr);
  EXPECT_TRUE(Heap.heap().objectMetadata(*Ref).Canaried);
}

TEST(DieFastHeap, CanaryFillProbabilityZeroNeverFills) {
  DieFastHeap Heap(testConfig(1, 0.0));
  for (int I = 0; I < 50; ++I) {
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
    Heap.deallocate(Ptr);
    auto Ref = Heap.heap().findObject(Ptr);
    EXPECT_FALSE(Heap.heap().objectMetadata(*Ref).Canaried);
  }
}

TEST(DieFastHeap, CanaryFillProbabilityHalfIsBernoulli) {
  DieFastHeap Heap(testConfig(3, 0.5));
  int Canaried = 0;
  constexpr int N = 2000;
  for (int I = 0; I < N; ++I) {
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
    Heap.deallocate(Ptr);
    auto Ref = Heap.heap().findObject(Ptr);
    if (Heap.heap().objectMetadata(*Ref).Canaried)
      ++Canaried;
  }
  EXPECT_NEAR(Canaried, N / 2, N * 0.05);
}

TEST(DieFastHeap, CanariesDifferAcrossSeeds) {
  DieFastHeap A(testConfig(1)), B(testConfig(2));
  EXPECT_NE(A.canary().value(), B.canary().value());
}

//===----------------------------------------------------------------------===//
// DieFast error detection (Figure 4)
//===----------------------------------------------------------------------===//

TEST(DieFastHeap, DetectsCorruptionOnReuse) {
  DieFastHeap Heap(testConfig(7));
  std::vector<ErrorSignal> Signals;
  Heap.setErrorHandler([&](const ErrorSignal &S) { Signals.push_back(S); });

  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
  Heap.deallocate(Ptr);
  // Simulate a dangling write: scribble over the canary-filled slot.
  Ptr[4] = 0x77;
  Ptr[5] = 0x88;

  // Hammer the same size class until the corrupted slot is probed.
  std::vector<void *> Hold;
  for (int I = 0; I < 500 && Signals.empty(); ++I)
    Hold.push_back(Heap.allocate(32));

  ASSERT_FALSE(Signals.empty());
  EXPECT_EQ(Signals[0].Kind, ErrorSignalKind::CanaryCorruptOnAlloc);
  EXPECT_GE(Heap.errorsSignalled(), 1u);
}

TEST(DieFastHeap, BadObjectIsolationPreservesCorruptContents) {
  DieFastHeap Heap(testConfig(7));
  bool Signalled = false;
  ObjectRef BadRef;
  Heap.setErrorHandler([&](const ErrorSignal &S) {
    Signalled = true;
    BadRef = S.Where;
  });

  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
  auto Ref = Heap.heap().findObject(Ptr);
  const uint64_t OriginalId = Heap.heap().objectMetadata(*Ref).ObjectId;
  Heap.deallocate(Ptr);
  Ptr[4] = 0x77;

  std::vector<void *> Hold;
  for (int I = 0; I < 500 && !Signalled; ++I)
    Hold.push_back(Heap.allocate(32));
  ASSERT_TRUE(Signalled);

  // The corrupted slot keeps the dead object's identity and the
  // corrupting bytes, and is never handed out again.
  const SlotMetadata &Meta = Heap.heap().objectMetadata(BadRef);
  EXPECT_TRUE(Meta.Bad);
  EXPECT_EQ(Meta.ObjectId, OriginalId);
  EXPECT_EQ(Heap.heap().objectPointer(BadRef)[4], 0x77);
  for (void *Held : Hold)
    EXPECT_NE(Held, Ptr);
}

TEST(DieFastHeap, DetectsNeighborCorruptionOnFree) {
  // Overflow past a live object into a canaried free slot, then free the
  // overflowing object: the neighbor check must fire (Figure 4).
  DieFastHeap Heap(testConfig(11));
  std::vector<ErrorSignal> Signals;
  Heap.setErrorHandler([&](const ErrorSignal &S) { Signals.push_back(S); });

  // Arrange a live object directly before a canaried free slot.
  for (int Attempt = 0; Attempt < 200 && Signals.empty(); ++Attempt) {
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
    auto Ref = Heap.heap().findObject(Ptr);
    auto Next = Heap.heap().nextSlot(*Ref);
    if (Next && !Heap.heap().miniheap(*Next).isAllocated(Next->SlotIndex) &&
        Heap.heap().objectMetadata(*Next).Canaried) {
      Ptr[32] = 0x5a; // forward overflow: first byte of the next slot
      Heap.deallocate(Ptr);
      break;
    }
    Heap.deallocate(Ptr);
  }
  ASSERT_FALSE(Signals.empty());
  EXPECT_EQ(Signals[0].Kind, ErrorSignalKind::CanaryCorruptOnFree);
}

TEST(DieFastHeap, NoFalsePositivesOnCleanWorkload) {
  DieFastHeap Heap(testConfig(13));
  uint64_t Errors = 0;
  Heap.setErrorHandler([&](const ErrorSignal &) { ++Errors; });
  RandomGenerator Rng(5);
  std::vector<std::pair<uint8_t *, size_t>> Live;
  for (int I = 0; I < 3000; ++I) {
    if (Live.empty() || Rng.chance(0.55)) {
      const size_t Size = 8u << Rng.nextBelow(6);
      uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(Size));
      ASSERT_NE(Ptr, nullptr);
      std::memset(Ptr, 0xee, Size); // write the whole object, in bounds
      Live.push_back({Ptr, Size});
    } else {
      const size_t Pick = Rng.nextBelow(Live.size());
      Heap.deallocate(Live[Pick].first);
      Live.erase(Live.begin() + Pick);
    }
  }
  EXPECT_EQ(Errors, 0u);
}

TEST(DieFastHeap, InvalidAndDoubleFreesRemainBenign) {
  DieFastHeap Heap(testConfig());
  void *Ptr = Heap.allocate(32);
  Heap.deallocate(Ptr);
  Heap.deallocate(Ptr); // double free
  int Local;
  Heap.deallocate(&Local); // invalid free
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
  EXPECT_EQ(Heap.stats().InvalidFrees, 1u);
  // The heap still works.
  EXPECT_NE(Heap.allocate(32), nullptr);
}

TEST(DieFastHeap, DeallocateWithSiteRecordsOverride) {
  CallContext Context;
  Context.pushFrame(1);
  DieFastConfig Config = testConfig();
  DieFastHeap Heap(Config, &Context);
  void *Ptr = Heap.allocate(32);
  auto Ref = Heap.heap().findObject(Ptr);
  Heap.deallocateWithSite(Ptr, 0xfeedf00d);
  EXPECT_EQ(Heap.heap().objectMetadata(*Ref).FreeSite, 0xfeedf00du);
}

// Property sweep: detection latency. With canaries everywhere, DieFast
// detects a corrupted freed slot within E(H) subsequent allocations
// (§3.3, "Probabilistic Error Detection").
class DetectionLatencySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectionLatencySweep, CorruptionDetectedWithinHeapSizeAllocations) {
  DieFastHeap Heap(testConfig(GetParam()));
  bool Signalled = false;
  Heap.setErrorHandler([&](const ErrorSignal &) { Signalled = true; });

  // Build up a heap of ~64 objects.
  std::vector<void *> Hold;
  for (int I = 0; I < 64; ++I)
    Hold.push_back(Heap.allocate(32));
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
  Heap.deallocate(Ptr);
  Ptr[0] ^= 0xff;

  // Alloc/free pairs keep the class capacity constant, so each probe
  // hits the corrupted slot with probability 1/capacity; 20x capacity
  // bounds the miss odds at e^-20.
  const unsigned Class = sizeclass::classFor(32);
  const size_t Budget = Heap.heap().classCapacity(Class) * 20;
  size_t Used = 0;
  while (!Signalled && Used < Budget) {
    void *Probe = Heap.allocate(32);
    Heap.deallocate(Probe);
    ++Used;
  }
  EXPECT_TRUE(Signalled) << "not detected within " << Budget
                         << " allocations";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectionLatencySweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

//===- tests/correct_test.cpp - Correcting allocator tests ---------------------===//

#include "correct/CorrectingHeap.h"

#include "patch/PatchIO.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace exterminator;

namespace {

DieFastConfig testConfig(uint64_t Seed = 1) {
  DieFastConfig Config;
  Config.Heap.Seed = Seed;
  Config.Heap.InitialSlots = 16;
  return Config;
}

/// A heap + context where every allocation happens under frame A and
/// every free under frame F, so patches can be keyed on known sites.
struct Fixture {
  CallContext Context;
  CorrectingHeap Heap;
  SiteId AllocSite;
  SiteId FreeSite;

  Fixture() : Heap(testConfig(), &Context) {
    CallContext Probe;
    Probe.pushFrame(0xa);
    AllocSite = Probe.currentSite();
    Probe.popFrame();
    Probe.pushFrame(0xf);
    FreeSite = Probe.currentSite();
  }

  void *allocateAtSite(size_t Size) {
    CallContext::Scope Scope(Context, 0xa);
    return Heap.allocate(Size);
  }
  void freeAtSite(void *Ptr) {
    CallContext::Scope Scope(Context, 0xf);
    Heap.deallocate(Ptr);
  }
};

} // namespace

TEST(CorrectingHeap, UnpatchedBehavesNormally) {
  Fixture F;
  void *Ptr = F.allocateAtSite(40);
  ASSERT_NE(Ptr, nullptr);
  F.freeAtSite(Ptr);
  EXPECT_FALSE(F.Heap.diefast().heap().isLivePointer(Ptr));
  EXPECT_EQ(F.Heap.correctionStats().PaddedAllocations, 0u);
  EXPECT_EQ(F.Heap.correctionStats().DeferredFrees, 0u);
}

TEST(CorrectingHeap, PadEnlargesAllocation) {
  Fixture F;
  PatchSet Patches;
  Patches.addPad(F.AllocSite, 6);
  F.Heap.setPatches(Patches);

  // A 64-byte request padded by 6 must land in the 128-byte class, so
  // the 6 bytes past the requested end belong to the object's own slot.
  uint8_t *Ptr = static_cast<uint8_t *>(F.allocateAtSite(64));
  ASSERT_NE(Ptr, nullptr);
  auto Ref = F.Heap.diefast().heap().findObject(Ptr);
  EXPECT_EQ(F.Heap.diefast().heap().miniheap(*Ref).objectSize(), 128u);
  EXPECT_EQ(F.Heap.correctionStats().PaddedAllocations, 1u);
  EXPECT_EQ(F.Heap.correctionStats().PadBytesAdded, 6u);

  // The overflow that motivated the pad is now contained.
  for (int I = 0; I < 6; ++I)
    Ptr[64 + I] = 0x5a;
  F.freeAtSite(Ptr);
  EXPECT_EQ(F.Heap.diefast().errorsSignalled(), 0u);
}

TEST(CorrectingHeap, PadOnlyAppliesToItsSite) {
  Fixture F;
  PatchSet Patches;
  Patches.addPad(F.AllocSite, 100);
  F.Heap.setPatches(Patches);

  // Allocation from a different call path must not be padded.
  uint8_t *Ptr;
  {
    CallContext::Scope Scope(F.Context, 0xbb);
    Ptr = static_cast<uint8_t *>(F.Heap.allocate(64));
  }
  auto Ref = F.Heap.diefast().heap().findObject(Ptr);
  EXPECT_EQ(F.Heap.diefast().heap().miniheap(*Ref).objectSize(), 64u);
  EXPECT_EQ(F.Heap.correctionStats().PaddedAllocations, 0u);
}

TEST(CorrectingHeap, DeferralDelaysFree) {
  Fixture F;
  PatchSet Patches;
  Patches.addDeferral(F.AllocSite, F.FreeSite, 5);
  F.Heap.setPatches(Patches);

  void *Ptr = F.allocateAtSite(32);
  F.freeAtSite(Ptr);
  // Deferred: still live from the heap's perspective.
  EXPECT_TRUE(F.Heap.diefast().heap().isLivePointer(Ptr));
  EXPECT_EQ(F.Heap.deferredCount(), 1u);

  // 4 more allocations: due time (clock+5) not yet reached.
  for (int I = 0; I < 4; ++I)
    F.allocateAtSite(32);
  EXPECT_TRUE(F.Heap.diefast().heap().isLivePointer(Ptr));

  // The 5th allocation drains it.
  F.allocateAtSite(32);
  EXPECT_FALSE(F.Heap.diefast().heap().isLivePointer(Ptr));
  EXPECT_EQ(F.Heap.deferredCount(), 0u);
}

TEST(CorrectingHeap, DeferralKeyedOnSitePair) {
  Fixture F;
  PatchSet Patches;
  Patches.addDeferral(F.AllocSite, F.FreeSite, 50);
  F.Heap.setPatches(Patches);

  // Same allocation site, different free site: not deferred.
  void *Ptr = F.allocateAtSite(32);
  {
    CallContext::Scope Scope(F.Context, 0xee);
    F.Heap.deallocate(Ptr);
  }
  EXPECT_FALSE(F.Heap.diefast().heap().isLivePointer(Ptr));
  EXPECT_EQ(F.Heap.deferredCount(), 0u);
}

TEST(CorrectingHeap, DeferredFreeKeepsOriginalFreeSite) {
  Fixture F;
  PatchSet Patches;
  Patches.addDeferral(F.AllocSite, F.FreeSite, 2);
  F.Heap.setPatches(Patches);

  void *Ptr = F.allocateAtSite(32);
  auto Ref = F.Heap.diefast().heap().findObject(Ptr);
  F.freeAtSite(Ptr);
  // Drain under a different live context.
  {
    CallContext::Scope Scope(F.Context, 0x123);
    F.Heap.allocate(32);
    F.Heap.allocate(32);
  }
  EXPECT_FALSE(F.Heap.diefast().heap().isLivePointer(Ptr));
  // The recorded free site is the one where the program freed it.
  EXPECT_EQ(F.Heap.diefast().heap().objectMetadata(*Ref).FreeSite,
            F.FreeSite);
}

TEST(CorrectingHeap, DeferralQueueDrainsInDueOrder) {
  Fixture F;
  PatchSet Patches;
  Patches.addDeferral(F.AllocSite, F.FreeSite, 3);
  F.Heap.setPatches(Patches);

  void *First = F.allocateAtSite(32);
  void *Second = F.allocateAtSite(32);
  F.freeAtSite(First);  // due at clock+3
  F.allocateAtSite(32); // advance clock
  F.freeAtSite(Second); // due later

  F.allocateAtSite(32);
  F.allocateAtSite(32); // First's due time passes
  EXPECT_FALSE(F.Heap.diefast().heap().isLivePointer(First));
  EXPECT_TRUE(F.Heap.diefast().heap().isLivePointer(Second));
}

TEST(CorrectingHeap, FlushDeferralsFreesEverything) {
  Fixture F;
  PatchSet Patches;
  Patches.addDeferral(F.AllocSite, F.FreeSite, 1000000);
  F.Heap.setPatches(Patches);

  void *A = F.allocateAtSite(32);
  void *B = F.allocateAtSite(32);
  F.freeAtSite(A);
  F.freeAtSite(B);
  EXPECT_EQ(F.Heap.deferredCount(), 2u);
  F.Heap.flushDeferrals();
  EXPECT_EQ(F.Heap.deferredCount(), 0u);
  EXPECT_FALSE(F.Heap.diefast().heap().isLivePointer(A));
  EXPECT_FALSE(F.Heap.diefast().heap().isLivePointer(B));
}

TEST(CorrectingHeap, DragAccountingMatchesDeferral) {
  Fixture F;
  PatchSet Patches;
  Patches.addDeferral(F.AllocSite, F.FreeSite, 4);
  F.Heap.setPatches(Patches);

  void *Ptr = F.allocateAtSite(256);
  F.freeAtSite(Ptr);
  EXPECT_EQ(F.Heap.correctionStats().CurrentDeferredBytes, 256u);
  EXPECT_EQ(F.Heap.correctionStats().MaxDeferredBytes, 256u);
  for (int I = 0; I < 4; ++I)
    F.allocateAtSite(32);
  // Drained after 4 ticks: drag = 256 bytes × 4 allocations (§7.3).
  EXPECT_EQ(F.Heap.correctionStats().CurrentDeferredBytes, 0u);
  EXPECT_EQ(F.Heap.correctionStats().DragByteTicks, 256u * 4);
}

TEST(CorrectingHeap, PatchReloadTakesEffectMidRun) {
  Fixture F;
  void *Before = F.allocateAtSite(64);
  auto RefBefore = F.Heap.diefast().heap().findObject(Before);
  EXPECT_EQ(F.Heap.diefast().heap().miniheap(*RefBefore).objectSize(), 64u);

  // "Reload signal" (§6.3): subsequent allocations are patched.
  PatchSet Patches;
  Patches.addPad(F.AllocSite, 6);
  F.Heap.setPatches(Patches);

  void *After = F.allocateAtSite(64);
  auto RefAfter = F.Heap.diefast().heap().findObject(After);
  EXPECT_EQ(F.Heap.diefast().heap().miniheap(*RefAfter).objectSize(), 128u);
}

TEST(CorrectingHeap, LoadPatchesFromFile) {
  Fixture F;
  PatchSet Patches;
  Patches.addPad(F.AllocSite, 36);
  const std::string Path = ::testing::TempDir() + "/correct_test.xpt";
  ASSERT_TRUE(savePatchSet(Patches, Path));
  ASSERT_TRUE(F.Heap.loadPatches(Path));
  EXPECT_EQ(F.Heap.patches().padFor(F.AllocSite), 36u);
}

TEST(CorrectingHeap, LoadPatchesMissingFileFails) {
  Fixture F;
  EXPECT_FALSE(F.Heap.loadPatches("/nonexistent/patches.xpt"));
}

TEST(CorrectingHeap, InvalidAndDoubleFreesStillBenign) {
  Fixture F;
  void *Ptr = F.allocateAtSite(32);
  F.freeAtSite(Ptr);
  F.freeAtSite(Ptr); // double free through the correcting layer
  int Local;
  F.Heap.deallocate(&Local);
  EXPECT_EQ(F.Heap.stats().DoubleFrees, 1u);
  EXPECT_EQ(F.Heap.stats().InvalidFrees, 1u);
}

TEST(CorrectingHeap, HugePadIsDroppedRatherThanFailing) {
  Fixture F;
  PatchSet Patches;
  Patches.addPad(F.AllocSite, 1u << 30); // absurd pad
  F.Heap.setPatches(Patches);
  // The request must still succeed (unpadded) rather than return null.
  EXPECT_NE(F.allocateAtSite(64), nullptr);
}

TEST(CorrectingHeap, DeferredObjectNotReusedWhileDeferred) {
  Fixture F;
  PatchSet Patches;
  Patches.addDeferral(F.AllocSite, F.FreeSite, 200);
  F.Heap.setPatches(Patches);

  uint8_t *Ptr = static_cast<uint8_t *>(F.allocateAtSite(32));
  std::memset(Ptr, 0x42, 32);
  F.freeAtSite(Ptr);
  // While deferred, the contents must survive and the slot must not be
  // handed out — that is the whole point of the correction (§6.2).
  for (int I = 0; I < 100; ++I)
    EXPECT_NE(F.allocateAtSite(32), Ptr);
  for (int I = 0; I < 32; ++I)
    EXPECT_EQ(Ptr[I], 0x42);
}

//===----------------------------------------------------------------------===//
// Hardware reports + criticality tiering (PR 9)
//===----------------------------------------------------------------------===//

#include "alloc/SizeClass.h"

TEST(CorrectingHeap, HardwareReportRetiresItsPage) {
  Fixture F;
  void *Ptr = F.allocateAtSite(64);
  const uintptr_t Page =
      reinterpret_cast<uintptr_t>(Ptr) & ~uintptr_t(0xfff);
  F.freeAtSite(Ptr);

  PatchSet Patches;
  Patches.addHardwareReport(Page, HardwareFaultBitFlip, 2);
  F.Heap.setPatches(Patches);

  DieHardHeap &Backend = F.Heap.diefast().heap();
  EXPECT_TRUE(Backend.isPageRetired(Page));
  EXPECT_GT(Backend.retiredSlotCount(), 0u);
  for (int I = 0; I < 500; ++I) {
    void *Fresh = F.allocateAtSite(64);
    ASSERT_NE(Fresh, nullptr);
    EXPECT_FALSE(Backend.isPageRetired(reinterpret_cast<uintptr_t>(Fresh)));
  }
}

TEST(CorrectingHeap, TieringHardensErrorConcentratedClasses) {
  Fixture F;
  CriticalityConfig Crit;
  Crit.Enabled = true;
  Crit.HardenThreshold = 2;
  Crit.DefensivePadBytes = 16;
  Crit.DefensiveDeferTicks = 8;
  F.Heap.setCriticality(Crit);

  // Two padded-site allocations at the 64-byte class cross the harden
  // threshold.
  PatchSet Patches;
  Patches.addPad(F.AllocSite, 6);
  F.Heap.setPatches(Patches);
  const unsigned Class = sizeclass::classFor(64);
  void *A = F.allocateAtSite(64);
  void *B = F.allocateAtSite(64);
  EXPECT_TRUE(F.Heap.isClassHardened(Class));

  // Hardened-class allocations now carry the defensive pad: 64 + 6 + 16
  // still lands in the 128-byte class, and the defensive counters move.
  void *C = F.allocateAtSite(64);
  EXPECT_GE(F.Heap.correctionStats().DefensivePadAllocations, 1u);
  EXPECT_GE(F.Heap.correctionStats().DefensivePadBytesAdded, 16u);

  // Frees of the hardened class defer defensively even with no deferral
  // patch installed.
  const size_t DeferredBefore = F.Heap.deferredCount();
  F.freeAtSite(C);
  EXPECT_EQ(F.Heap.deferredCount(), DeferredBefore + 1);
  EXPECT_GE(F.Heap.correctionStats().DefensiveDeferrals, 1u);
  F.freeAtSite(A);
  F.freeAtSite(B);
  F.Heap.flushDeferrals();
}

TEST(CorrectingHeap, TieringOffByDefaultKeepsLeanPath) {
  Fixture F;
  EXPECT_FALSE(F.Heap.criticality().Enabled);
  PatchSet Patches;
  Patches.addPad(F.AllocSite, 6);
  F.Heap.setPatches(Patches);
  void *A = F.allocateAtSite(64);
  void *B = F.allocateAtSite(64);
  void *C = F.allocateAtSite(64);
  // Error history accrues, but with tiering off nothing is hardened and
  // no defensive machinery engages.
  EXPECT_GE(F.Heap.classErrorCount(sizeclass::classFor(64)), 2u);
  EXPECT_FALSE(F.Heap.isClassHardened(sizeclass::classFor(64)));
  EXPECT_EQ(F.Heap.correctionStats().DefensivePadAllocations, 0u);
  F.freeAtSite(A);
  F.freeAtSite(B);
  F.freeAtSite(C);
  EXPECT_EQ(F.Heap.correctionStats().DefensiveDeferrals, 0u);
  EXPECT_EQ(F.Heap.deferredCount(), 0u);
}

TEST(CorrectingHeap, HardwarePageCreditsOverlappingClasses) {
  Fixture F;
  CriticalityConfig Crit;
  Crit.Enabled = true;
  Crit.HardenThreshold = 2;
  F.Heap.setCriticality(Crit);

  void *Ptr = F.allocateAtSite(64);
  const uintptr_t Page =
      reinterpret_cast<uintptr_t>(Ptr) & ~uintptr_t(0xfff);
  F.freeAtSite(Ptr);

  PatchSet Patches;
  Patches.addHardwareReport(Page, HardwareFaultRowCluster, 3);
  F.Heap.setPatches(Patches);
  // One hardware page is decisive: it credits HardenThreshold sightings,
  // hardening the class outright.
  const unsigned Class = sizeclass::classFor(64);
  EXPECT_TRUE(F.Heap.isClassHardened(Class));
  // Re-applying the same (or a superset) patch set must not double-credit.
  const uint32_t Count = F.Heap.classErrorCount(Class);
  Patches.addHardwareReport(Page, HardwareFaultRowCluster, 4);
  F.Heap.setPatches(Patches);
  EXPECT_EQ(F.Heap.classErrorCount(Class), Count);
}

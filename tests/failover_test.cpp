//===- tests/failover_test.cpp - Replicated-fleet robustness tests ----------===//
//
// Covers the fault-tolerant exchange tier: the v2 wire messages
// (MergePatches / ReplicateSummary and their replies), snapshot
// rotation and corrupt-head fallback in StateStore, FailoverTransport's
// retry budget and jittered backoff envelope, the FaultyTransport fault
// matrix (dropped replies must not double-count summaries; duplicated
// batches must be epoch-idempotent), and ReplicaSet convergence —
// including a deterministic in-process chaos run that kills and
// restarts a server mid-stream and pins that the surviving fleet
// converges to a patch set bit-identical to a no-failure run.
//
//===----------------------------------------------------------------------===//

#include "exchange/FailoverTransport.h"
#include "exchange/FaultyTransport.h"
#include "exchange/PatchClient.h"
#include "exchange/PatchServer.h"
#include "exchange/Replication.h"
#include "exchange/StateStore.h"
#include "exchange/Transport.h"

#include "TestHelpers.h"
#include "diagnose/DiagnosisPipeline.h"
#include "patch/PatchIO.h"
#include "support/Serializer.h"
#include "workload/ScriptedBugs.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <memory>
#include <string>
#include <vector>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {

//===----------------------------------------------------------------------===//
// Scaffolding
//===----------------------------------------------------------------------===//

/// A transport whose endpoint is permanently down.
struct DeadTransport : ClientTransport {
  bool exchange(const std::vector<std::vector<uint8_t>> &,
                std::vector<std::vector<uint8_t>> &) override {
    return false;
  }
  std::string lastError() const override { return "endpoint down"; }
};

/// A loopback that can be re-pointed at a different server — or at
/// nothing.  The in-process form of SIGKILL (Target = nullptr) and of
/// restarting the process (Target = the replacement server, which has a
/// fresh instance id, like a real restart).
struct RebindableLoopback : ClientTransport {
  PatchServer *Target = nullptr;
  bool exchange(const std::vector<std::vector<uint8_t>> &Requests,
                std::vector<std::vector<uint8_t>> &ResponsesOut) override {
    if (!Target)
      return false;
    LoopbackTransport Inner(*Target);
    return Inner.exchange(Requests, ResponsesOut);
  }
  std::string lastError() const override {
    return Target ? std::string() : "server killed";
  }
};

std::string freshStateDir(const std::string &Name) {
  const std::string Dir = ::testing::TempDir() + "/xfo_" + Name;
  std::remove((Dir + "/journal.xsj").c_str());
  if (DIR *Handle = ::opendir(Dir.c_str())) {
    std::vector<std::string> Stale;
    while (struct dirent *Entry = ::readdir(Handle)) {
      const std::string File = Entry->d_name;
      if (File.rfind("snapshot", 0) == 0 && File.size() >= 4 &&
          File.compare(File.size() - 4, 4, ".xst") == 0)
        Stale.push_back(Dir + "/" + File);
    }
    ::closedir(Handle);
    for (const std::string &Path : Stale)
      std::remove(Path.c_str());
  }
  return Dir;
}

ImageEvidence overflowEvidence() {
  return {imagesFromTrace(scriptedOverflowTrace(6), 3), {}};
}

ImageEvidence danglingEvidence() {
  return {imagesFromTrace(scriptedDanglingTrace(), 3), {}};
}

RunSummary failedRunSummary() {
  DiagnosisPipeline Scratch;
  return Scratch.summarize(overflowEvidence().Primary.front(),
                           /*Failed=*/true);
}

/// Fast-retry policy for tests: real waiting is the backoff suite's
/// business, everyone else just wants the walk.
FailoverPolicy quickPolicy(unsigned MaxAttempts = 6) {
  FailoverPolicy Policy;
  Policy.MaxAttempts = MaxAttempts;
  Policy.BaseBackoffMs = 1;
  Policy.MaxBackoffMs = 2;
  return Policy;
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire codec: the replication messages (protocol v2)
//===----------------------------------------------------------------------===//

TEST(FleetWireCodec, MergePatchesRoundTrip) {
  PatchSet Delta;
  Delta.addPad(0x1111, 24);
  Delta.addFrontPad(0x2222, 8);
  Delta.addDeferral(0x3333, 0x4444, 77);

  const std::vector<uint8_t> Payload = encodeMergePatches(Delta);
  PatchSet Out;
  Out.addPad(0x9999, 1); // must be cleared, not merged into
  ASSERT_TRUE(decodeMergePatches(Payload, Out));
  EXPECT_TRUE(Out == Delta);

  // A truncated payload is rejected all-or-nothing.
  std::vector<uint8_t> Torn(Payload.begin(), Payload.end() - 3);
  PatchSet Ignored;
  EXPECT_FALSE(decodeMergePatches(Torn, Ignored));
}

TEST(FleetWireCodec, MergeReplyRoundTrip) {
  MergeReply Reply;
  Reply.Instance = 0xabcdef0123456789ull;
  Reply.Epoch = 42;
  Reply.Changed = true;
  const std::vector<uint8_t> Payload = encodeMergeReply(Reply);
  MergeReply Out;
  ASSERT_TRUE(decodeMergeReply(Payload, Out));
  EXPECT_EQ(Out.Instance, Reply.Instance);
  EXPECT_EQ(Out.Epoch, Reply.Epoch);
  EXPECT_TRUE(Out.Changed);

  // The flag byte is strictly 0 or 1: anything else is a framing bug,
  // not a boolean.
  std::vector<uint8_t> Tampered = Payload;
  Tampered.back() = 2;
  EXPECT_FALSE(decodeMergeReply(Tampered, Out));
}

TEST(FleetWireCodec, ReplicateReplyRoundTrip) {
  ReplicateAck Ack;
  Ack.Instance = 7;
  Ack.Epoch = 9;
  Ack.Applied = false;
  const std::vector<uint8_t> Payload = encodeReplicateReply(Ack);
  ReplicateAck Out;
  Out.Applied = true;
  ASSERT_TRUE(decodeReplicateReply(Payload, Out));
  EXPECT_EQ(Out.Instance, 7u);
  EXPECT_EQ(Out.Epoch, 9u);
  EXPECT_FALSE(Out.Applied);
}

TEST(FleetWireCodec, SummaryCarriesDedupToken) {
  const RunSummary Summary = failedRunSummary();
  const std::vector<uint8_t> Payload =
      encodeSubmitSummary(Summary, /*CleanStreak=*/3,
                          /*Token=*/0xdeadbeefcafef00dull);
  RunSummary Out;
  unsigned Streak = 0;
  uint64_t Token = 0;
  ASSERT_TRUE(decodeSubmitSummary(Payload, Out, Streak, Token));
  EXPECT_EQ(Token, 0xdeadbeefcafef00dull);
  EXPECT_EQ(Streak, 3u);
  EXPECT_EQ(serializeRunSummary(Out), serializeRunSummary(Summary));
}

//===----------------------------------------------------------------------===//
// Snapshot rotation
//===----------------------------------------------------------------------===//

TEST(SnapshotRotation, RetentionKeepsLastK) {
  const std::string Dir = freshStateDir("retain");
  StateStore Store(Dir);
  Store.setSnapshotKeep(3);
  PatchServer Server;
  ASSERT_TRUE(Server.attachState(Store, /*SnapshotInterval=*/1000));
  {
    LoopbackTransport Transport(Server);
    PatchClient Client(Transport);
    ASSERT_TRUE(Client.submitImages(overflowEvidence()));
  }
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(Server.persistNow());

  const std::vector<std::string> Ring = Store.snapshotFiles();
  EXPECT_EQ(Ring.size(), 3u);
  // Newest-first, and the head is what snapshotPath() serves.
  ASSERT_FALSE(Ring.empty());
  EXPECT_EQ(Ring.front(), Store.snapshotPath());

  // The pruned directory still recovers the full state.
  PatchServer Recovered;
  StateStore Reopened(Dir);
  ASSERT_TRUE(Recovered.attachState(Reopened));
  EXPECT_EQ(Recovered.serializeState(), Server.serializeState());
}

TEST(SnapshotRotation, LegacySingleSnapshotLayoutStillLoads) {
  const std::string Dir = freshStateDir("legacy");
  std::vector<uint8_t> State;
  {
    StateStore Store(Dir);
    PatchServer Server;
    ASSERT_TRUE(Server.attachState(Store));
    LoopbackTransport Transport(Server);
    PatchClient Client(Transport);
    ASSERT_TRUE(Client.submitImages(overflowEvidence()));
    ASSERT_TRUE(Server.persistNow());
    State = Server.serializeState();
  }
  // Rewrite the directory into the pre-rotation layout: the newest
  // snapshot under the legacy fixed name, no generation-named files.
  {
    StateStore Probe(Dir);
    const std::vector<std::string> Rotated = Probe.snapshotFiles();
    std::vector<uint8_t> Bytes;
    ASSERT_TRUE(readFileBytes(Probe.snapshotPath(), Bytes));
    ASSERT_TRUE(writeFileBytes(Dir + "/snapshot.xst", Bytes));
    for (const std::string &Path : Rotated)
      ASSERT_EQ(std::remove(Path.c_str()), 0);
  }
  PatchServer Recovered;
  StateStore Store(Dir);
  ASSERT_TRUE(Recovered.attachState(Store));
  EXPECT_EQ(Recovered.serializeState(), State);
}

//===----------------------------------------------------------------------===//
// Failover: retry budget and backoff envelope
//===----------------------------------------------------------------------===//

TEST(FailoverBackoff, ExhaustsBudgetWithinBackoffEnvelope) {
  DeadTransport D1, D2;
  FailoverPolicy Policy;
  Policy.MaxAttempts = 6;
  Policy.BaseBackoffMs = 2;
  Policy.MaxBackoffMs = 8;
  Policy.JitterFraction = 0.5;
  Policy.Seed = 42;
  FailoverTransport Transport({&D1, &D2}, Policy, {"d1", "d2"});

  std::vector<std::vector<uint8_t>> Responses;
  const auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(Transport.exchange(
      {encodeFrame(MessageType::FetchPatches, encodeFetchPatches(0, 0))},
      Responses));
  const auto ElapsedMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - Start)
          .count();

  EXPECT_EQ(Transport.stats().Attempts, 6u);
  EXPECT_EQ(Transport.stats().Exhausted, 1u);
  // One sleep between consecutive attempts: budget − 1 of them, each
  // inside [capped·(1−jitter), capped] for its failure ordinal.
  const std::vector<unsigned> &Backoffs = Transport.backoffHistory();
  ASSERT_EQ(Backoffs.size(), 5u);
  uint64_t TotalSleptMs = 0;
  for (size_t I = 0; I < Backoffs.size(); ++I) {
    const unsigned Capped =
        std::min(Policy.BaseBackoffMs << I, Policy.MaxBackoffMs);
    EXPECT_LE(Backoffs[I], Capped) << "backoff " << I;
    EXPECT_GE(Backoffs[I] + 1, Capped / 2) << "backoff " << I;
    TotalSleptMs += Backoffs[I];
  }
  // The sleeps really happened (sleep_for never wakes early).
  EXPECT_GE(static_cast<uint64_t>(ElapsedMs) + 1, TotalSleptMs);

  // Per-endpoint roll-up names every endpoint and its failure.
  EXPECT_NE(Transport.lastError().find("d1"), std::string::npos);
  EXPECT_NE(Transport.lastError().find("d2"), std::string::npos);
  EXPECT_NE(Transport.lastError().find("endpoint down"),
            std::string::npos);

  // The jitter stream is deterministic: the same policy replays the
  // same backoff sequence.
  FailoverTransport Replay({&D1, &D2}, Policy, {"d1", "d2"});
  EXPECT_FALSE(Replay.exchange(
      {encodeFrame(MessageType::FetchPatches, encodeFetchPatches(0, 0))},
      Responses));
  EXPECT_EQ(Replay.backoffHistory(), Backoffs);
}

TEST(FailoverBackoff, FailsOverToHealthyEndpointAndSticks) {
  PatchServer Server;
  LoopbackTransport Live(Server);
  DeadTransport Dead;
  FailoverTransport Transport({&Dead, &Live}, quickPolicy(4),
                              {"dead", "live"});
  PatchClient Client(Transport);

  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_EQ(Transport.stats().Attempts, 2u);
  EXPECT_EQ(Transport.stats().Failovers, 1u);
  EXPECT_EQ(Transport.stats().Exhausted, 0u);

  // Sticky preference: the next exchange goes straight to the endpoint
  // that worked.
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_EQ(Transport.stats().Attempts, 3u);
}

TEST(FailoverBackoff, RotatePolicySpreadsExchanges) {
  PatchServer A, B;
  LoopbackTransport ToA(A), ToB(B);
  FailoverPolicy Policy = quickPolicy(2);
  Policy.Rotate = true;
  FailoverTransport Transport({&ToA, &ToB}, Policy, {"a", "b"});
  PatchClient Client(Transport);
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(Client.fetchPatches());
  // Four fetches, two servers, round-robin: two each.
  EXPECT_EQ(A.stats().FetchesServed, 2u);
  EXPECT_EQ(B.stats().FetchesServed, 2u);
}

//===----------------------------------------------------------------------===//
// Fault matrix: what each injected fault must and must not change
//===----------------------------------------------------------------------===//

TEST(FaultMatrix, DroppedReplyRetryAppliesSummaryExactlyOnce) {
  PatchServer Server;
  LoopbackTransport Inner(Server);
  FaultyTransport Faulty(Inner);
  // The server applies the batch but the client never hears back; the
  // failover layer retries the *same encoded frame* — same token.
  Faulty.push(TransportFault::DropReply);
  FailoverTransport Transport({&Faulty}, quickPolicy(4), {"flaky"});
  PatchClient Client(Transport);

  const RunSummary Summary = failedRunSummary();
  ASSERT_TRUE(Client.submitSummary(Summary, /*CleanStreak=*/0));
  EXPECT_EQ(Server.stats().SummariesIngested, 1u);
  EXPECT_EQ(Server.stats().DuplicatesSuppressed, 1u);
  EXPECT_EQ(Server.cumulativeRuns(), 1u);

  // Bit-identical to a single clean application: the retry left no
  // trace in the diagnostic state.
  PatchServer Reference;
  LoopbackTransport RefTransport(Reference);
  PatchClient RefClient(RefTransport);
  ASSERT_TRUE(RefClient.submitSummary(Summary, 0));
  EXPECT_EQ(Server.serializeState(), Reference.serializeState());
}

TEST(FaultMatrix, DuplicatedBatchIsEpochAndTrialIdempotent) {
  PatchServer Server;
  LoopbackTransport Inner(Server);
  FaultyTransport Faulty(Inner);
  PatchClient Client(Faulty);

  // Images delivered twice: max-merge makes the second pass a no-op, so
  // the epoch bumps exactly once.
  Faulty.push(TransportFault::Duplicate);
  ASSERT_TRUE(Client.submitImages(overflowEvidence()));
  EXPECT_EQ(Server.snapshot().Epoch, 1u);

  // A summary delivered twice counts one trial; the duplicate is
  // token-suppressed.
  Faulty.push(TransportFault::Duplicate);
  ASSERT_TRUE(Client.submitSummary(failedRunSummary(), 0));
  EXPECT_EQ(Server.cumulativeRuns(), 1u);
  EXPECT_EQ(Server.stats().DuplicatesSuppressed, 1u);
}

TEST(FaultMatrix, TruncatedReplyIsRejectedCleanly) {
  PatchServer Server;
  LoopbackTransport Inner(Server);
  FaultyTransport Faulty(Inner);
  PatchClient Client(Faulty);
  {
    LoopbackTransport Direct(Server);
    PatchClient Seeder(Direct);
    ASSERT_TRUE(Seeder.submitImages(overflowEvidence()));
  }

  Faulty.push(TransportFault::TruncateReply);
  EXPECT_FALSE(Client.fetchPatches());
  EXPECT_TRUE(Client.patches().empty()); // no half-decoded mirror

  // The connection-level fault is transient: the plain retry succeeds.
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_FALSE(Client.patches().empty());
}

TEST(FaultMatrix, FailConnectDeliversNothing) {
  PatchServer Server;
  LoopbackTransport Inner(Server);
  FaultyTransport Faulty(Inner);
  PatchClient Client(Faulty);
  Faulty.push(TransportFault::FailConnect);
  EXPECT_FALSE(Client.submitSummary(failedRunSummary(), 0));
  EXPECT_EQ(Server.stats().SummariesIngested, 0u);
  EXPECT_EQ(Server.cumulativeRuns(), 0u);
}

//===----------------------------------------------------------------------===//
// Replication: convergence, no-restream, anti-entropy repair
//===----------------------------------------------------------------------===//

namespace {

/// An in-process fleet of three servers in a full replication mesh over
/// rebindable loopbacks, pumped by hand for determinism.
struct Fleet {
  std::unique_ptr<PatchServer> Servers[3];
  std::unique_ptr<ReplicaSet> Replicas[3];
  /// Mesh[From][To] is From's link to To (nullptr on the diagonal);
  /// borrowed from the owning ReplicaSet.
  RebindableLoopback *Mesh[3][3] = {};

  Fleet() {
    for (int I = 0; I < 3; ++I)
      Servers[I] = std::make_unique<PatchServer>();
    for (int From = 0; From < 3; ++From) {
      Replicas[From] = std::make_unique<ReplicaSet>(*Servers[From]);
      for (int To = 0; To < 3; ++To) {
        if (To == From)
          continue;
        auto Link = std::make_unique<RebindableLoopback>();
        Link->Target = Servers[To].get();
        Mesh[From][To] = Link.get();
        Replicas[From]->addPeer("s" + std::to_string(To),
                                std::move(Link));
      }
    }
  }

  /// SIGKILL server \p Victim: its replication links die with it and
  /// every link *to* it goes dark (queues on the survivors retain).
  void kill(int Victim) {
    Replicas[Victim].reset();
    Servers[Victim].reset();
    for (int From = 0; From < 3; ++From)
      if (From != Victim && Mesh[From][Victim])
        Mesh[From][Victim]->Target = nullptr;
  }

  /// Restart \p Victim as a fresh process: empty state, fresh instance,
  /// new replication links into the surviving mesh.
  void restart(int Victim) {
    Servers[Victim] = std::make_unique<PatchServer>();
    Replicas[Victim] = std::make_unique<ReplicaSet>(*Servers[Victim]);
    for (int To = 0; To < 3; ++To) {
      if (To == Victim)
        continue;
      auto Link = std::make_unique<RebindableLoopback>();
      Link->Target = Servers[To].get();
      Mesh[Victim][To] = Link.get();
      Replicas[Victim]->addPeer("s" + std::to_string(To),
                                std::move(Link));
      Mesh[To][Victim]->Target = Servers[Victim].get();
    }
  }

  /// One deterministic pump round: every live stream queue drains, then
  /// every server runs one anti-entropy pass.
  void pump() {
    for (auto &R : Replicas)
      if (R)
        R->drainOnce();
    for (auto &R : Replicas)
      if (R)
        R->antiEntropyOnce();
  }

  std::vector<uint8_t> patchBytes(int I) const {
    return serializePatchSet(Servers[I]->snapshot().Patches);
  }
};

} // namespace

TEST(FleetReplication, StreamedSubmissionConvergesWholeMesh) {
  Fleet F;
  LoopbackTransport Transport(*F.Servers[0]);
  PatchClient Client(Transport);
  ASSERT_TRUE(Client.submitImages(overflowEvidence()));
  ASSERT_TRUE(Client.submitSummary(failedRunSummary(), 0));

  // One drain delivers the journal stream to both peers directly; no
  // anti-entropy needed on the hot path.
  ASSERT_TRUE(F.Replicas[0]->drainOnce());
  EXPECT_EQ(F.patchBytes(1), F.patchBytes(0));
  EXPECT_EQ(F.patchBytes(2), F.patchBytes(0));
  EXPECT_FALSE(F.Servers[0]->snapshot().Patches.empty());

  // Summaries replicated exactly once each, and the receivers did not
  // re-forward them (no-restream: each server saw one copy).
  for (int I = 1; I < 3; ++I) {
    EXPECT_EQ(F.Servers[I]->stats().ReplicatedSummaries, 1u) << I;
    EXPECT_EQ(F.Servers[I]->cumulativeRuns(), 1u) << I;
    EXPECT_EQ(F.Servers[I]->stats().DuplicatesSuppressed, 0u) << I;
  }

  // Converged: further pump rounds change nothing and the patch bytes
  // stay bit-identical.
  const std::vector<uint8_t> Before = F.patchBytes(0);
  F.pump();
  F.pump();
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(F.patchBytes(I), Before) << I;
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(F.Servers[I]->cumulativeRuns(), 1u) << I;
}

TEST(FleetReplication, AntiEntropyDeliversTransitivelyDownAChain) {
  // A chain, not a mesh: A only knows B, B only knows C.  Patch state
  // must reach C transitively — purely via B's anti-entropy full-set
  // push, since streamed records are never re-forwarded (the
  // no-restream rule).
  PatchServer A, B, C;
  ReplicaSet RA(A), RB(B);
  auto LinkAB = std::make_unique<RebindableLoopback>();
  LinkAB->Target = &B;
  RA.addPeer("b", std::move(LinkAB));
  auto LinkBC = std::make_unique<RebindableLoopback>();
  LinkBC->Target = &C;
  RB.addPeer("c", std::move(LinkBC));

  LoopbackTransport Transport(A);
  PatchClient Client(Transport);
  ASSERT_TRUE(Client.submitImages(overflowEvidence()));
  ASSERT_TRUE(Client.submitSummary(failedRunSummary(), 0));

  // Streaming reaches B (A's only peer) and stops there.
  ASSERT_TRUE(RA.drainOnce());
  ASSERT_TRUE(RB.drainOnce());
  EXPECT_FALSE(B.snapshot().Patches.empty());
  EXPECT_TRUE(C.snapshot().Patches.empty());
  EXPECT_EQ(C.stats().ReplicatedSummaries, 0u);

  // B's anti-entropy push carries the merged set one hop further.
  // Summaries do not transit (the documented loss bound): the trial
  // history lives where it was streamed, not beyond.
  EXPECT_EQ(RB.antiEntropyOnce(), 1u);
  EXPECT_EQ(serializePatchSet(C.snapshot().Patches),
            serializePatchSet(A.snapshot().Patches));
  EXPECT_EQ(B.cumulativeRuns(), 1u);
  EXPECT_EQ(C.cumulativeRuns(), 0u);
}

TEST(FleetReplication, RestartedPeerResyncsFromSurvivors) {
  Fleet F;
  LoopbackTransport Transport(*F.Servers[0]);
  PatchClient Client(Transport);
  ASSERT_TRUE(Client.submitImages(overflowEvidence()));
  F.pump();
  ASSERT_EQ(F.patchBytes(1), F.patchBytes(0));

  // Kill server 2 after convergence, submit more evidence, restart it:
  // the fresh instance holds nothing until anti-entropy pushes the full
  // set back into it (its fresh instance id re-arms every pull, and the
  // survivors' push cursors re-arm on their next epoch check).
  F.kill(2);
  ASSERT_TRUE(Client.submitImages(danglingEvidence()));
  F.Replicas[0]->drainOnce(); // server 1 gets it; link to 2 is dark
  F.restart(2);
  EXPECT_TRUE(F.Servers[2]->snapshot().Patches.empty());
  F.pump();
  F.pump();
  EXPECT_EQ(F.patchBytes(2), F.patchBytes(0));
  EXPECT_EQ(F.patchBytes(1), F.patchBytes(0));
  EXPECT_FALSE(F.Servers[2]->snapshot().Patches.empty());
}

TEST(FleetReplication, ChaosKillConvergesBitIdenticalToNoFailureRun) {
  // The no-failure reference: one server fed the whole evidence stream.
  const ImageEvidence Overflow = overflowEvidence();
  const ImageEvidence Dangling = danglingEvidence();
  std::vector<RunSummary> Summaries;
  {
    DiagnosisPipeline Scratch;
    for (const HeapImage &Image : Overflow.Primary)
      Summaries.push_back(Scratch.summarize(Image, /*Failed=*/true));
  }
  std::vector<uint8_t> ReferenceBytes;
  uint64_t ReferenceRuns = 0;
  {
    PatchServer Reference;
    LoopbackTransport Transport(Reference);
    PatchClient Client(Transport);
    ASSERT_TRUE(Client.submitImages(Overflow));
    ASSERT_TRUE(Client.submitImages(Dangling));
    for (const RunSummary &Summary : Summaries)
      ASSERT_TRUE(Client.submitSummary(Summary, 0));
    ReferenceBytes = serializePatchSet(Reference.snapshot().Patches);
    ReferenceRuns = Reference.cumulativeRuns();
  }

  // The chaos run: a three-server fleet, a failover client whose
  // preferred endpoint is the one that gets killed, and a kill +
  // restart in the middle of the stream.
  Fleet F;
  RebindableLoopback ClientLinks[3];
  for (int I = 0; I < 3; ++I)
    ClientLinks[I].Target = F.Servers[I].get();
  FailoverTransport Transport(
      {&ClientLinks[1], &ClientLinks[0], &ClientLinks[2]},
      quickPolicy(/*MaxAttempts=*/6), {"s1", "s0", "s2"});
  PatchClient Client(Transport);

  // Phase 1: overflow evidence lands on server 1, replicates out.
  ASSERT_TRUE(Client.submitImages(Overflow));
  F.pump();

  // Phase 2: SIGKILL the client's preferred server mid-run.  Every
  // remaining submission must still complete within the retry budget —
  // the client walks to a survivor.
  F.kill(1);
  ClientLinks[1].Target = nullptr;
  ASSERT_TRUE(Client.submitImages(Dangling));
  for (const RunSummary &Summary : Summaries)
    ASSERT_TRUE(Client.submitSummary(Summary, 0));
  EXPECT_GT(Transport.stats().Failovers, 0u);
  EXPECT_EQ(Transport.stats().Exhausted, 0u);
  F.pump();

  // Phase 3: the killed server restarts empty and rejoins.
  F.restart(1);
  ClientLinks[1].Target = F.Servers[1].get();
  F.pump();
  F.pump();

  // The fleet — including the restarted server — converges to patch
  // bytes bit-identical to the no-failure single-server run.
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(F.patchBytes(I), ReferenceBytes) << "server " << I;
  EXPECT_FALSE(ReferenceBytes.empty());

  // And no summary was double-counted anywhere along the way: the
  // survivors hold exactly the reference trial history.
  EXPECT_EQ(F.Servers[0]->cumulativeRuns() +
                F.Servers[2]->cumulativeRuns(),
            2 * ReferenceRuns);
}

TEST(FleetReplication, MixedSoftwareAndHardwareEvidenceConvergesFleetWide) {
  // PR 9 acceptance: a fleet where one member sees an overflow and
  // another sees physical bit damage must converge to one set carrying
  // both the site pad and the hardware-page report — the hardware table
  // rides the same journal / anti-entropy machinery as the site tables.
  Fleet F;

  LoopbackTransport T0(*F.Servers[0]);
  PatchClient Software(T0);
  ASSERT_TRUE(Software.submitImages(overflowEvidence()));

  FaultPlan Fault;
  Fault.Kind = FaultKind::BitFlip;
  Fault.TriggerAllocation = 150;
  Fault.PatternSeed = 7;
  LoopbackTransport T1(*F.Servers[1]);
  PatchClient Hardware(T1);
  ASSERT_TRUE(Hardware.submitImages(
      {scriptedHardwareEvidenceImages(3, Fault), {}}));

  F.pump();
  F.pump();

  CallContext Context;
  Context.pushFrame(ScriptedBugSites().Culprit);
  const SiteId Culprit = Context.currentSite();
  const std::vector<uint8_t> Reference = F.patchBytes(0);
  for (int I = 0; I < 3; ++I) {
    const PatchSet &Merged = F.Servers[I]->snapshot().Patches;
    EXPECT_GE(Merged.padFor(Culprit), 6u) << I;
    EXPECT_GT(Merged.hardwareReportCount(), 0u) << I;
    EXPECT_EQ(F.patchBytes(I), Reference) << I;
  }

  // Converged for good: further rounds are no-ops.
  F.pump();
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(F.patchBytes(I), Reference) << I;
}

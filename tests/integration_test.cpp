//===- tests/integration_test.cpp - Cross-module edge interactions -------------===//
//
// Integration tests of behaviors that only emerge when modules compose:
// logical-pointer masking over real stored pointers, double frees of
// deferred objects, voter ties, and isolation under cumulative-mode
// partial canarying.
//
//===----------------------------------------------------------------------===//

#include "isolate/ErrorIsolator.h"
#include "runtime/Exterminator.h"
#include "runtime/Voter.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace exterminator;

namespace {

/// A workload whose objects store *pointers to each other*: every image
/// has different addresses inside object payloads, which the isolator
/// must recognize as the same logical pointers (§4.1).
class PointerGraphWorkload : public Workload {
public:
  const char *name() const override { return "pointer-graph"; }

  WorkloadResult run(AllocatorHandle &Handle,
                     uint64_t InputSeed) const override {
    WorkloadResult Result;
    (void)InputSeed;
    std::vector<uint8_t *> Nodes;
    // A linked structure: node[i] points at node[i-1].
    for (int I = 0; I < 24; ++I) {
      uint8_t *Node = static_cast<uint8_t *>(Handle.allocate(64, 0x70));
      if (!Node) {
        Result.Status = RunStatusKind::Abort;
        return Result;
      }
      uint64_t Prev =
          Nodes.empty() ? 0 : reinterpret_cast<uint64_t>(Nodes.back());
      std::memcpy(Node, &Prev, 8);
      std::memset(Node + 8, 0x77, 56);
      Nodes.push_back(Node);
    }
    // Churn so there are canaried slots too.
    for (int I = 0; I < 30; ++I) {
      uint8_t *Tmp = static_cast<uint8_t *>(Handle.allocate(64, 0x71));
      Handle.deallocate(Tmp, 0x72);
    }
    Result.Output.push_back(1);
    return Result;
  }
};

} // namespace

TEST(Integration, StoredPointersAreNotFlaggedAcrossImages) {
  // Heap addresses differ per image; the pointer fields must be masked
  // as logical pointers and produce zero findings.
  PointerGraphWorkload Work;
  ExterminatorConfig Config;
  std::vector<HeapImage> Images;
  for (uint64_t Seed : {11, 22, 33, 44})
    Images.push_back(
        runWorkloadOnce(Work, 1, Seed, Config, PatchSet()).FinalImage);
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_TRUE(Result.Overflows.empty());
  EXPECT_TRUE(Result.Danglings.empty());
}

TEST(Integration, ClassifyWordSeesStoredPointersAsLogical) {
  PointerGraphWorkload Work;
  ExterminatorConfig Config;
  std::vector<HeapImage> Images;
  for (uint64_t Seed : {11, 22, 33})
    Images.push_back(
        runWorkloadOnce(Work, 1, Seed, Config, PatchSet()).FinalImage);
  const std::vector<HeapImageView> Views = makeViews(Images);
  const EvidenceCollector Collector(Views);

  // Node with object id 2 points at node id 1: gather its pointer word
  // from each image and classify.
  std::vector<uint64_t> Values;
  for (size_t I = 0; I < Images.size(); ++I) {
    auto Loc = Views[I].findById(2);
    ASSERT_TRUE(Loc.has_value());
    const std::vector<uint8_t> Bytes = Images[I].contents(*Loc).decode();
    uint64_t Word;
    std::memcpy(&Word, Bytes.data(), 8);
    Values.push_back(Word);
  }
  EXPECT_EQ(Collector.classifyWord(2, 0, Values),
            WordClassKind::LogicalPointer);
}

TEST(Integration, DoubleFreeOfDeferredObjectStaysBenign) {
  CallContext Context;
  CorrectingHeap Heap(DieFastConfig(), &Context);
  CallContext ProbeA, ProbeF;
  ProbeA.pushFrame(0xa);
  ProbeF.pushFrame(0xf);
  PatchSet Patches;
  Patches.addDeferral(ProbeA.currentSite(), ProbeF.currentSite(), 10);
  Heap.setPatches(Patches);

  void *Ptr;
  {
    CallContext::Scope Scope(Context, 0xa);
    Ptr = Heap.allocate(32);
  }
  {
    CallContext::Scope Scope(Context, 0xf);
    Heap.deallocate(Ptr); // deferred
    Heap.deallocate(Ptr); // double free while deferred
  }
  // Drain everything; the heap must survive with exactly one real free.
  Heap.flushDeferrals();
  EXPECT_EQ(Heap.stats().Deallocations, 1u);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
  EXPECT_FALSE(Heap.diefast().heap().isLivePointer(Ptr));
  // And stays usable.
  EXPECT_NE(Heap.allocate(32), nullptr);
}

TEST(Integration, VoterTieHasNoWinner) {
  WorkloadResult A, B;
  A.Output = {1};
  B.Output = {2};
  const auto Vote = voteOnOutputs({A, A, B, B});
  // 2-2 tie: some output wins the plurality scan, but dissenters exist,
  // which is what flags the error in replicated mode.
  EXPECT_FALSE(Vote.Unanimous);
  EXPECT_FALSE(Vote.Dissenters.empty());
}

TEST(Integration, IsolationToleratesPartialCanarying) {
  // Cumulative-style images (p = 1/2) still feed the iterative isolator
  // without false positives: uncanaried freed slots are simply
  // unobservable.
  PointerGraphWorkload Work;
  ExterminatorConfig Config;
  Config.CanaryFillProbability = 0.5;
  std::vector<HeapImage> Images;
  for (uint64_t Seed : {5, 6, 7})
    Images.push_back(
        runWorkloadOnce(Work, 1, Seed, Config, PatchSet()).FinalImage);
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_TRUE(Result.Patches.empty());
}

TEST(Integration, QuarantinedEvidenceSurvivesHeavyReuse) {
  // After DieFast quarantines a corrupted slot, arbitrary amounts of
  // later traffic must not disturb the preserved bytes.
  DieFastConfig Config;
  Config.Heap.Seed = 91;
  Config.Heap.InitialSlots = 16;
  DieFastHeap Heap(Config);
  bool Signalled = false;
  ObjectRef Bad;
  Heap.setErrorHandler([&](const ErrorSignal &Signal) {
    if (!Signalled)
      Bad = Signal.Where;
    Signalled = true;
  });

  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
  Heap.deallocate(Ptr);
  Ptr[5] = 0xEE;
  for (int I = 0; I < 1000 && !Signalled; ++I)
    Heap.deallocate(Heap.allocate(32));
  ASSERT_TRUE(Signalled);

  // Heavy traffic across several classes.
  std::vector<void *> Hold;
  for (int I = 0; I < 2000; ++I) {
    void *P = Heap.allocate(8u << (I % 5));
    if (I % 3 == 0)
      Hold.push_back(P);
    else
      Heap.deallocate(P);
  }
  EXPECT_EQ(Heap.heap().objectPointer(Bad)[5], 0xEE);
  EXPECT_TRUE(Heap.heap().objectMetadata(Bad).Bad);
}

//===- tests/report_test.cpp - Patch-report tests --------------------------------===//

#include "report/PatchReport.h"

#include <gtest/gtest.h>

using namespace exterminator;

TEST(SiteRegistry, DescribesNamedAndUnnamedSites) {
  SiteRegistry Registry;
  Registry.name(0x1234, "rewriteUrl (src/url.c:88)");
  EXPECT_EQ(Registry.describe(0x1234), "rewriteUrl (src/url.c:88)");
  EXPECT_EQ(Registry.describe(0xabcd), "site 0x0000abcd");
}

TEST(PatchReport, EmptyPatchSetSaysSo) {
  const std::string Report = generatePatchReport(PatchSet());
  EXPECT_NE(Report.find("empty"), std::string::npos);
}

TEST(PatchReport, OverflowFindingCarriesExtentAndFix) {
  PatchSet Patches;
  Patches.addPad(0xdeadbeef, 6);
  const std::string Report = generatePatchReport(Patches);
  EXPECT_NE(Report.find("heap-buffer-overflow"), std::string::npos);
  EXPECT_NE(Report.find("0xdeadbeef"), std::string::npos);
  EXPECT_NE(Report.find("6 byte(s)"), std::string::npos);
  EXPECT_NE(Report.find("suggested fix"), std::string::npos);
}

TEST(PatchReport, DanglingFindingCarriesBothSites) {
  PatchSet Patches;
  Patches.addDeferral(0xaaaa0001, 0xbbbb0002, 101);
  const std::string Report = generatePatchReport(Patches);
  EXPECT_NE(Report.find("dangling pointer"), std::string::npos);
  EXPECT_NE(Report.find("0xaaaa0001"), std::string::npos);
  EXPECT_NE(Report.find("0xbbbb0002"), std::string::npos);
  // Deferral 101 = 2*50 + 1: the report derives a 50-allocation window.
  EXPECT_NE(Report.find("50 allocation(s)"), std::string::npos);
}

TEST(PatchReport, RegistryNamesAppearInReport) {
  PatchSet Patches;
  Patches.addPad(0x1111, 36);
  SiteRegistry Registry;
  Registry.name(0x1111, "cube_alloc (espresso/cvrm.c:142)");
  const std::string Report = generatePatchReport(Patches, &Registry);
  EXPECT_NE(Report.find("cube_alloc (espresso/cvrm.c:142)"),
            std::string::npos);
}

TEST(PatchReport, CountsFindings) {
  PatchSet Patches;
  Patches.addPad(1, 4);
  Patches.addPad(2, 8);
  Patches.addDeferral(3, 4, 11);
  const std::string Report = generatePatchReport(Patches);
  EXPECT_NE(Report.find("3 finding(s)"), std::string::npos);
  EXPECT_NE(Report.find("2 overflow site(s)"), std::string::npos);
  EXPECT_NE(Report.find("1 dangling site pair(s)"), std::string::npos);
}

//===- tests/heapimage_test.cpp - Heap image tests ----------------------------===//
//
// Covers the columnar format-v2 heap image: capture, run-encoded
// contents, the HeapImageView lookups, v2 round-trips, v1 compatibility
// (load + equivalence with v2), malformed-input rejection, and the
// image-size reduction the columnar layout exists for.
//
//===----------------------------------------------------------------------===//

#include "heapimage/HeapImageIO.h"

#include "heapimage/ImageBundle.h"
#include "support/Serializer.h"

#include "diefast/DieFastHeap.h"
#include "runtime/Exterminator.h"
#include "workload/EspressoWorkload.h"
#include "workload/SquidWorkload.h"
#include "workload/TraceWorkload.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace exterminator;

namespace {

DieFastConfig testConfig(uint64_t Seed = 1) {
  DieFastConfig Config;
  Config.Heap.Seed = Seed;
  Config.Heap.InitialSlots = 16;
  return Config;
}

/// A small heap with live, freed-canaried, and dirty objects.
struct Fixture {
  DieFastHeap Heap;
  uint8_t *Live = nullptr;
  uint8_t *Freed = nullptr;
  uint64_t LiveId = 0;
  uint64_t FreedId = 0;

  explicit Fixture(uint64_t Seed = 5) : Heap(testConfig(Seed)) {
    Live = static_cast<uint8_t *>(Heap.allocate(48));
    std::memset(Live, 0x11, 48);
    Freed = static_cast<uint8_t *>(Heap.allocate(64));
    LiveId = Heap.heap().objectMetadata(*Heap.heap().findObject(Live)).ObjectId;
    FreedId =
        Heap.heap().objectMetadata(*Heap.heap().findObject(Freed)).ObjectId;
    Heap.allocate(32);
    Heap.deallocate(Freed);
  }
};

/// A bigger randomized image: scripted churn with varied writes.
HeapImage randomizedImage(uint64_t HeapSeed) {
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < 40; ++I) {
    Ops.push_back(TraceOp::alloc(I, 16 + (I % 5) * 24, 0x100 + I % 7));
    Ops.push_back(
        TraceOp::write(I, 0, 8 + (I % 3) * 8, static_cast<uint8_t>(I)));
  }
  for (uint32_t I = 0; I < 40; I += 3)
    Ops.push_back(TraceOp::free(I, 0x300));
  for (uint32_t I = 100; I < 130; ++I)
    Ops.push_back(TraceOp::alloc(I, 64, 0x200));
  TraceWorkload Work(Ops);
  ExterminatorConfig Config;
  return runWorkloadOnce(Work, 1, HeapSeed, Config, PatchSet()).FinalImage;
}

} // namespace

//===----------------------------------------------------------------------===//
// Capture
//===----------------------------------------------------------------------===//

TEST(HeapImage, CaptureRecordsClockAndCanary) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  EXPECT_EQ(Image.AllocationTime, 3u);
  EXPECT_EQ(Image.CanaryValue, F.Heap.canary().value());
  EXPECT_DOUBLE_EQ(Image.CanaryFillProbability, 1.0);
  EXPECT_DOUBLE_EQ(Image.Multiplier, 2.0);
  EXPECT_EQ(Image.SourceFormatVersion, HeapImageFormatV2);
}

TEST(HeapImage, CaptureReflectsSlotStates) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const HeapImageView View(Image);

  auto LiveLoc = View.findById(F.LiveId);
  ASSERT_TRUE(LiveLoc.has_value());
  EXPECT_TRUE(Image.isAllocated(*LiveLoc));
  EXPECT_FALSE(Image.isCanaried(*LiveLoc));
  EXPECT_EQ(Image.requestedSize(*LiveLoc), 48u);
  EXPECT_EQ(Image.contents(*LiveLoc)[0], 0x11);

  auto FreedLoc = View.findById(F.FreedId);
  ASSERT_TRUE(FreedLoc.has_value());
  EXPECT_FALSE(Image.isAllocated(*FreedLoc));
  EXPECT_TRUE(Image.isCanaried(*FreedLoc));
  EXPECT_EQ(Image.freeTime(*FreedLoc), 3u);
}

TEST(HeapImage, CapturedContentsMatchMemory) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const HeapImageView View(Image);
  auto Loc = View.findById(F.LiveId);
  ASSERT_TRUE(Loc.has_value());
  const std::vector<uint8_t> Bytes = Image.contents(*Loc).decode();
  EXPECT_EQ(std::memcmp(Bytes.data(), F.Live, Bytes.size()), 0);
}

TEST(HeapImage, ObjectAndSlotCounts) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  EXPECT_EQ(Image.objectCount(), 3u); // live + freed + third
  EXPECT_GT(Image.totalSlots(), 3u);  // over-provisioned heap
}

TEST(HeapImage, ObjectIdDoublesAsAllocTime) {
  // The collapsed ObjectId/AllocTime pair: ids are drawn from the
  // allocation clock.
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const HeapImageView View(Image);
  auto Loc = View.findById(F.LiveId);
  ASSERT_TRUE(Loc.has_value());
  EXPECT_EQ(Image.allocTime(*Loc), Image.objectId(*Loc));
  EXPECT_EQ(Image.allocTime(*Loc), F.LiveId);
}

//===----------------------------------------------------------------------===//
// Run encoding
//===----------------------------------------------------------------------===//

TEST(HeapImage, VirginSlotsEncodeAsSinglePatternRun) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  bool SawVirgin = false;
  for (uint32_t M = 0; M < Image.miniheapCount() && !SawVirgin; ++M)
    for (uint32_t S = 0; S < Image.miniheapInfo(M).NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      if (Image.objectId(Loc) != 0 || Image.slotFlags(Loc) != 0)
        continue;
      SawVirgin = true;
      const SlotContents Contents = Image.contents(Loc);
      ASSERT_EQ(Contents.runCount(), 1u);
      EXPECT_EQ(Contents.run(0).RunKind, ContentsRun::Pattern);
      EXPECT_EQ(Contents.run(0).Word, 0u);
      break;
    }
  EXPECT_TRUE(SawVirgin);
}

TEST(HeapImage, CanariedSlotsEncodeAsPatternRun) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const HeapImageView View(Image);
  auto Loc = View.findById(F.FreedId);
  ASSERT_TRUE(Loc.has_value());
  const SlotContents Contents = Image.contents(*Loc);
  // A freshly canary-filled 64-byte slot is one repeated-word run, and
  // the canary scan over it reports an intact pattern.
  ASSERT_EQ(Contents.runCount(), 1u);
  EXPECT_EQ(Contents.run(0).RunKind, ContentsRun::Pattern);
  EXPECT_FALSE(
      Contents.findCorruption(Canary::fromValue(Image.CanaryValue)));
}

TEST(HeapImage, RunDecodeMatchesLiveMemory) {
  // Every slot's decoded contents must equal the slab bytes, whatever
  // mix of literal and pattern runs the encoder chose.
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  size_t Checked = 0;
  uint32_t ImageM = 0;
  F.Heap.heap().forEachMiniheap([&](unsigned, unsigned,
                                    const Miniheap &Mini) {
    for (uint32_t S = 0; S < Mini.numSlots(); ++S) {
      const std::vector<uint8_t> Decoded =
          Image.contents(ImageLocation{ImageM, S}).decode();
      ASSERT_EQ(Decoded.size(), Mini.objectSize());
      EXPECT_EQ(std::memcmp(Decoded.data(), Mini.slotPointer(S),
                            Decoded.size()),
                0);
      ++Checked;
    }
    ++ImageM;
  });
  EXPECT_EQ(Checked, Image.totalSlots());
}

TEST(HeapImage, CorruptedCanaryFoundThroughRuns) {
  DieFastHeap Heap(testConfig(17));
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(64));
  Heap.deallocate(Ptr); // canary fill
  Ptr[10] = 0x5a;       // corrupt one byte mid-slot
  Ptr[11] = 0x5b;
  const HeapImage Image = captureHeapImage(Heap);
  const HeapImageView View(Image);
  auto Located = View.locateAddress(reinterpret_cast<uint64_t>(Ptr));
  ASSERT_TRUE(Located.has_value());
  const std::optional<CorruptionExtent> Extent =
      Image.contents(Located->first)
          .findCorruption(Canary::fromValue(Image.CanaryValue));
  ASSERT_TRUE(Extent.has_value());
  EXPECT_LE(Extent->Begin, 10u);
  EXPECT_GE(Extent->End, 12u);
}

//===----------------------------------------------------------------------===//
// View lookups
//===----------------------------------------------------------------------===//

TEST(HeapImageView, LocateAddressMapsInteriorBytes) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const HeapImageView View(Image);
  const uint64_t Addr = reinterpret_cast<uint64_t>(F.Live) + 17;
  auto Located = View.locateAddress(Addr);
  ASSERT_TRUE(Located.has_value());
  EXPECT_EQ(Image.objectId(Located->first), F.LiveId);
  EXPECT_EQ(Located->second, 17u);
}

TEST(HeapImageView, LocateAddressRejectsOutsideHeap) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const HeapImageView View(Image);
  EXPECT_FALSE(View.locateAddress(0x10).has_value());
  EXPECT_FALSE(View.locateAddress(~uint64_t(0) - 64).has_value());
}

TEST(HeapImageView, FindByIdMissesUnknownIds) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const HeapImageView View(Image);
  EXPECT_FALSE(View.findById(999).has_value());
  EXPECT_FALSE(View.findById(0).has_value());
}

//===----------------------------------------------------------------------===//
// v2 round-trips
//===----------------------------------------------------------------------===//

TEST(HeapImageIO, V2SerializeDeserializeRoundTrip) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const std::vector<uint8_t> Bytes = serializeHeapImage(Image);
  HeapImage Back;
  ASSERT_TRUE(deserializeHeapImage(Bytes, Back));
  EXPECT_EQ(Back.SourceFormatVersion, HeapImageFormatV2);
  EXPECT_TRUE(Back == Image);
}

TEST(HeapImageIO, V2RoundTripOnRandomizedImages) {
  for (uint64_t Seed : {7u, 1234u, 99999u}) {
    const HeapImage Image = randomizedImage(Seed);
    HeapImage Back;
    ASSERT_TRUE(deserializeHeapImage(serializeHeapImage(Image), Back))
        << "seed " << Seed;
    EXPECT_TRUE(Back == Image) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// v1 compatibility
//===----------------------------------------------------------------------===//

TEST(HeapImageIO, V1ImagesStillLoad) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const std::vector<uint8_t> V1Bytes = serializeHeapImageV1(Image);
  HeapImage Back;
  ASSERT_TRUE(deserializeHeapImage(V1Bytes, Back));
  EXPECT_EQ(Back.SourceFormatVersion, HeapImageFormatV1);
  EXPECT_TRUE(Back == Image);
}

TEST(HeapImageIO, V1V2EquivalenceOnRandomizedImages) {
  // The acceptance pin: an image round-tripped through v1 and through v2
  // deserializes to the identical in-memory image, so every downstream
  // consumer (isolation, estimation) sees identical inputs.
  for (uint64_t Seed : {3u, 4242u, 777777u}) {
    const HeapImage Image = randomizedImage(Seed);
    HeapImage FromV1, FromV2;
    ASSERT_TRUE(deserializeHeapImage(serializeHeapImageV1(Image), FromV1));
    ASSERT_TRUE(deserializeHeapImage(serializeHeapImage(Image), FromV2));
    EXPECT_TRUE(FromV1 == FromV2) << "seed " << Seed;
    EXPECT_TRUE(FromV1 == Image) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Malformed input rejection
//===----------------------------------------------------------------------===//

TEST(HeapImageIO, RejectsGarbageBuffer) {
  HeapImage Image;
  EXPECT_FALSE(deserializeHeapImage({1, 2, 3, 4, 5, 6, 7, 8}, Image));
  EXPECT_FALSE(deserializeHeapImage(std::vector<uint8_t>{}, Image));
}

TEST(HeapImageIO, RejectsCorruptVersionField) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeHeapImage(captureHeapImage(F.Heap));
  Bytes[4] = 0x77; // version field of the v2 header
  HeapImage Image;
  EXPECT_FALSE(deserializeHeapImage(Bytes, Image));
}

TEST(HeapImageIO, RejectsTruncatedBuffers) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  for (const std::vector<uint8_t> &Full :
       {serializeHeapImage(Image), serializeHeapImageV1(Image)}) {
    // Every prefix must be rejected, not just the half-way cut.
    for (size_t Cut = 0; Cut < Full.size();
         Cut += 1 + Full.size() / 97) {
      std::vector<uint8_t> Truncated(Full.begin(), Full.begin() + Cut);
      HeapImage Out;
      EXPECT_FALSE(deserializeHeapImage(Truncated, Out))
          << "prefix of " << Cut << " of " << Full.size();
    }
  }
}

namespace {

/// Hand-forges a v2 image header for one miniheap of \p NumSlots
/// 64-byte slots, ready for malicious slot records.
ByteWriter forgeV2Header(uint64_t NumSlots) {
  ByteWriter Writer;
  Writer.writeU32(0x58484932); // "XHI2" magic
  Writer.writeU32(2);          // version
  Writer.writeU64(10);         // allocation time
  Writer.writeU32(0x12345679); // canary
  Writer.writeF64(1.0);
  Writer.writeF64(2.0);
  Writer.writeU64(1);     // heap seed
  Writer.writeVarU64(1);  // site table: just the null site
  Writer.writeU32(0);
  Writer.writeVarU64(1);  // one miniheap
  Writer.writeVarU64(3);  // size class
  Writer.writeVarU64(64); // object size
  Writer.writeU64(0x1000);
  Writer.writeVarU64(0); // creation time
  Writer.writeVarU64(NumSlots);
  return Writer;
}

} // namespace

TEST(HeapImageIO, RejectsWrappingRunLength) {
  // A run length of 2^64-1 after 8 valid bytes would wrap the naive
  // Total + Length bound and size a buffer from the bogus value; the
  // loader must reject it, not crash.
  ByteWriter Writer = forgeV2Header(1);
  Writer.writeU8(0);      // slot tag: no flags, no metadata
  Writer.writeVarU64(2);  // two runs
  Writer.writeU8(0);      // literal
  Writer.writeVarU64(8);
  for (int I = 0; I < 8; ++I)
    Writer.writeU8(0x11);
  Writer.writeU8(0);                // literal again
  Writer.writeVarU64(~uint64_t(0)); // wrapping length
  HeapImage Out;
  EXPECT_FALSE(deserializeHeapImage(Writer.buffer(), Out));
}

TEST(HeapImageIO, RejectsWrappingVirginRunCount) {
  // Likewise a virgin-region count of 2^64-1 after one real slot must
  // not wrap past the slot-count bound into an unbounded append loop.
  ByteWriter Writer = forgeV2Header(4);
  Writer.writeU8(0xff); // virgin run
  Writer.writeVarU64(1);
  Writer.writeU64(0);
  Writer.writeU8(0xff);             // second virgin run
  Writer.writeVarU64(~uint64_t(0)); // wrapping count
  Writer.writeU64(0);
  HeapImage Out;
  EXPECT_FALSE(deserializeHeapImage(Writer.buffer(), Out));
}

TEST(HeapImageIO, RejectsTrailingGarbage) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeHeapImage(captureHeapImage(F.Heap));
  Bytes.push_back(0xab);
  HeapImage Image;
  EXPECT_FALSE(deserializeHeapImage(Bytes, Image));
}

//===----------------------------------------------------------------------===//
// Files (streaming path)
//===----------------------------------------------------------------------===//

TEST(HeapImageIO, FileRoundTrip) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const std::string Path = ::testing::TempDir() + "/image_test.xhi";
  ASSERT_TRUE(saveHeapImage(Image, Path));
  HeapImage Back;
  ASSERT_TRUE(loadHeapImage(Path, Back));
  EXPECT_TRUE(Back == Image);
}

TEST(HeapImageIO, LoadsV1File) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const std::string Path = ::testing::TempDir() + "/image_test_v1.xhi";
  ASSERT_TRUE(writeFileBytes(Path, serializeHeapImageV1(Image)));
  HeapImage Back;
  ASSERT_TRUE(loadHeapImage(Path, Back));
  EXPECT_EQ(Back.SourceFormatVersion, HeapImageFormatV1);
  EXPECT_TRUE(Back == Image);
}

TEST(HeapImageIO, LoadMissingFileFails) {
  HeapImage Image;
  EXPECT_FALSE(loadHeapImage("/nonexistent/image.xhi", Image));
}

//===----------------------------------------------------------------------===//
// Size reduction (the point of format v2)
//===----------------------------------------------------------------------===//

TEST(HeapImageIO, V2IsFiveTimesSmallerOnExampleWorkloads) {
  struct Case {
    const char *Name;
    HeapImage Image;
  };
  EspressoWorkload Espresso;
  SquidWorkload Squid;
  ExterminatorConfig Config;
  std::vector<Case> Cases;
  Cases.push_back(
      {"espresso",
       runWorkloadOnce(Espresso, 5, 11, Config, PatchSet()).FinalImage});
  Cases.push_back(
      {"squid",
       runWorkloadOnce(Squid, 1, 13, Config, PatchSet()).FinalImage});

  for (const Case &C : Cases) {
    const size_t V1 = serializeHeapImageV1(C.Image).size();
    const size_t V2 = serializeHeapImage(C.Image).size();
    EXPECT_GE(static_cast<double>(V1) / static_cast<double>(V2), 5.0)
        << C.Name << ": v1 " << V1 << " bytes, v2 " << V2 << " bytes";
  }
}

//===----------------------------------------------------------------------===//
// Quarantine
//===----------------------------------------------------------------------===//

TEST(HeapImage, QuarantinedSlotSurvivesCapture) {
  DieFastHeap Heap(testConfig(31));
  bool Signalled = false;
  ObjectRef Bad;
  Heap.setErrorHandler([&](const ErrorSignal &S) {
    Signalled = true;
    Bad = S.Where;
  });
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
  Heap.deallocate(Ptr);
  Ptr[3] = 0x99;
  for (int I = 0; I < 500 && !Signalled; ++I)
    Heap.deallocate(Heap.allocate(32));
  ASSERT_TRUE(Signalled);

  const HeapImage Image = captureHeapImage(Heap);
  bool FoundBad = false;
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M)
    for (uint32_t S = 0; S < Image.miniheapInfo(M).NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      if (Image.isBad(Loc)) {
        FoundBad = true;
        EXPECT_TRUE(Image.isAllocated(Loc));
        EXPECT_TRUE(Image.isCanaried(Loc));
        EXPECT_EQ(Image.contents(Loc)[3], 0x99);
      }
    }
  EXPECT_TRUE(FoundBad);
}

//===----------------------------------------------------------------------===//
// Image bundles (cross-image site dictionary)
//===----------------------------------------------------------------------===//

TEST(ImageBundle, RoundTripIsLossless) {
  std::vector<HeapImage> Images;
  for (uint64_t Seed : {11u, 22u, 33u})
    Images.push_back(randomizedImage(Seed));

  const std::vector<uint8_t> Bytes = serializeImageBundle(Images);
  std::vector<HeapImage> Decoded;
  ASSERT_TRUE(deserializeImageBundle(Bytes, Decoded));
  ASSERT_EQ(Decoded.size(), Images.size());
  for (size_t I = 0; I < Images.size(); ++I)
    EXPECT_TRUE(Decoded[I] == Images[I]) << "image " << I;
}

TEST(ImageBundle, EmptyBundleRoundTrips) {
  const std::vector<uint8_t> Bytes = serializeImageBundle({});
  std::vector<HeapImage> Decoded{HeapImage()};
  ASSERT_TRUE(deserializeImageBundle(Bytes, Decoded));
  EXPECT_TRUE(Decoded.empty());
}

TEST(ImageBundle, BeatsIndependentImagesOnReplicatedDumps) {
  // Replicated dumps: same program under different heap seeds, so the
  // images reference (nearly) identical call sites.  The shared
  // dictionary must make the bundle strictly smaller than shipping the
  // images as independent v2 files.
  std::vector<HeapImage> Images;
  size_t IndependentBytes = 0;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    Images.push_back(randomizedImage(Seed * 1000));
    IndependentBytes += serializeHeapImage(Images.back()).size();
  }
  const size_t BundleBytes = serializeImageBundle(Images).size();
  EXPECT_LT(BundleBytes, IndependentBytes);
}

TEST(ImageBundle, RejectsTruncation) {
  std::vector<HeapImage> Images{randomizedImage(7), randomizedImage(8)};
  const std::vector<uint8_t> Full = serializeImageBundle(Images);
  for (size_t Cut = 0; Cut < Full.size();
       Cut += std::max<size_t>(1, Full.size() / 57)) {
    std::vector<uint8_t> Truncated(Full.begin(), Full.begin() + Cut);
    std::vector<HeapImage> Out;
    EXPECT_FALSE(deserializeImageBundle(Truncated, Out))
        << "accepted truncation at " << Cut;
  }
}

TEST(ImageBundle, RejectsTrailingGarbage) {
  std::vector<HeapImage> Images{randomizedImage(9)};
  std::vector<uint8_t> Bytes = serializeImageBundle(Images);
  Bytes.push_back(0x00);
  std::vector<HeapImage> Out;
  EXPECT_FALSE(deserializeImageBundle(Bytes, Out));
}

TEST(ImageBundle, RejectsOutOfRangeDictionaryIndex) {
  // Hand-built bundle: one image whose only slot references site index
  // 7 against a 1-entry dictionary.  Must be rejected, not crash or
  // mis-resolve.
  std::vector<uint8_t> Bytes;
  VectorSink Sink(Bytes);
  StreamWriter Writer(Sink);
  Writer.writeU32(0x58494231); // "XIB1"
  Writer.writeU32(1);          // bundle version
  Writer.writeVarU64(1);       // one image
  Writer.writeVarU64(1);       // site table: only index 0 ("no site")
  Writer.writeU32(0);
  // Image header.
  Writer.writeU64(42);  // AllocationTime
  Writer.writeU32(1);   // CanaryValue
  Writer.writeF64(1.0); // CanaryFillProbability
  Writer.writeF64(2.0); // Multiplier
  Writer.writeU64(3);   // HeapSeed
  // Body: one miniheap, one slot with metadata.
  Writer.writeVarU64(1);   // miniheap count
  Writer.writeVarU64(0);   // size class
  Writer.writeVarU64(16);  // object size
  Writer.writeU64(0x1000); // base address
  Writer.writeVarU64(0);   // creation time
  Writer.writeVarU64(1);   // one slot
  Writer.writeU8(0x80 | 1); // HasMeta | Allocated
  Writer.writeVarU64(5);   // object id
  Writer.writeVarU64(0);   // free time
  Writer.writeVarU64(7);   // alloc-site index: OUT OF RANGE
  Writer.writeVarU64(0);   // free-site index
  Writer.writeVarU64(16);  // requested size
  Writer.writeVarU64(1);   // one contents run
  Writer.writeU8(1);       // pattern
  Writer.writeVarU64(16);
  Writer.writeU64(0);
  ASSERT_FALSE(Writer.failed());

  std::vector<HeapImage> Out;
  EXPECT_FALSE(deserializeImageBundle(Bytes, Out));
}

TEST(ImageBundle, RejectsOversizedImageCount) {
  std::vector<uint8_t> Bytes;
  VectorSink Sink(Bytes);
  StreamWriter Writer(Sink);
  Writer.writeU32(0x58494231);
  Writer.writeU32(1);
  Writer.writeVarU64(MaxBundleImages + 1);
  std::vector<HeapImage> Out;
  EXPECT_FALSE(deserializeImageBundle(Bytes, Out));
}

TEST(ImageBundle, FileRoundTrip) {
  std::vector<HeapImage> Images{randomizedImage(4), randomizedImage(5)};
  const std::string Path = ::testing::TempDir() + "/bundle_roundtrip.xib";
  ASSERT_TRUE(saveImageBundle(Images, Path));
  std::vector<HeapImage> Loaded;
  ASSERT_TRUE(loadImageBundle(Path, Loaded));
  ASSERT_EQ(Loaded.size(), 2u);
  EXPECT_TRUE(Loaded[0] == Images[0]);
  EXPECT_TRUE(Loaded[1] == Images[1]);
  std::remove(Path.c_str());
}

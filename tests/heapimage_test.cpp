//===- tests/heapimage_test.cpp - Heap image tests ----------------------------===//

#include "heapimage/HeapImageIO.h"

#include "diefast/DieFastHeap.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace exterminator;

namespace {

DieFastConfig testConfig(uint64_t Seed = 1) {
  DieFastConfig Config;
  Config.Heap.Seed = Seed;
  Config.Heap.InitialSlots = 16;
  return Config;
}

/// A small heap with live, freed-canaried, and dirty objects.
struct Fixture {
  DieFastHeap Heap;
  uint8_t *Live = nullptr;
  uint8_t *Freed = nullptr;
  uint64_t LiveId = 0;
  uint64_t FreedId = 0;

  explicit Fixture(uint64_t Seed = 5) : Heap(testConfig(Seed)) {
    Live = static_cast<uint8_t *>(Heap.allocate(48));
    std::memset(Live, 0x11, 48);
    Freed = static_cast<uint8_t *>(Heap.allocate(64));
    LiveId = Heap.heap().objectMetadata(*Heap.heap().findObject(Live)).ObjectId;
    FreedId =
        Heap.heap().objectMetadata(*Heap.heap().findObject(Freed)).ObjectId;
    Heap.allocate(32);
    Heap.deallocate(Freed);
  }
};

} // namespace

TEST(HeapImage, CaptureRecordsClockAndCanary) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  EXPECT_EQ(Image.AllocationTime, 3u);
  EXPECT_EQ(Image.CanaryValue, F.Heap.canary().value());
  EXPECT_DOUBLE_EQ(Image.CanaryFillProbability, 1.0);
  EXPECT_DOUBLE_EQ(Image.Multiplier, 2.0);
}

TEST(HeapImage, CaptureReflectsSlotStates) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const ImageIndex Index(Image);

  auto LiveLoc = Index.findById(F.LiveId);
  ASSERT_TRUE(LiveLoc.has_value());
  EXPECT_TRUE(Image.slot(*LiveLoc).Allocated);
  EXPECT_FALSE(Image.slot(*LiveLoc).Canaried);
  EXPECT_EQ(Image.slot(*LiveLoc).RequestedSize, 48u);
  EXPECT_EQ(Image.slot(*LiveLoc).Contents[0], 0x11);

  auto FreedLoc = Index.findById(F.FreedId);
  ASSERT_TRUE(FreedLoc.has_value());
  EXPECT_FALSE(Image.slot(*FreedLoc).Allocated);
  EXPECT_TRUE(Image.slot(*FreedLoc).Canaried);
  EXPECT_EQ(Image.slot(*FreedLoc).FreeTime, 3u);
}

TEST(HeapImage, CapturedContentsMatchMemory) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const ImageIndex Index(Image);
  auto Loc = Index.findById(F.LiveId);
  const ImageSlot &Slot = Image.slot(*Loc);
  EXPECT_EQ(std::memcmp(Slot.Contents.data(), F.Live, Slot.Contents.size()),
            0);
}

TEST(HeapImage, ObjectAndSlotCounts) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  EXPECT_EQ(Image.objectCount(), 3u); // live + freed + third
  EXPECT_GT(Image.totalSlots(), 3u);  // over-provisioned heap
}

TEST(ImageIndex, LocateAddressMapsInteriorBytes) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const ImageIndex Index(Image);
  const uint64_t Addr = reinterpret_cast<uint64_t>(F.Live) + 17;
  auto Located = Index.locateAddress(Addr);
  ASSERT_TRUE(Located.has_value());
  EXPECT_EQ(Image.slot(Located->first).ObjectId, F.LiveId);
  EXPECT_EQ(Located->second, 17u);
}

TEST(ImageIndex, LocateAddressRejectsOutsideHeap) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const ImageIndex Index(Image);
  EXPECT_FALSE(Index.locateAddress(0x10).has_value());
  EXPECT_FALSE(Index.locateAddress(~uint64_t(0) - 64).has_value());
}

TEST(ImageIndex, FindByIdMissesUnknownIds) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const ImageIndex Index(Image);
  EXPECT_FALSE(Index.findById(999).has_value());
  EXPECT_FALSE(Index.findById(0).has_value());
}

TEST(HeapImageIO, SerializeDeserializeRoundTrip) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const std::vector<uint8_t> Bytes = serializeHeapImage(Image);
  HeapImage Back;
  ASSERT_TRUE(deserializeHeapImage(Bytes, Back));

  EXPECT_EQ(Back.AllocationTime, Image.AllocationTime);
  EXPECT_EQ(Back.CanaryValue, Image.CanaryValue);
  ASSERT_EQ(Back.Miniheaps.size(), Image.Miniheaps.size());
  for (size_t M = 0; M < Image.Miniheaps.size(); ++M) {
    const ImageMiniheap &A = Image.Miniheaps[M];
    const ImageMiniheap &B = Back.Miniheaps[M];
    EXPECT_EQ(A.SizeClassIndex, B.SizeClassIndex);
    EXPECT_EQ(A.ObjectSize, B.ObjectSize);
    EXPECT_EQ(A.BaseAddress, B.BaseAddress);
    EXPECT_EQ(A.CreationTime, B.CreationTime);
    ASSERT_EQ(A.Slots.size(), B.Slots.size());
    for (size_t S = 0; S < A.Slots.size(); ++S) {
      EXPECT_EQ(A.Slots[S].Allocated, B.Slots[S].Allocated);
      EXPECT_EQ(A.Slots[S].Canaried, B.Slots[S].Canaried);
      EXPECT_EQ(A.Slots[S].ObjectId, B.Slots[S].ObjectId);
      EXPECT_EQ(A.Slots[S].AllocSite, B.Slots[S].AllocSite);
      EXPECT_EQ(A.Slots[S].FreeSite, B.Slots[S].FreeSite);
      EXPECT_EQ(A.Slots[S].Contents, B.Slots[S].Contents);
    }
  }
}

TEST(HeapImageIO, RejectsGarbageBuffer) {
  HeapImage Image;
  EXPECT_FALSE(deserializeHeapImage({1, 2, 3, 4, 5, 6, 7, 8}, Image));
  EXPECT_FALSE(deserializeHeapImage({}, Image));
}

TEST(HeapImageIO, RejectsTruncatedBuffer) {
  Fixture F;
  std::vector<uint8_t> Bytes = serializeHeapImage(captureHeapImage(F.Heap));
  Bytes.resize(Bytes.size() / 2);
  HeapImage Image;
  EXPECT_FALSE(deserializeHeapImage(Bytes, Image));
}

TEST(HeapImageIO, FileRoundTrip) {
  Fixture F;
  const HeapImage Image = captureHeapImage(F.Heap);
  const std::string Path = ::testing::TempDir() + "/image_test.xhi";
  ASSERT_TRUE(saveHeapImage(Image, Path));
  HeapImage Back;
  ASSERT_TRUE(loadHeapImage(Path, Back));
  EXPECT_EQ(Back.AllocationTime, Image.AllocationTime);
  EXPECT_EQ(Back.objectCount(), Image.objectCount());
}

TEST(HeapImageIO, LoadMissingFileFails) {
  HeapImage Image;
  EXPECT_FALSE(loadHeapImage("/nonexistent/image.xhi", Image));
}

TEST(HeapImage, QuarantinedSlotSurvivesCapture) {
  DieFastHeap Heap(testConfig(31));
  bool Signalled = false;
  ObjectRef Bad;
  Heap.setErrorHandler([&](const ErrorSignal &S) {
    Signalled = true;
    Bad = S.Where;
  });
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(32));
  Heap.deallocate(Ptr);
  Ptr[3] = 0x99;
  for (int I = 0; I < 500 && !Signalled; ++I)
    Heap.deallocate(Heap.allocate(32));
  ASSERT_TRUE(Signalled);

  const HeapImage Image = captureHeapImage(Heap);
  bool FoundBad = false;
  for (const ImageMiniheap &Mini : Image.Miniheaps)
    for (const ImageSlot &Slot : Mini.Slots)
      if (Slot.Bad) {
        FoundBad = true;
        EXPECT_TRUE(Slot.Allocated);
        EXPECT_TRUE(Slot.Canaried);
        EXPECT_EQ(Slot.Contents[3], 0x99);
      }
  EXPECT_TRUE(FoundBad);
}

//===- tests/observe_test.cpp - Observability-plane tests ---------------------===//
//
// Covers the live observability plane: the metrics registry (push
// handles, pull collectors, histogram quantiles, text exposition), the
// Stats wire codec and its adversarial-input taxonomy (over both the
// loopback and the socket transport), and threshold alerting with
// hysteresis — including the acceptance-criterion test that drives a
// site's Bayes posterior across the classification bar and watches the
// built-in warn rule fire and un-fire only after the clear delay.
//
//===----------------------------------------------------------------------===//

#include "observe/AlertEngine.h"
#include "observe/MetricsRegistry.h"

#include "alloc/DieHardHeap.h"
#include "diefast/DieFastHeap.h"
#include "inject/FaultInjector.h"
#include "exchange/PatchClient.h"
#include "exchange/PatchServer.h"
#include "exchange/SocketTransport.h"
#include "exchange/Transport.h"
#include "exchange/WireProtocol.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// MetricsRegistry primitives
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, CountersAndGaugesSnapshot) {
  MetricsRegistry Registry;
  MetricsRegistry::Counter Requests = Registry.counter("requests_total");
  MetricsRegistry::Gauge Depth = Registry.gauge("queue_depth");
  Requests.increment();
  Requests.add(4);
  Depth.set(7.5);

  const MetricsSnapshot Snap = Registry.snapshot();
  const MetricSample *R = Snap.find("requests_total");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Value, 5.0);
  EXPECT_EQ(R->Kind, SampleKind::Counter);
  const MetricSample *D = Snap.find("queue_depth");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Value, 7.5);
  EXPECT_EQ(D->Kind, SampleKind::Gauge);
}

TEST(MetricsRegistry, SameNameAndLabelsShareOneCell) {
  MetricsRegistry Registry;
  MetricsRegistry::Counter A = Registry.counter("hits_total");
  MetricsRegistry::Counter B = Registry.counter("hits_total");
  MetricsRegistry::Counter Other =
      Registry.counter("hits_total", MetricsRegistry::label("peer", "S1"));
  A.increment();
  B.increment();
  Other.increment();

  const MetricsSnapshot Snap = Registry.snapshot();
  const MetricSample *Shared = Snap.find("hits_total", "");
  ASSERT_NE(Shared, nullptr);
  EXPECT_EQ(Shared->Value, 2.0); // A and B write the same cell
  const MetricSample *Labelled = Snap.find("hits_total", "peer=\"S1\"");
  ASSERT_NE(Labelled, nullptr);
  EXPECT_EQ(Labelled->Value, 1.0); // distinct labels, distinct cell
}

TEST(MetricsRegistry, DefaultHandlesAreNoOps) {
  MetricsRegistry::Counter C;
  MetricsRegistry::Gauge G;
  MetricsRegistry::Histogram H;
  EXPECT_FALSE(bool(C));
  EXPECT_FALSE(bool(G));
  EXPECT_FALSE(bool(H));
  // Must not crash — this is the un-instrumented fast path.
  C.increment();
  G.set(1.0);
  H.observe(0.5);
}

TEST(MetricsRegistry, HistogramBucketsSumCountAndQuantiles) {
  MetricsRegistry Registry;
  MetricsRegistry::Histogram Lat = Registry.histogram("op_seconds");
  // 100 observations spread over two buckets: 50 in (5e-5, 1e-4],
  // 50 in (1e-3, 2e-3].
  for (int I = 0; I < 50; ++I)
    Lat.observe(8e-5);
  for (int I = 0; I < 50; ++I)
    Lat.observe(1.5e-3);

  const MetricsSnapshot Snap = Registry.snapshot();
  const MetricSample *Count = Snap.find("op_seconds_count");
  ASSERT_NE(Count, nullptr);
  EXPECT_EQ(Count->Value, 100.0);
  const MetricSample *Sum = Snap.find("op_seconds_sum");
  ASSERT_NE(Sum, nullptr);
  EXPECT_NEAR(Sum->Value, 50 * 8e-5 + 50 * 1.5e-3, 1e-6);

  // Cumulative buckets: everything fits under 2e-3 and +Inf.
  const MetricSample *Below = Snap.find("op_seconds_bucket", "le=\"0.0001\"");
  ASSERT_NE(Below, nullptr);
  EXPECT_EQ(Below->Value, 50.0);
  const MetricSample *All = Snap.find("op_seconds_bucket", "le=\"+Inf\"");
  ASSERT_NE(All, nullptr);
  EXPECT_EQ(All->Value, 100.0);

  // p50 interpolates inside the first populated bucket, p99 inside the
  // second — both must land within their bucket's bounds.
  const MetricSample *P50 = Snap.find("op_seconds", "quantile=\"0.5\"");
  ASSERT_NE(P50, nullptr);
  EXPECT_GT(P50->Value, 5e-5);
  EXPECT_LE(P50->Value, 1e-4);
  const MetricSample *P99 = Snap.find("op_seconds", "quantile=\"0.99\"");
  ASSERT_NE(P99, nullptr);
  EXPECT_GT(P99->Value, 1e-3);
  EXPECT_LE(P99->Value, 2e-3);
}

TEST(MetricsRegistry, CollectorsRunAtSnapshotTime) {
  MetricsRegistry Registry;
  int Pulls = 0;
  Registry.addCollector([&Pulls](std::vector<MetricSample> &Out) {
    ++Pulls;
    MetricsRegistry::addGauge(Out, "pulled_value", {}, 42.0);
  });
  EXPECT_EQ(Pulls, 0); // registration does not pull
  const MetricsSnapshot Snap = Registry.snapshot();
  EXPECT_EQ(Pulls, 1);
  const MetricSample *S = Snap.find("pulled_value");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->Value, 42.0);
}

TEST(MetricsRegistry, TextExpositionGrammar) {
  MetricsRegistry Registry;
  Registry.counter("xterm_things_total").add(3);
  Registry.gauge("xterm_level", MetricsRegistry::label("peer", "S1"))
      .set(0.25);

  const std::string Text = Registry.renderText();
  // One # TYPE line per distinct sample name, before its first sample.
  EXPECT_NE(Text.find("# TYPE xterm_things_total counter\n"
                      "xterm_things_total 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE xterm_level gauge\n"
                      "xterm_level{peer=\"S1\"} 0.25\n"),
            std::string::npos);
}

TEST(MetricsRegistry, LabelValueEscaping) {
  const std::string Pair =
      MetricsRegistry::label("path", "a\\b\"c\nd");
  EXPECT_EQ(Pair, "path=\"a\\\\b\\\"c\\nd\"");
}

TEST(MetricsRegistry, MaxValueAggregatesLabelledFamily) {
  MetricsRegistry Registry;
  Registry.gauge("lag", MetricsRegistry::label("peer", "A")).set(3);
  Registry.gauge("lag", MetricsRegistry::label("peer", "B")).set(9);
  Registry.gauge("lag", MetricsRegistry::label("peer", "C")).set(1);
  const MetricsSnapshot Snap = Registry.snapshot();
  const std::optional<double> Max = Snap.maxValue("lag");
  ASSERT_TRUE(Max.has_value());
  EXPECT_EQ(*Max, 9.0);
  EXPECT_FALSE(Snap.maxValue("absent").has_value());
}

TEST(MetricsRegistry, AllocatorAdapterExportsHeapStats) {
  MetricsRegistry Registry;
  DieHardHeap Heap;
  registerAllocatorMetrics(Registry, Heap, "diehard");

  void *P = Heap.allocate(64);
  ASSERT_NE(P, nullptr);
  Heap.deallocate(P);
  Heap.deallocate(P); // double free — must show up as a counter

  const MetricsSnapshot Snap = Registry.snapshot();
  const std::string Labels = MetricsRegistry::label("heap", "diehard");
  const MetricSample *Allocs =
      Snap.find("xterm_alloc_allocations_total", Labels);
  ASSERT_NE(Allocs, nullptr);
  EXPECT_EQ(Allocs->Value, 1.0);
  const MetricSample *Doubles =
      Snap.find("xterm_alloc_double_frees_total", Labels);
  ASSERT_NE(Doubles, nullptr);
  EXPECT_EQ(Doubles->Value, 1.0);
  const MetricSample *Bytes =
      Snap.find("xterm_alloc_bytes_requested_total", Labels);
  ASSERT_NE(Bytes, nullptr);
  EXPECT_EQ(Bytes->Value, 64.0);
}

//===----------------------------------------------------------------------===//
// Stats wire codec
//===----------------------------------------------------------------------===//

TEST(StatsCodec, RequestRoundTripAndRejects) {
  for (StatsFormat Format : {StatsFormat::Samples, StatsFormat::Text}) {
    StatsFormat Out;
    ASSERT_TRUE(decodeStatsRequest(encodeStatsRequest(Format), Out));
    EXPECT_EQ(Out, Format);
  }
  StatsFormat Out;
  EXPECT_FALSE(decodeStatsRequest({}, Out));        // empty
  EXPECT_FALSE(decodeStatsRequest({2}, Out));       // unknown format
  EXPECT_FALSE(decodeStatsRequest({0, 0}, Out));    // trailing byte
}

namespace {

StatsReply sampleReply() {
  StatsReply Reply;
  Reply.Instance = 0x1122334455667788ull;
  Reply.Epoch = 42;
  Reply.Format = StatsFormat::Samples;
  Reply.Samples.push_back(
      {"xterm_epoch", "", 42.0, SampleKind::Gauge});
  Reply.Samples.push_back({"xterm_site_posterior",
                           "kind=\"overflow\",site=\"0x00000abc\"", 1.5,
                           SampleKind::Gauge});
  Reply.Samples.push_back(
      {"xterm_ingest_summaries_total", "", 9.0, SampleKind::Counter});
  return Reply;
}

} // namespace

TEST(StatsCodec, SamplesReplyRoundTrip) {
  const StatsReply Reply = sampleReply();
  StatsReply Out;
  ASSERT_TRUE(decodeStatsReply(encodeStatsReply(Reply), Out));
  EXPECT_EQ(Out.Instance, Reply.Instance);
  EXPECT_EQ(Out.Epoch, Reply.Epoch);
  EXPECT_EQ(Out.Format, StatsFormat::Samples);
  ASSERT_EQ(Out.Samples.size(), Reply.Samples.size());
  for (size_t I = 0; I < Reply.Samples.size(); ++I) {
    EXPECT_EQ(Out.Samples[I].Name, Reply.Samples[I].Name);
    EXPECT_EQ(Out.Samples[I].Labels, Reply.Samples[I].Labels);
    EXPECT_EQ(Out.Samples[I].Value, Reply.Samples[I].Value);
    EXPECT_EQ(Out.Samples[I].Kind, Reply.Samples[I].Kind);
  }
}

TEST(StatsCodec, TextReplyRoundTrip) {
  StatsReply Reply;
  Reply.Instance = 7;
  Reply.Epoch = 3;
  Reply.Format = StatsFormat::Text;
  Reply.Text = "# TYPE xterm_epoch gauge\nxterm_epoch 3\n";
  StatsReply Out;
  ASSERT_TRUE(decodeStatsReply(encodeStatsReply(Reply), Out));
  EXPECT_EQ(Out.Format, StatsFormat::Text);
  EXPECT_EQ(Out.Text, Reply.Text);
  EXPECT_TRUE(Out.Samples.empty());
}

TEST(StatsCodec, ReplyRejectsHostilePayloads) {
  const std::vector<uint8_t> Good = encodeStatsReply(sampleReply());
  StatsReply Out;

  // Every truncation point must fail cleanly, never read past the end.
  for (size_t Cut = 0; Cut < Good.size(); ++Cut) {
    const std::vector<uint8_t> Truncated(Good.begin(), Good.begin() + Cut);
    EXPECT_FALSE(decodeStatsReply(Truncated, Out)) << "cut at " << Cut;
  }

  // Trailing garbage after a well-formed body.
  std::vector<uint8_t> Padded = Good;
  Padded.push_back(0);
  EXPECT_FALSE(decodeStatsReply(Padded, Out));

  // Unknown format byte (offset 16: after two u64s).
  std::vector<uint8_t> BadFormat = Good;
  ASSERT_GT(BadFormat.size(), 16u);
  BadFormat[16] = 2;
  EXPECT_FALSE(decodeStatsReply(BadFormat, Out));

  // Sample-count bomb: header + a varint count far beyond the payload.
  std::vector<uint8_t> Bomb(Good.begin(), Good.begin() + 17);
  for (int I = 0; I < 5; ++I)
    Bomb.push_back(0xff); // varint ~2^35 > MaxStatsSamples
  Bomb.push_back(0x01);
  EXPECT_FALSE(decodeStatsReply(Bomb, Out));
}

//===----------------------------------------------------------------------===//
// Server Stats dispatch (loopback)
//===----------------------------------------------------------------------===//

namespace {

/// One Stats exchange through \p Transport; asserts a well-formed
/// StatsReply comes back.
StatsReply exchangeStats(ClientTransport &Transport, StatsFormat Format) {
  const std::vector<std::vector<uint8_t>> Requests = {
      encodeFrame(MessageType::Stats, encodeStatsRequest(Format))};
  std::vector<std::vector<uint8_t>> Responses;
  EXPECT_TRUE(Transport.exchange(Requests, Responses));
  EXPECT_EQ(Responses.size(), 1u);
  Frame Reply;
  size_t Consumed = 0;
  EXPECT_EQ(decodeFrame(Responses[0].data(), Responses[0].size(), Reply,
                        Consumed),
            FrameError::None);
  EXPECT_EQ(Reply.Type, MessageType::StatsReply);
  StatsReply Stats;
  EXPECT_TRUE(decodeStatsReply(Reply.Payload, Stats));
  return Stats;
}

/// A summary whose single overflow trial was observed at 50% chance —
/// each one roughly doubles the site's Bayes factor (§5.1).
RunSummary corruptSummary(SiteId Site) {
  RunSummary Summary;
  Summary.Failed = true;
  Summary.CorruptionObserved = true;
  Summary.EndTime = 100;
  Summary.OverflowTrials.push_back(OverflowTrial{Site, 0.5, true, 4});
  return Summary;
}

/// Same site, same chance, but nothing observed — pulls the factor down.
RunSummary cleanSummary(SiteId Site) {
  RunSummary Summary;
  Summary.Failed = true;
  Summary.CorruptionObserved = true;
  Summary.EndTime = 100;
  Summary.OverflowTrials.push_back(OverflowTrial{Site, 0.5, false, 0});
  return Summary;
}

} // namespace

TEST(ServerStats, AnswersWithoutAttachedRegistry) {
  PatchServer Server;
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);
  ASSERT_TRUE(Client.queueSummary(corruptSummary(0xabc), 0));
  ASSERT_TRUE(Client.flush());

  const StatsReply Stats = exchangeStats(Transport, StatsFormat::Samples);
  EXPECT_NE(Stats.Instance, 0u);
  MetricsSnapshot Snap;
  Snap.Samples = Stats.Samples;
  const MetricSample *Summaries = Snap.find("xterm_ingest_summaries_total");
  ASSERT_NE(Summaries, nullptr);
  EXPECT_EQ(Summaries->Value, 1.0);
  // Per-site Bayes state is on the wire too.
  EXPECT_TRUE(Snap.maxValue("xterm_site_posterior").has_value());
  EXPECT_EQ(Server.stats().StatsServed, 1u);
}

TEST(ServerStats, TextFormatUsesAttachedRegistry) {
  MetricsRegistry Registry;
  Registry.counter("custom_probe_total").add(11);
  PatchServer Server;
  Server.attachMetrics(Registry);
  LoopbackTransport Transport(Server);

  const StatsReply Stats = exchangeStats(Transport, StatsFormat::Text);
  EXPECT_EQ(Stats.Format, StatsFormat::Text);
  // The reply carries the whole registry, not just the server's own
  // collector: instruments registered beside it appear too.
  EXPECT_NE(Stats.Text.find("custom_probe_total 11"), std::string::npos);
  EXPECT_NE(Stats.Text.find("xterm_ingest_summaries_total"),
            std::string::npos);
}

TEST(ServerStats, MalformedStatsRequestRejected) {
  PatchServer Server;
  std::vector<uint8_t> Response;
  // Stats frame with an out-of-range format byte.
  Server.handleFrame(encodeFrame(MessageType::Stats, {9}), Response);
  Frame Reply;
  size_t Consumed = 0;
  ASSERT_EQ(decodeFrame(Response.data(), Response.size(), Reply, Consumed),
            FrameError::None);
  EXPECT_EQ(Reply.Type, MessageType::ErrorReply);
  EXPECT_GE(Server.stats().FramesRejected, 1u);

  // Still alive.
  LoopbackTransport Transport(Server);
  const StatsReply Stats = exchangeStats(Transport, StatsFormat::Samples);
  EXPECT_NE(Stats.Instance, 0u);
}

//===----------------------------------------------------------------------===//
// Adversarial Stats frames over the socket transport
//===----------------------------------------------------------------------===//

namespace {

/// Connects to \p Ep, writes \p Bytes raw, half-closes, drains replies.
void sendRawBytes(const Endpoint &Ep, const std::vector<uint8_t> &Bytes) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Ep.Port);
  ASSERT_EQ(::inet_pton(AF_INET, Ep.Host.c_str(), &Addr.sin_addr), 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  if (!Bytes.empty()) {
    ASSERT_EQ(::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(Bytes.size()));
  }
  ::shutdown(Fd, SHUT_WR);
  uint8_t Drain[256];
  while (::recv(Fd, Drain, sizeof(Drain), 0) > 0) {
  }
  ::close(Fd);
}

} // namespace

TEST(ServerStats, HostileStatsFramesRejectedServerSurvives) {
  PatchServer Server;
  const std::vector<uint8_t> Good =
      encodeFrame(MessageType::Stats, encodeStatsRequest(StatsFormat::Text));

  // Loopback taxonomy first: truncated, future version, length bomb.
  std::vector<std::vector<uint8_t>> Hostile;
  Hostile.emplace_back(Good.begin(), Good.begin() + FrameHeaderBytes - 1);
  {
    std::vector<uint8_t> BadVersion = Good;
    BadVersion[4] = ProtocolVersion + 1;
    Hostile.push_back(std::move(BadVersion));
  }
  {
    std::vector<uint8_t> Oversized = Good;
    const uint32_t Huge = 0x7fffffff;
    std::memcpy(Oversized.data() + 6, &Huge, sizeof(Huge));
    Hostile.push_back(std::move(Oversized));
  }
  for (const std::vector<uint8_t> &Bytes : Hostile) {
    std::vector<uint8_t> Response;
    Server.handleFrame(Bytes, Response);
    Frame Reply;
    size_t Consumed = 0;
    ASSERT_EQ(decodeFrame(Response.data(), Response.size(), Reply,
                          Consumed),
              FrameError::None);
    EXPECT_EQ(Reply.Type, MessageType::ErrorReply);
  }

  // Same bytes over TCP: the front-end must shrug them off and still
  // serve a real scrape afterwards.
  SocketPatchServer Front(Server, /*Workers=*/1);
  Front.setReadTimeout(2000);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());
  for (const std::vector<uint8_t> &Bytes : Hostile)
    sendRawBytes(Front.endpoint(), Bytes);

  SocketClientTransport Transport(Front.endpoint());
  const StatsReply Stats = exchangeStats(Transport, StatsFormat::Text);
  EXPECT_NE(Stats.Text.find("xterm_frames_rejected_total"),
            std::string::npos);
  Front.stop();
}

//===----------------------------------------------------------------------===//
// Alert engine: thresholds and hysteresis
//===----------------------------------------------------------------------===//

namespace {

MetricsSnapshot gaugeSnapshot(const std::string &Name, double Value) {
  MetricsSnapshot Snap;
  Snap.Samples.push_back({Name, "", Value, SampleKind::Gauge});
  return Snap;
}

AlertRule warnAbove(const std::string &Metric, double Threshold,
                    uint64_t ClearDelay) {
  AlertRule Rule;
  Rule.Name = "test_rule";
  Rule.Metric = Metric;
  Rule.Cmp = AlertRule::Compare::GreaterOrEqual;
  Rule.Warn = Threshold;
  Rule.ClearDelayTicks = ClearDelay;
  return Rule;
}

} // namespace

TEST(AlertEngine, OscillatingMetricRaisesExactlyOneAlert) {
  AlertEngine Engine;
  Engine.addRule(warnAbove("flappy", 10.0, /*ClearDelay=*/3));

  // 21 ticks of oscillation around the threshold: above on even ticks
  // (including the last), below on odd.  Hysteresis must hold one
  // continuous Warning — the re-cross on every even tick resets the
  // pending de-escalation before the 3-tick delay ever elapses.
  for (uint64_t Tick = 0; Tick < 21; ++Tick)
    Engine.evaluate(gaugeSnapshot("flappy", Tick % 2 == 0 ? 15.0 : 5.0),
                    Tick);
  ASSERT_EQ(Engine.status().size(), 1u);
  const AlertStatus &S = Engine.status()[0];
  EXPECT_EQ(S.Severity, AlertSeverity::Warning);
  EXPECT_EQ(S.RaisedEvents, 1u);

  // Sustained recovery: stays Warning through the delay window, clears
  // once 3 full ticks below have elapsed, and never re-raises.
  uint64_t Tick = 21;
  for (; Tick < 24; ++Tick) {
    Engine.evaluate(gaugeSnapshot("flappy", 5.0), Tick);
    EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Warning)
        << "cleared early at tick " << Tick;
  }
  Engine.evaluate(gaugeSnapshot("flappy", 5.0), Tick);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Clear);
  EXPECT_EQ(Engine.status()[0].RaisedEvents, 1u);
  EXPECT_TRUE(Engine.active().empty());
}

TEST(AlertEngine, EscalationIsImmediateDeescalationIsDelayed) {
  AlertEngine Engine;
  AlertRule Rule = warnAbove("load", 10.0, /*ClearDelay=*/2);
  Rule.Crit = 100.0;
  Engine.addRule(Rule);

  Engine.evaluate(gaugeSnapshot("load", 50.0), 0);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Warning);
  // Warning -> Critical needs no delay.
  Engine.evaluate(gaugeSnapshot("load", 500.0), 1);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Critical);
  // Critical -> Warning is a de-escalation: held until the delay runs.
  Engine.evaluate(gaugeSnapshot("load", 50.0), 2);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Critical);
  Engine.evaluate(gaugeSnapshot("load", 50.0), 3);
  Engine.evaluate(gaugeSnapshot("load", 50.0), 4);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Warning);
  // Only the initial Clear -> raised transition counted as an event.
  EXPECT_EQ(Engine.status()[0].RaisedEvents, 1u);
}

TEST(AlertEngine, AbsentMetricHoldsState) {
  AlertEngine Engine;
  Engine.addRule(warnAbove("sometimes", 10.0, /*ClearDelay=*/1));
  Engine.evaluate(gaugeSnapshot("sometimes", 20.0), 0);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Warning);
  // A scrape that lost the metric is not evidence of recovery.
  for (uint64_t Tick = 1; Tick < 10; ++Tick)
    Engine.evaluate(MetricsSnapshot(), Tick);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Warning);
}

TEST(AlertEngine, EveryTicksSkipsEvaluations) {
  AlertEngine Engine;
  AlertRule Rule = warnAbove("slow", 10.0, /*ClearDelay=*/0);
  Rule.EveryTicks = 5;
  Engine.addRule(Rule);
  Engine.evaluate(gaugeSnapshot("slow", 5.0), 0);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Clear);
  // Crossing at tick 2 is invisible — next due evaluation is tick 5.
  Engine.evaluate(gaugeSnapshot("slow", 50.0), 2);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Clear);
  Engine.evaluate(gaugeSnapshot("slow", 50.0), 5);
  EXPECT_EQ(Engine.status()[0].Severity, AlertSeverity::Warning);
}

//===----------------------------------------------------------------------===//
// Acceptance criterion: the posterior warn rule, end to end
//===----------------------------------------------------------------------===//

TEST(AlertEngine, BuiltinPosteriorRuleFiresAndUnfiresWithHysteresis) {
  PatchServer Server;
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);
  AlertEngine Engine;
  Engine.addBuiltinRules();

  const SiteId Site = 0xdead;
  auto EvaluateAt = [&](uint64_t Tick) {
    const StatsReply Stats = exchangeStats(Transport, StatsFormat::Samples);
    MetricsSnapshot Snap;
    Snap.Samples = Stats.Samples;
    Engine.evaluate(Snap, Tick);
  };
  auto PosteriorRule = [&]() -> const AlertStatus & {
    for (const AlertStatus &S : Engine.status())
      if (S.Rule.Name == "site_posterior_classified")
        return S;
    static AlertStatus Missing;
    return Missing;
  };

  // Drive the site across the §5.1 classification bar: each observed
  // 50%-chance trial roughly doubles the Bayes factor; with one
  // candidate site the threshold is log(4·1), so four corrupt runs put
  // the exported margin (logBF − threshold) above zero.
  uint64_t Tick = 0;
  for (int Run = 0; Run < 4; ++Run) {
    ASSERT_TRUE(Client.queueSummary(corruptSummary(Site), 0));
    ASSERT_TRUE(Client.flush());
  }
  EvaluateAt(Tick++);
  const AlertStatus &Fired = PosteriorRule();
  ASSERT_FALSE(Fired.Rule.Name.empty());
  EXPECT_EQ(Fired.Severity, AlertSeverity::Warning);
  EXPECT_GE(Fired.LastValue, 0.0);
  EXPECT_EQ(Fired.RaisedEvents, 1u);

  // Clean runs on the same site pull the factor back under the bar...
  for (int Run = 0; Run < 6; ++Run) {
    ASSERT_TRUE(Client.queueSummary(cleanSummary(Site), 0));
    ASSERT_TRUE(Client.flush());
  }
  // ...but the alert must hold through the clear delay, then un-fire.
  const uint64_t Delay = Fired.Rule.ClearDelayTicks;
  for (uint64_t Held = 0; Held < Delay; ++Held) {
    EvaluateAt(Tick++);
    EXPECT_EQ(PosteriorRule().Severity, AlertSeverity::Warning)
        << "cleared before the hysteresis delay elapsed";
  }
  EvaluateAt(Tick++);
  EXPECT_EQ(PosteriorRule().Severity, AlertSeverity::Clear);
  EXPECT_LT(PosteriorRule().LastValue, 0.0);
  EXPECT_EQ(PosteriorRule().RaisedEvents, 1u);
}

//===----------------------------------------------------------------------===//
// Hardware-fault observability (PR 9)
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, InjectorAdapterExportsHardwareCounters) {
  MetricsRegistry Registry;
  DieFastConfig Config;
  Config.Heap.Seed = 5;
  Config.Heap.InitialSlots = 16;
  DieFastHeap Heap(Config);
  FaultPlan Plan;
  Plan.Kind = FaultKind::BitFlip;
  Plan.TriggerAllocation = 20;
  Plan.PatternSeed = 42;
  FaultInjector Injector(Heap, Plan);
  Injector.attachHeap(&Heap.heap());
  registerInjectorMetrics(Registry, Injector, "diefast");

  std::vector<void *> Ptrs;
  for (int I = 0; I < 16; ++I)
    Ptrs.push_back(Injector.allocate(64));
  for (int I = 0; I < 16; I += 2)
    Injector.deallocate(Ptrs[I]);
  for (int I = 0; I < 24; ++I)
    Injector.deallocate(Injector.allocate(64));

  const MetricsSnapshot Snap = Registry.snapshot();
  const std::string Labels = MetricsRegistry::label("heap", "diefast");
  const MetricSample *Events =
      Snap.find("xterm_inject_hardware_events_total", Labels);
  ASSERT_NE(Events, nullptr);
  EXPECT_EQ(Events->Value, 1.0);
  const MetricSample *Bits =
      Snap.find("xterm_inject_bits_flipped_total", Labels);
  ASSERT_NE(Bits, nullptr);
  EXPECT_GE(Bits->Value, 1.0);
  const MetricSample *Software =
      Snap.find("xterm_inject_software_faults_total", Labels);
  ASSERT_NE(Software, nullptr);
  EXPECT_EQ(Software->Value, 0.0);
}

TEST(MetricsRegistry, RetirementAdapterExportsGauges) {
  MetricsRegistry Registry;
  DieHardHeap Heap;
  registerRetirementMetrics(Registry, Heap, "diehard");

  const std::string Labels = MetricsRegistry::label("heap", "diehard");
  MetricsSnapshot Snap = Registry.snapshot();
  ASSERT_NE(Snap.find("xterm_retired_pages", Labels), nullptr);
  EXPECT_EQ(Snap.find("xterm_retired_pages", Labels)->Value, 0.0);

  void *Ptr = Heap.allocate(64);
  ASSERT_NE(Ptr, nullptr);
  Heap.retirePage(reinterpret_cast<uintptr_t>(Ptr));

  Snap = Registry.snapshot();
  EXPECT_EQ(Snap.find("xterm_retired_pages", Labels)->Value, 1.0);
  EXPECT_GE(Snap.find("xterm_retired_slots", Labels)->Value, 1.0);
}

TEST(AlertEngine, BuiltinHardwareRulePagesImmediately) {
  AlertEngine Engine;
  Engine.addBuiltinRules();

  auto HardwareRule = [&]() -> const AlertStatus & {
    for (const AlertStatus &S : Engine.status())
      if (S.Rule.Name == "hardware_fault_detected")
        return S;
    static AlertStatus Missing;
    return Missing;
  };

  MetricsSnapshot Clean;
  MetricsRegistry::addCounter(Clean.Samples, "xterm_hardware_faults_total", "",
                              0.0);
  Engine.evaluate(Clean, 0);
  ASSERT_FALSE(HardwareRule().Rule.Name.empty());
  EXPECT_EQ(HardwareRule().Severity, AlertSeverity::Clear);

  // One confirmed hardware fault anywhere in the fleet is a page, not a
  // warning: software patches cannot correct a failing DIMM.
  MetricsSnapshot Faulty;
  MetricsRegistry::addCounter(Faulty.Samples, "xterm_hardware_faults_total",
                              "", 1.0);
  Engine.evaluate(Faulty, 1);
  EXPECT_EQ(HardwareRule().Severity, AlertSeverity::Critical);
  EXPECT_EQ(HardwareRule().RaisedEvents, 1u);
}

//===- tests/workload_test.cpp - Workload + voter tests ------------------------===//

#include "workload/CfracWorkload.h"
#include "workload/EspressoWorkload.h"
#include "workload/MozillaWorkload.h"
#include "workload/SquidWorkload.h"
#include "workload/SyntheticSuite.h"

#include "TestHelpers.h"
#include "runtime/Voter.h"

#include <gtest/gtest.h>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {

/// Runs \p Work with the given heap seed over the full stack.
SingleRunResult runOn(Workload &Work, uint64_t InputSeed, uint64_t HeapSeed,
                      double CanaryP = 1.0) {
  ExterminatorConfig Config;
  Config.CanaryFillProbability = CanaryP;
  return runWorkloadOnce(Work, InputSeed, HeapSeed, Config, PatchSet());
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism: same input ⇒ same output, regardless of heap seed.  This
// is the property iterative/replicated modes require (§3.4).
//===----------------------------------------------------------------------===//

TEST(WorkloadDeterminism, EspressoOutputIndependentOfHeapSeed) {
  EspressoWorkload Work;
  const auto A = runOn(Work, 42, 1);
  const auto B = runOn(Work, 42, 999);
  ASSERT_EQ(A.Result.Status, RunStatusKind::Success);
  ASSERT_EQ(B.Result.Status, RunStatusKind::Success);
  EXPECT_EQ(A.Result.Output, B.Result.Output);
  // And the allocation clock agrees: object ids are comparable.
  EXPECT_EQ(A.EndTime, B.EndTime);
}

TEST(WorkloadDeterminism, EspressoOutputDependsOnInput) {
  EspressoWorkload Work;
  const auto A = runOn(Work, 42, 1);
  const auto B = runOn(Work, 43, 1);
  EXPECT_NE(A.Result.Output, B.Result.Output);
}

TEST(WorkloadDeterminism, CfracDeterministic) {
  CfracParams Params;
  Params.Steps = 300;
  CfracWorkload Work(Params);
  const auto A = runOn(Work, 7, 1);
  const auto B = runOn(Work, 7, 888);
  EXPECT_EQ(A.Result.Output, B.Result.Output);
  EXPECT_EQ(A.EndTime, B.EndTime);
}

TEST(WorkloadDeterminism, SquidDeterministic) {
  SquidParams Params;
  Params.Requests = 60;
  Params.TriggerIndex = 30;
  SquidWorkload Work(Params);
  const auto A = runOn(Work, 5, 1);
  const auto B = runOn(Work, 5, 12345);
  EXPECT_EQ(A.Result.Output, B.Result.Output);
}

TEST(WorkloadDeterminism, SyntheticSuiteDeterministic) {
  for (const SyntheticProfile &Profile : figure7Profiles()) {
    SyntheticProfile Small = Profile;
    Small.Operations = 50; // keep the test fast
    Small.ComputePerOp = Small.ComputePerOp / 10 + 1;
    SyntheticWorkload Work(Small);
    const auto A = runOn(Work, 3, 1);
    const auto B = runOn(Work, 3, 777);
    EXPECT_EQ(A.Result.Output, B.Result.Output) << Profile.Name;
  }
}

TEST(WorkloadNondeterminism, MozillaAllocationsVaryAcrossInputs) {
  // Mozilla's allocation behavior diverges run to run — the reason
  // cumulative mode exists (§3.4).
  MozillaParams Params;
  Params.IncludeTrigger = false;
  Params.Scenario = MozillaScenario::BrowseThenTrigger;
  MozillaWorkload Work(Params);
  const auto A = runOn(Work, 1, 5);
  const auto B = runOn(Work, 2, 5);
  EXPECT_NE(A.EndTime, B.EndTime);
}

//===----------------------------------------------------------------------===//
// Clean-run health: no failures, no DieFast signals.
//===----------------------------------------------------------------------===//

TEST(WorkloadHealth, EspressoCleanUnderDieFast) {
  EspressoWorkload Work;
  for (uint64_t Seed : {1, 2, 3}) {
    const auto Run = runOn(Work, 11, Seed);
    EXPECT_EQ(Run.Result.Status, RunStatusKind::Success);
    EXPECT_FALSE(Run.ErrorSignalled);
  }
}

TEST(WorkloadHealth, SquidWithoutTriggerIsClean) {
  SquidParams Params;
  Params.IncludeTrigger = false;
  SquidWorkload Work(Params);
  const auto Run = runOn(Work, 1, 7);
  EXPECT_EQ(Run.Result.Status, RunStatusKind::Success);
  EXPECT_FALSE(Run.ErrorSignalled);
}

TEST(WorkloadHealth, SquidWithTriggerCorruptsACanary) {
  SquidWorkload Work;
  // The overflow escapes its slot; across a few seeds DieFast must see
  // it (exactly the paper's "the overflow corrupts a canary").
  unsigned Detected = 0;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    const auto Run = runOn(Work, 1, Seed);
    if (Run.ErrorSignalled)
      ++Detected;
  }
  EXPECT_GT(Detected, 0u);
}

TEST(WorkloadHealth, MozillaWithoutTriggerIsClean) {
  MozillaParams Params;
  Params.IncludeTrigger = false;
  MozillaWorkload Work(Params);
  const auto Run = runOn(Work, 9, 4, /*CanaryP=*/0.5);
  EXPECT_EQ(Run.Result.Status, RunStatusKind::Success);
  EXPECT_FALSE(Run.ErrorSignalled);
}

TEST(WorkloadHealth, EspressoAbortsOnInjectedDanglingSometimes) {
  // With an injected premature free, espresso must notice something in
  // at least some runs (abort, crash, or a DieFast signal).
  EspressoWorkload Work;
  ExterminatorConfig Config;
  Config.Fault.Kind = FaultKind::PrematureFree;
  Config.Fault.TriggerAllocation = 200;
  Config.Fault.PatternSeed = 3;
  unsigned Noticed = 0;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    const auto Run = runWorkloadOnce(Work, 11, Seed, Config, PatchSet());
    if (Run.failed() || Run.ErrorSignalled)
      ++Noticed;
  }
  EXPECT_GT(Noticed, 0u);
}

//===----------------------------------------------------------------------===//
// Voter (§3.4)
//===----------------------------------------------------------------------===//

static WorkloadResult successWith(std::vector<uint8_t> Output) {
  WorkloadResult Result;
  Result.Output = std::move(Output);
  return Result;
}

TEST(Voter, UnanimousAgreement) {
  const auto Vote = voteOnOutputs(
      {successWith({1, 2}), successWith({1, 2}), successWith({1, 2})});
  EXPECT_TRUE(Vote.HasWinner);
  EXPECT_TRUE(Vote.Unanimous);
  EXPECT_EQ(Vote.Winners.size(), 3u);
  EXPECT_TRUE(Vote.Dissenters.empty());
  EXPECT_EQ(Vote.Output, (std::vector<uint8_t>{1, 2}));
}

TEST(Voter, PluralityWinsOverDissenter) {
  const auto Vote = voteOnOutputs(
      {successWith({1, 2}), successWith({9, 9}), successWith({1, 2})});
  EXPECT_TRUE(Vote.HasWinner);
  EXPECT_FALSE(Vote.Unanimous);
  EXPECT_EQ(Vote.Winners.size(), 2u);
  ASSERT_EQ(Vote.Dissenters.size(), 1u);
  EXPECT_EQ(Vote.Dissenters[0], 1u);
}

TEST(Voter, CrashedReplicaIsDissenter) {
  WorkloadResult Crashed;
  Crashed.Status = RunStatusKind::Crash;
  const auto Vote = voteOnOutputs(
      {successWith({1}), Crashed, successWith({1})});
  EXPECT_TRUE(Vote.HasWinner);
  ASSERT_EQ(Vote.Dissenters.size(), 1u);
  EXPECT_EQ(Vote.Dissenters[0], 1u);
}

TEST(Voter, AllDistinctOutputsNoWinner) {
  const auto Vote = voteOnOutputs(
      {successWith({1}), successWith({2}), successWith({3})});
  EXPECT_FALSE(Vote.HasWinner);
}

TEST(Voter, AllCrashedNoWinner) {
  WorkloadResult Crashed;
  Crashed.Status = RunStatusKind::Crash;
  const auto Vote = voteOnOutputs({Crashed, Crashed});
  EXPECT_FALSE(Vote.HasWinner);
  EXPECT_EQ(Vote.Dissenters.size(), 2u);
}

TEST(Voter, SingleReplicaWins) {
  const auto Vote = voteOnOutputs({successWith({5})});
  EXPECT_TRUE(Vote.HasWinner);
  EXPECT_TRUE(Vote.Unanimous);
}

TEST(Voter, ReplicasAgreeAcrossHeapSeedsInPractice) {
  // End-to-end: three differently-seeded replicas of espresso produce
  // identical output, so the voter reports unanimity (§3.1).
  EspressoWorkload Work;
  std::vector<WorkloadResult> Results;
  for (uint64_t Seed : {10, 20, 30})
    Results.push_back(runOn(Work, 77, Seed).Result);
  const auto Vote = voteOnOutputs(Results);
  EXPECT_TRUE(Vote.Unanimous);
}

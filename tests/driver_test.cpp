//===- tests/driver_test.cpp - Mode driver end-to-end tests --------------------===//
//
// Full-pipeline tests of the three modes of operation (§3.4): inject or
// script an error, run the mode driver, and check that the error is
// isolated and corrected.
//
//===----------------------------------------------------------------------===//

#include "runtime/CumulativeDriver.h"
#include "runtime/IterativeDriver.h"
#include "runtime/ReplicatedDriver.h"

#include "workload/EspressoWorkload.h"
#include "workload/SquidWorkload.h"
#include "workload/TraceWorkload.h"

#include <gtest/gtest.h>

using namespace exterminator;

namespace {

ExterminatorConfig baseConfig(uint64_t MasterSeed = 0x5eed) {
  ExterminatorConfig Config;
  Config.MasterSeed = MasterSeed;
  return Config;
}

ExterminatorConfig overflowConfig(uint64_t Trigger, uint32_t Bytes,
                                  uint64_t MasterSeed = 0x5eed) {
  ExterminatorConfig Config = baseConfig(MasterSeed);
  Config.Fault.Kind = FaultKind::BufferOverflow;
  Config.Fault.TriggerAllocation = Trigger;
  Config.Fault.OverflowBytes = Bytes;
  Config.Fault.OverflowDelay = 10;
  Config.Fault.PatternSeed = 1234;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Iterative mode (§3.4)
//===----------------------------------------------------------------------===//

TEST(IterativeDriver, CleanWorkloadReportsErrorFree) {
  EspressoWorkload Work;
  IterativeDriver Driver(Work, baseConfig());
  const IterativeOutcome Outcome = Driver.run(/*InputSeed=*/5);
  EXPECT_TRUE(Outcome.ErrorFree);
  EXPECT_FALSE(Outcome.Corrected);
  EXPECT_TRUE(Outcome.Episodes.empty());
  EXPECT_TRUE(Outcome.Patches.empty());
}

TEST(IterativeDriver, CorrectsInjectedOverflow) {
  EspressoWorkload Work;
  IterativeDriver Driver(Work, overflowConfig(400, 20));
  const IterativeOutcome Outcome = Driver.run(5);
  ASSERT_FALSE(Outcome.Episodes.empty());
  EXPECT_TRUE(Outcome.Corrected);
  // The patch pads some allocation site by at least the overflow size.
  bool FoundPad = false;
  for (const PadPatch &Pad : Outcome.Patches.pads())
    FoundPad |= Pad.PadBytes >= 20;
  EXPECT_TRUE(FoundPad);
}

TEST(IterativeDriver, OverflowIsolationUsesFewImages) {
  EspressoWorkload Work;
  IterativeDriver Driver(Work, overflowConfig(400, 20));
  const IterativeOutcome Outcome = Driver.run(5);
  ASSERT_FALSE(Outcome.Episodes.empty());
  // The paper: 3 images in every case (§7.2).  Allow a little slack but
  // require the same regime.
  EXPECT_LE(Outcome.Episodes.front().ImagesUsed, 5u);
  EXPECT_GE(Outcome.Episodes.front().ImagesUsed, 3u);
}

TEST(IterativeDriver, CorrectsInjectedDanglingWrite) {
  // Some premature-free victims are read-only (not isolable
  // iteratively, §7.2); scan seeds for one that produces a correctable
  // outcome and assert it ends corrected with a deferral patch.
  EspressoWorkload Work;
  bool SawCorrection = false;
  for (uint64_t PatternSeed = 1; PatternSeed <= 10 && !SawCorrection;
       ++PatternSeed) {
    ExterminatorConfig Config = baseConfig(0xd00d + PatternSeed);
    Config.Fault.Kind = FaultKind::PrematureFree;
    Config.Fault.TriggerAllocation = 180;
    Config.Fault.PatternSeed = PatternSeed;
    IterativeDriver Driver(Work, Config);
    const IterativeOutcome Outcome = Driver.run(5);
    if (Outcome.Corrected && Outcome.Patches.deferralCount() > 0)
      SawCorrection = true;
  }
  EXPECT_TRUE(SawCorrection);
}

TEST(IterativeDriver, SquidPadIsExactlySixBytes) {
  // §7.2: "Exterminator's error isolation algorithm identifies a single
  // allocation site as the culprit and generates a pad of exactly 6
  // bytes, fixing the error."
  SquidWorkload Work;
  IterativeDriver Driver(Work, baseConfig(0x509d));
  const IterativeOutcome Outcome = Driver.run(1);
  ASSERT_FALSE(Outcome.Episodes.empty());
  EXPECT_TRUE(Outcome.Corrected);
  const auto Pads = Outcome.Patches.pads();
  ASSERT_EQ(Pads.size(), 1u);
  EXPECT_EQ(Pads[0].AllocSite, SquidWorkload::overflowSite());
  EXPECT_EQ(Pads[0].PadBytes, 6u);
}

TEST(IterativeDriver, PatchedRunHasNoSignals) {
  SquidWorkload Work;
  IterativeDriver Driver(Work, baseConfig(0x509e));
  const IterativeOutcome Outcome = Driver.run(1);
  ASSERT_TRUE(Outcome.Corrected);
  // Independent verification outside the driver.
  const SingleRunResult Verify = runWorkloadOnce(
      Work, 1, /*HeapSeed=*/0xabcdef, baseConfig(), Outcome.Patches);
  EXPECT_EQ(Verify.Result.Status, RunStatusKind::Success);
  EXPECT_FALSE(Verify.ErrorSignalled);
}

TEST(IterativeDriver, InitialPatchesAreHonored) {
  // Seeding the driver with the correct patch suppresses the bug, so the
  // first run is already clean (collaborative correction in action).
  SquidWorkload Work;
  IterativeDriver Discover(Work, baseConfig(0x509f));
  const IterativeOutcome First = Discover.run(1);
  ASSERT_TRUE(First.Corrected);

  IterativeDriver Again(Work, baseConfig(0x50a0));
  const IterativeOutcome Second = Again.run(1, First.Patches);
  EXPECT_TRUE(Second.ErrorFree);
  EXPECT_TRUE(Second.Episodes.empty());
}

//===----------------------------------------------------------------------===//
// Replicated mode (§3.4, Figure 5)
//===----------------------------------------------------------------------===//

TEST(ReplicatedDriver, CleanWorkloadAgreesUnanimously) {
  EspressoWorkload Work;
  ReplicatedDriver Driver(Work, baseConfig(), /*NumReplicas=*/3);
  const ReplicatedOutcome Outcome = Driver.run(5);
  EXPECT_TRUE(Outcome.ErrorFree);
  // Every (clean discovery) round must have voted unanimously.
  ASSERT_FALSE(Outcome.Rounds.empty());
  for (const ReplicatedRound &Round : Outcome.Rounds)
    EXPECT_TRUE(Round.Vote.Unanimous);
  EXPECT_FALSE(Outcome.Output.empty());
}

TEST(ReplicatedDriver, CorrectsInjectedOverflowOnTheFly) {
  EspressoWorkload Work;
  ReplicatedDriver Driver(Work, overflowConfig(400, 20, 0xdeed),
                          /*NumReplicas=*/3);
  const ReplicatedOutcome Outcome = Driver.run(5);
  EXPECT_TRUE(Outcome.Corrected);
  EXPECT_GE(Outcome.Rounds.size(), 2u); // detect + corrected rerun
  EXPECT_FALSE(Outcome.Patches.empty());
}

TEST(ReplicatedDriver, SquidCorrectedWithThreeReplicas) {
  SquidWorkload Work;
  ReplicatedDriver Driver(Work, baseConfig(0x1e91), 3);
  const ReplicatedOutcome Outcome = Driver.run(1);
  EXPECT_TRUE(Outcome.Corrected);
  EXPECT_EQ(Outcome.Patches.padFor(SquidWorkload::overflowSite()), 6u);
}

//===----------------------------------------------------------------------===//
// Cumulative mode (§3.4, §5)
//===----------------------------------------------------------------------===//

TEST(CumulativeDriver, IsolatesInjectedDangling) {
  // §7.2: in cumulative mode Exterminator isolates all injected dangling
  // pointer errors, requiring tens of runs at p = 1/2.
  EspressoWorkload Work;
  ExterminatorConfig Config = baseConfig(0xc0de);
  Config.CanaryFillProbability = 0.5;
  Config.Fault.Kind = FaultKind::PrematureFree;
  Config.Fault.TriggerAllocation = 180;
  Config.Fault.PatternSeed = 2;
  CumulativeDriver Driver(Work, Config);
  const CumulativeOutcome Outcome = Driver.run(5, /*MaxRuns=*/150);
  EXPECT_TRUE(Outcome.Isolated);
  EXPECT_FALSE(Outcome.Danglings.empty());
  EXPECT_GT(Outcome.FailuresObserved, 0u);
}

TEST(CumulativeDriver, CleanWorkloadNeverIsolates) {
  EspressoWorkload Work;
  ExterminatorConfig Config = baseConfig(0xc1ea);
  Config.CanaryFillProbability = 0.5;
  CumulativeDriver Driver(Work, Config);
  const CumulativeOutcome Outcome = Driver.run(5, /*MaxRuns=*/40);
  EXPECT_FALSE(Outcome.Isolated);
  EXPECT_EQ(Outcome.FailuresObserved, 0u);
}

TEST(ReplicatedDriver, ConcurrentMatchesSequentialBitForBit) {
  // The lockstep-dump barrier makes concurrency invisible: the same
  // seeds must produce the identical outcome whether the replicas run
  // on the executor or one after another (--sequential).
  for (const bool WithFault : {false, true}) {
    ExterminatorConfig Config =
        WithFault ? overflowConfig(400, 20, 0xdeed) : baseConfig(0xfeed);
    EspressoWorkload WorkA, WorkB;
    ReplicatedDriver Concurrent(WorkA, Config, /*NumReplicas=*/3,
                                /*Sequential=*/false);
    ReplicatedDriver Sequential(WorkB, Config, /*NumReplicas=*/3,
                                /*Sequential=*/true);
    const ReplicatedOutcome A = Concurrent.run(5);
    const ReplicatedOutcome B = Sequential.run(5);

    EXPECT_EQ(A.Corrected, B.Corrected);
    EXPECT_EQ(A.ErrorFree, B.ErrorFree);
    EXPECT_EQ(A.Output, B.Output);
    EXPECT_TRUE(A.Patches == B.Patches);
    ASSERT_EQ(A.Rounds.size(), B.Rounds.size());
    for (size_t R = 0; R < A.Rounds.size(); ++R) {
      EXPECT_EQ(A.Rounds[R].ErrorDetected, B.Rounds[R].ErrorDetected);
      EXPECT_EQ(A.Rounds[R].DumpTime, B.Rounds[R].DumpTime);
      EXPECT_EQ(A.Rounds[R].Vote.Unanimous, B.Rounds[R].Vote.Unanimous);
      EXPECT_EQ(A.Rounds[R].Vote.Output, B.Rounds[R].Vote.Output);
      EXPECT_TRUE(A.Rounds[R].Result.Patches == B.Rounds[R].Result.Patches);
    }
  }
}

TEST(ReplicatedDriver, SquidSequentialToggleStillCorrects) {
  SquidWorkload Work;
  ReplicatedDriver Driver(Work, baseConfig(0x1e91), 3, /*Sequential=*/true);
  const ReplicatedOutcome Outcome = Driver.run(1);
  EXPECT_TRUE(Outcome.Corrected);
  EXPECT_EQ(Outcome.Patches.padFor(SquidWorkload::overflowSite()), 6u);
}

//===- tests/evidence_test.cpp - Evidence-path fast/legacy pins ---------------===//
//
// PR 4's acceptance pins: the fast evidence path (SIMD slot encoding,
// parallel capture, flat view indexes, cached views, parallel evidence
// sweeps) must be *bit-identical* to the legacy pre-PR-4 path — same
// serialized heap images, same view lookups, same derived patch sets —
// across real-workload and scripted-bug heaps.
//
//===----------------------------------------------------------------------===//

#include "heapimage/HeapImageIO.h"

#include "diagnose/DiagnosisPipeline.h"
#include "runtime/LiveRun.h"
#include "support/Executor.h"
#include "workload/EspressoWorkload.h"
#include "workload/ScriptedBugs.h"
#include "workload/SquidWorkload.h"
#include "workload/TraceWorkload.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {

/// The live post-run heaps the capture pins run against: two real
/// workloads plus both canonical scripted bugs.
struct NamedRun {
  const char *Name;
  LiveHeapRun Run;
};

std::vector<NamedRun> captureFixtures() {
  std::vector<NamedRun> Runs;
  EspressoWorkload Espresso;
  Runs.push_back({"espresso", runWorkloadKeepHeap(Espresso, 5, 11)});
  SquidWorkload Squid;
  Runs.push_back({"squid", runWorkloadKeepHeap(Squid, 1, 13)});
  TraceWorkload Overflow(scriptedOverflowTrace(9));
  Runs.push_back({"scripted-overflow", runWorkloadKeepHeap(Overflow, 1, 1000)});
  TraceWorkload Dangling(scriptedDanglingTrace());
  Runs.push_back({"scripted-dangling", runWorkloadKeepHeap(Dangling, 1, 1000)});
  return Runs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Capture determinism
//===----------------------------------------------------------------------===//

TEST(EvidencePath, FastLegacyAndParallelCapturesBitIdentical) {
  // A forced 4-thread pool exercises real cross-thread stitching even on
  // a single-core host.
  Executor Pool(4);
  for (NamedRun &Fixture : captureFixtures()) {
    std::vector<uint8_t> LegacyBytes, FastBytes, ParallelBytes;
    {
      evidence_path::Scoped Legacy(evidence_path::Mode::Legacy);
      LegacyBytes = serializeHeapImage(captureHeapImage(Fixture.Run.diefast()));
    }
    {
      evidence_path::Scoped Fast(evidence_path::Mode::Fast);
      FastBytes = serializeHeapImage(captureHeapImage(Fixture.Run.diefast()));
      ParallelBytes =
          serializeHeapImage(captureHeapImage(Fixture.Run.diefast(), &Pool));
    }
    EXPECT_EQ(FastBytes, LegacyBytes) << Fixture.Name;
    EXPECT_EQ(ParallelBytes, FastBytes) << Fixture.Name;
  }
}

TEST(EvidencePath, ParallelCaptureEqualsSequentialInMemory) {
  Executor Pool(4);
  for (NamedRun &Fixture : captureFixtures()) {
    const HeapImage Sequential = captureHeapImage(Fixture.Run.diefast());
    const HeapImage Parallel =
        captureHeapImage(Fixture.Run.diefast(), &Pool);
    EXPECT_TRUE(Parallel == Sequential) << Fixture.Name;
  }
}

TEST(EvidencePath, FastEncoderMatchesScalarAcrossDispatchKernels) {
  // Adversarial run shapes: uniform, alternating, runs at either edge,
  // runs meeting exactly the 2-word pattern threshold.
  std::vector<std::vector<uint8_t>> Buffers;
  auto Buffer = [&](std::initializer_list<uint64_t> Words) {
    std::vector<uint8_t> Bytes(Words.size() * 8);
    size_t I = 0;
    for (uint64_t W : Words)
      std::memcpy(Bytes.data() + 8 * I++, &W, 8);
    Buffers.push_back(std::move(Bytes));
  };
  Buffer({0});
  Buffer({5, 5});
  Buffer({1, 2, 3, 4});
  Buffer({7, 7, 1, 9, 9, 9, 2, 3});
  Buffer({1, 2, 2, 3, 3, 3, 3, 4});
  Buffer({0, 0, 0, 1});
  Buffer({1, 0, 0, 0});
  // A pseudo-random mix with embedded runs.
  std::vector<uint8_t> Mixed(512);
  uint64_t State = 0x12345;
  for (size_t W = 0; W < Mixed.size() / 8; ++W) {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t Word = (State >> 60) < 10 ? State : 0xABCDABCDABCDABCDull;
    std::memcpy(Mixed.data() + 8 * W, &Word, 8);
  }
  Buffers.push_back(std::move(Mixed));

  auto Encode = [](const std::vector<uint8_t> &Bytes) {
    HeapImage Image;
    Image.beginMiniheap(0, Bytes.size(), 0x1000, 0);
    Image.addSlot(0, 0, 0, 0, 0, 0);
    Image.addSlotBytes(Bytes.data(), Bytes.size());
    return Image;
  };

  for (const std::vector<uint8_t> &Bytes : Buffers) {
    HeapImage Reference;
    {
      evidence_path::Scoped Legacy(evidence_path::Mode::Legacy);
      Reference = Encode(Bytes);
    }
    for (canary_dispatch::Mode Kernel :
         {canary_dispatch::Mode::Scalar, canary_dispatch::Mode::Sse2,
          canary_dispatch::Mode::Avx2, canary_dispatch::Mode::Avx512}) {
      canary_dispatch::force(Kernel);
      evidence_path::Scoped Fast(evidence_path::Mode::Fast);
      const HeapImage Encoded = Encode(Bytes);
      EXPECT_TRUE(Encoded == Reference)
          << Bytes.size() << " bytes under " << canary_dispatch::activeName();
    }
    canary_dispatch::force(canary_dispatch::Mode::Auto);
  }
}

//===----------------------------------------------------------------------===//
// View equivalence
//===----------------------------------------------------------------------===//

TEST(EvidencePath, FlatViewMatchesLegacyView) {
  const auto Images = imagesFromTrace(scriptedOverflowTrace(9), 1);
  const HeapImage &Image = Images.front();

  evidence_path::Scoped FastMode(evidence_path::Mode::Fast);
  const HeapImageView Fast(Image);
  HeapImageView Legacy = [&] {
    evidence_path::Scoped LegacyMode(evidence_path::Mode::Legacy);
    return HeapImageView(Image);
  }();

  size_t Ids = 0;
  for (uint64_t G = 0; G < Image.totalSlots(); ++G) {
    const uint64_t Id = Image.objectIdAt(G);
    if (Id == 0)
      continue;
    ++Ids;
    const auto FromFast = Fast.findById(Id);
    const auto FromLegacy = Legacy.findById(Id);
    ASSERT_TRUE(FromFast.has_value());
    ASSERT_TRUE(FromLegacy.has_value());
    EXPECT_TRUE(*FromFast == *FromLegacy) << "id " << Id;
  }
  EXPECT_GT(Ids, 40u); // the trace churns enough to make this meaningful
  EXPECT_FALSE(Fast.findById(0).has_value());
  EXPECT_FALSE(Fast.findById(~uint64_t(0)).has_value());

  // Address lookups share one implementation, but pin a sample anyway.
  for (uint32_t M = 0; M < Image.miniheapCount(); ++M) {
    const ImageMiniheapInfo &Mini = Image.miniheapInfo(M);
    const uint64_t Probe = Mini.BaseAddress + Mini.ObjectSize + 3;
    const auto A = Fast.locateAddress(Probe);
    const auto B = Legacy.locateAddress(Probe);
    ASSERT_EQ(A.has_value(), B.has_value());
    if (A) {
      EXPECT_TRUE(A->first == B->first && A->second == B->second);
    }
  }
}

//===----------------------------------------------------------------------===//
// Diagnosis equivalence (the patch-set pin)
//===----------------------------------------------------------------------===//

TEST(EvidencePath, FastAndLegacyIsolationDeriveIdenticalPatches) {
  for (const std::vector<TraceOp> &Trace :
       {scriptedOverflowTrace(9), scriptedDanglingTrace()}) {
    const auto Images = imagesFromTrace(Trace, 3);

    IsolationResult Legacy;
    {
      evidence_path::Scoped Mode(evidence_path::Mode::Legacy);
      Legacy = isolateErrors(Images);
    }
    evidence_path::Scoped Mode(evidence_path::Mode::Fast);
    const IsolationResult Fast = isolateErrors(Images, {}, &sharedExecutor());

    EXPECT_TRUE(Fast.Patches == Legacy.Patches);
    ASSERT_EQ(Fast.Overflows.size(), Legacy.Overflows.size());
    for (size_t I = 0; I < Fast.Overflows.size(); ++I) {
      EXPECT_EQ(Fast.Overflows[I].CulpritObjectId,
                Legacy.Overflows[I].CulpritObjectId);
      EXPECT_EQ(Fast.Overflows[I].PadBytes, Legacy.Overflows[I].PadBytes);
      EXPECT_EQ(Fast.Overflows[I].EvidenceBytes,
                Legacy.Overflows[I].EvidenceBytes);
      EXPECT_DOUBLE_EQ(Fast.Overflows[I].Score, Legacy.Overflows[I].Score);
    }
    ASSERT_EQ(Fast.Danglings.size(), Legacy.Danglings.size());
    for (size_t I = 0; I < Fast.Danglings.size(); ++I) {
      EXPECT_EQ(Fast.Danglings[I].ObjectId, Legacy.Danglings[I].ObjectId);
      EXPECT_EQ(Fast.Danglings[I].DeferralTicks,
                Legacy.Danglings[I].DeferralTicks);
    }
  }
}

TEST(EvidencePath, FastAndLegacyPipelinesDeriveIdenticalPatchSets) {
  const ImageEvidence Overflow{imagesFromTrace(scriptedOverflowTrace(9), 3),
                               {}};
  const ImageEvidence Dangling{imagesFromTrace(scriptedDanglingTrace(), 3),
                               {}};

  DiagnosisPipeline LegacyPipeline;
  {
    evidence_path::Scoped Mode(evidence_path::Mode::Legacy);
    LegacyPipeline.submitImages(Overflow);
    LegacyPipeline.submitImages(Dangling);
  }
  evidence_path::Scoped Mode(evidence_path::Mode::Fast);
  DiagnosisPipeline FastPipeline;
  FastPipeline.submitImages(Overflow);
  FastPipeline.submitImages(Dangling);

  EXPECT_FALSE(FastPipeline.patches().empty());
  EXPECT_TRUE(FastPipeline.patches() == LegacyPipeline.patches());
  EXPECT_EQ(FastPipeline.epoch(), LegacyPipeline.epoch());
}

TEST(EvidencePath, CachedViewsDiagnoseIdenticallyToFreshViews) {
  evidence_path::Scoped Mode(evidence_path::Mode::Fast);
  const ImageEvidence Evidence{imagesFromTrace(scriptedOverflowTrace(9), 3),
                               {}};

  DiagnosisPipeline Cached;
  const IsolationResult First = Cached.submitImages(Evidence);
  const uint64_t EpochAfterFirst = Cached.epoch();
  // The second submission reuses the cached views end to end.
  const IsolationResult Second = Cached.submitImages(Evidence);

  DiagnosisPipeline Fresh;
  const IsolationResult Baseline = Fresh.submitImages(Evidence);

  ASSERT_FALSE(Baseline.Patches.empty());
  EXPECT_TRUE(First.Patches == Baseline.Patches);
  EXPECT_TRUE(Second.Patches == Baseline.Patches);
  EXPECT_TRUE(Cached.patches() == Fresh.patches());
  // Re-submitted evidence is idempotent: no epoch churn.
  EXPECT_EQ(Cached.epoch(), EpochAfterFirst);
}

TEST(EvidencePath, FallbackEvidenceReusesCacheAndStillIsolates) {
  evidence_path::Scoped Mode(evidence_path::Mode::Fast);
  // Clean primaries force the fallback attempt; submitting twice drives
  // the fallback set through the cache as well.
  std::vector<TraceOp> Clean;
  for (uint32_t I = 0; I < 24; ++I)
    Clean.push_back(TraceOp::alloc(I, 64, 0x200));
  ImageEvidence Evidence;
  Evidence.Primary = imagesFromTrace(Clean, 3);
  Evidence.Fallback = imagesFromTrace(scriptedDanglingTrace(), 3);

  DiagnosisPipeline Pipeline;
  const IsolationResult First = Pipeline.submitImages(Evidence);
  const IsolationResult Second = Pipeline.submitImages(Evidence);
  ASSERT_FALSE(First.Danglings.empty());
  ASSERT_EQ(First.Danglings.size(), Second.Danglings.size());
  EXPECT_TRUE(First.Patches == Second.Patches);
}

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

TEST(EvidencePath, FingerprintTracksImageContent) {
  const auto Images = imagesFromTrace(scriptedOverflowTrace(9), 2);
  EXPECT_EQ(heapImageFingerprint(Images[0]),
            heapImageFingerprint(Images[0]));
  // Differently-seeded captures of the same trace differ.
  EXPECT_NE(heapImageFingerprint(Images[0]),
            heapImageFingerprint(Images[1]));

  HeapImage Copy = Images[0];
  ASSERT_TRUE(Copy == Images[0]);
  EXPECT_EQ(heapImageFingerprint(Copy), heapImageFingerprint(Images[0]));
}

//===- tests/runtime_test.cpp - Single-run harness tests ------------------------===//
//
// Tests of the runtime plumbing in runtime/Exterminator.cpp: heap-image
// capture points (signal, malloc breakpoint, end of run), fault-injector
// stacking, and statistics reporting — the contract the three mode
// drivers are built on.
//
//===----------------------------------------------------------------------===//

#include "runtime/Exterminator.h"

#include "TestHelpers.h"
#include "workload/EspressoWorkload.h"
#include "workload/TraceWorkload.h"

#include <gtest/gtest.h>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {
constexpr uint32_t SiteA = 0x91, SiteF = 0x92;

std::vector<TraceOp> simpleTrace(unsigned Allocations) {
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < Allocations; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, SiteA));
  for (uint32_t I = 0; I < Allocations; I += 2)
    Ops.push_back(TraceOp::free(I, SiteF));
  return Ops;
}
} // namespace

TEST(RunHarness, CleanRunReportsSuccess) {
  const auto Run = runTrace(simpleTrace(20), 1);
  EXPECT_EQ(Run.Result.Status, RunStatusKind::Success);
  EXPECT_FALSE(Run.ErrorSignalled);
  EXPECT_FALSE(Run.SignalImage.has_value());
  EXPECT_FALSE(Run.BreakpointImage.has_value());
  EXPECT_EQ(Run.EndTime, 20u);
  EXPECT_EQ(Run.FinalImage.AllocationTime, 20u);
  EXPECT_EQ(Run.Alloc.Allocations, 20u);
  EXPECT_EQ(Run.Alloc.Deallocations, 10u);
}

TEST(RunHarness, BreakpointImageCapturedAtRequestedClock) {
  TraceWorkload Work(simpleTrace(20));
  ExterminatorConfig Config;
  const SingleRunResult Run = runWorkloadOnce(Work, 1, 5, Config,
                                              PatchSet(), /*BreakpointAt=*/10);
  ASSERT_TRUE(Run.BreakpointImage.has_value());
  // Captured at the entry of the first allocation once the clock hit 10.
  EXPECT_EQ(Run.BreakpointImage->AllocationTime, 10u);
  // The run still completed normally afterwards.
  EXPECT_EQ(Run.EndTime, 20u);
}

TEST(RunHarness, BreakpointBeyondEndYieldsNoImage) {
  TraceWorkload Work(simpleTrace(20));
  ExterminatorConfig Config;
  const SingleRunResult Run = runWorkloadOnce(Work, 1, 5, Config,
                                              PatchSet(),
                                              /*BreakpointAt=*/1000);
  EXPECT_FALSE(Run.BreakpointImage.has_value());
  EXPECT_EQ(Run.EndTime, 20u);
}

TEST(RunHarness, SignalsSuppressedDuringReplay) {
  // A run with real corruption: signals must be ignored when a
  // breakpoint is set (§3.4 replay protocol), captured when it is not.
  std::vector<TraceOp> Ops = simpleTrace(40);
  Ops.push_back(TraceOp::alloc(100, 64, SiteA));
  Ops.push_back(TraceOp::free(100, SiteF));
  Ops.push_back(TraceOp::write(100, 4, 8, 0x21)); // dangling write
  for (uint32_t I = 200; I < 240; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, SiteA));
    Ops.push_back(TraceOp::free(I, SiteF));
  }
  TraceWorkload Work(Ops);
  ExterminatorConfig Config;

  const SingleRunResult Discovery =
      runWorkloadOnce(Work, 1, 7, Config, PatchSet());
  ASSERT_TRUE(Discovery.ErrorSignalled);
  ASSERT_TRUE(Discovery.SignalImage.has_value());
  EXPECT_EQ(Discovery.SignalImage->AllocationTime,
            Discovery.FirstSignalTime);

  const SingleRunResult Replay = runWorkloadOnce(
      Work, 1, 7, Config, PatchSet(), Discovery.FirstSignalTime);
  EXPECT_FALSE(Replay.ErrorSignalled);
  EXPECT_FALSE(Replay.SignalImage.has_value());
  EXPECT_TRUE(Replay.BreakpointImage.has_value());
}

TEST(RunHarness, SameSeedReplaysIdentically) {
  // The foundation of the lockstep-dump simulation: identical (input,
  // heap seed) pairs produce identical heaps.
  TraceWorkload Work(simpleTrace(30));
  ExterminatorConfig Config;
  const SingleRunResult A = runWorkloadOnce(Work, 1, 99, Config, PatchSet());
  const SingleRunResult B = runWorkloadOnce(Work, 1, 99, Config, PatchSet());
  ASSERT_EQ(A.FinalImage.miniheapCount(), B.FinalImage.miniheapCount());
  EXPECT_EQ(A.FinalImage.CanaryValue, B.FinalImage.CanaryValue);
  for (uint32_t M = 0; M < A.FinalImage.miniheapCount(); ++M) {
    ASSERT_EQ(A.FinalImage.miniheapInfo(M).NumSlots,
              B.FinalImage.miniheapInfo(M).NumSlots);
    for (uint32_t S = 0; S < A.FinalImage.miniheapInfo(M).NumSlots; ++S) {
      const ImageLocation Loc{M, S};
      ASSERT_EQ(A.FinalImage.objectId(Loc), B.FinalImage.objectId(Loc));
      ASSERT_EQ(A.FinalImage.contents(Loc).decode(),
                B.FinalImage.contents(Loc).decode());
    }
  }
}

TEST(RunHarness, InjectedFaultReportsFired) {
  EspressoWorkload Work;
  ExterminatorConfig Config;
  Config.Fault.Kind = FaultKind::BufferOverflow;
  Config.Fault.TriggerAllocation = 100;
  Config.Fault.OverflowBytes = 8;
  const SingleRunResult Run = runWorkloadOnce(Work, 5, 3, Config, PatchSet());
  EXPECT_TRUE(Run.FaultFired);
}

TEST(RunHarness, NoFaultPlanNeverFires) {
  EspressoWorkload Work;
  ExterminatorConfig Config;
  const SingleRunResult Run = runWorkloadOnce(Work, 5, 3, Config, PatchSet());
  EXPECT_FALSE(Run.FaultFired);
}

TEST(RunHarness, PatchesSuppressInjectedOverflowDetection) {
  // With a pad covering the buggy site, the injected overrun stays
  // inside the enlarged allocation: no corruption, no signals.
  std::vector<TraceOp> Ops = simpleTrace(40);
  // Warm the 64-byte class so freed space carries canaries (virgin slots
  // are unobservable by design).
  for (uint32_t Round = 0; Round < 6; ++Round) {
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::alloc(1000 + Round * 30 + I, 64, SiteA));
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::free(1000 + Round * 30 + I, SiteF));
  }
  Ops.push_back(TraceOp::alloc(100, 64, SiteA));
  Ops.push_back(TraceOp::write(100, 64, 12, 0x33)); // overflow from SiteA
  for (uint32_t I = 200; I < 240; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, SiteA));
    Ops.push_back(TraceOp::free(I, SiteF));
  }
  TraceWorkload Work(Ops);
  ExterminatorConfig Config;

  unsigned UnpatchedSignals = 0, PatchedSignals = 0;
  CallContext Probe;
  Probe.pushFrame(SiteA);
  PatchSet Patches;
  Patches.addPad(Probe.currentSite(), 12);

  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    UnpatchedSignals +=
        runWorkloadOnce(Work, 1, Seed, Config, PatchSet()).ErrorSignalled;
    PatchedSignals +=
        runWorkloadOnce(Work, 1, Seed, Config, Patches).ErrorSignalled;
  }
  EXPECT_GT(UnpatchedSignals, 0u);
  EXPECT_EQ(PatchedSignals, 0u);
}

TEST(RunHarness, CorrectionStatsFlowThrough) {
  std::vector<TraceOp> Ops;
  Ops.push_back(TraceOp::alloc(0, 64, SiteA));
  Ops.push_back(TraceOp::free(0, SiteF));
  TraceWorkload Work(Ops);
  ExterminatorConfig Config;

  CallContext ProbeA, ProbeF;
  ProbeA.pushFrame(SiteA);
  ProbeF.pushFrame(SiteF);
  PatchSet Patches;
  Patches.addPad(ProbeA.currentSite(), 16);
  Patches.addDeferral(ProbeA.currentSite(), ProbeF.currentSite(), 50);

  const SingleRunResult Run = runWorkloadOnce(Work, 1, 2, Config, Patches);
  EXPECT_EQ(Run.Correction.PaddedAllocations, 1u);
  EXPECT_EQ(Run.Correction.PadBytesAdded, 16u);
  EXPECT_EQ(Run.Correction.DeferredFrees, 1u);
}

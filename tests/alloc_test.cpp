//===- tests/alloc_test.cpp - Allocator substrate tests ----------------------===//

#include "alloc/BaselineAllocator.h"
#include "alloc/DieHardHeap.h"
#include "alloc/Miniheap.h"
#include "alloc/SizeClass.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// Size classes
//===----------------------------------------------------------------------===//

TEST(SizeClass, ClassSizesArePowersOfTwo) {
  for (unsigned C = 0; C < sizeclass::numClasses(); ++C) {
    const size_t Size = sizeclass::classSize(C);
    EXPECT_EQ(Size & (Size - 1), 0u) << "class " << C;
  }
}

TEST(SizeClass, SmallestAndLargest) {
  EXPECT_EQ(sizeclass::classSize(0), sizeclass::MinObjectSize);
  EXPECT_EQ(sizeclass::classSize(sizeclass::numClasses() - 1),
            sizeclass::MaxObjectSize);
}

TEST(SizeClass, FitsBoundaries) {
  EXPECT_FALSE(sizeclass::fits(0));
  EXPECT_TRUE(sizeclass::fits(1));
  EXPECT_TRUE(sizeclass::fits(sizeclass::MaxObjectSize));
  EXPECT_FALSE(sizeclass::fits(sizeclass::MaxObjectSize + 1));
}

// Property sweep: every representable size maps to the smallest class
// that fits it.
class SizeClassSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SizeClassSweep, RequestFitsItsClassTightly) {
  const size_t Size = GetParam();
  const unsigned Class = sizeclass::classFor(Size);
  EXPECT_GE(sizeclass::classSize(Class), Size);
  if (Class > 0) {
    EXPECT_LT(sizeclass::classSize(Class - 1), Size);
  }
}

INSTANTIATE_TEST_SUITE_P(RepresentativeSizes, SizeClassSweep,
                         ::testing::Values(1, 7, 8, 9, 15, 16, 17, 31, 32,
                                           33, 63, 64, 65, 100, 127, 128,
                                           129, 255, 256, 257, 1000, 1024,
                                           4095, 4096, 65536, 1048576));

//===----------------------------------------------------------------------===//
// Miniheap
//===----------------------------------------------------------------------===//

TEST(Miniheap, LayoutIsContiguous) {
  Miniheap Mini(/*SizeClassIndex=*/2, /*NumSlots=*/16, /*CreationTime=*/0,
                /*GuardBytes=*/64);
  EXPECT_EQ(Mini.objectSize(), 32u);
  for (size_t I = 0; I + 1 < 16; ++I)
    EXPECT_EQ(Mini.slotPointer(I) + 32, Mini.slotPointer(I + 1));
}

TEST(Miniheap, ContainsAndSlotContaining) {
  Miniheap Mini(0, 8, 0, 64);
  EXPECT_TRUE(Mini.contains(Mini.slotPointer(0)));
  EXPECT_TRUE(Mini.contains(Mini.slotPointer(7) + 7));
  EXPECT_FALSE(Mini.contains(Mini.slotPointer(7) + 8)); // guard region
  EXPECT_EQ(Mini.slotContaining(Mini.slotPointer(3) + 5),
            std::optional<size_t>(3));
  int Local;
  EXPECT_FALSE(Mini.contains(&Local));
}

TEST(Miniheap, MarkAllocatedAndFree) {
  Miniheap Mini(1, 8, 0, 0);
  EXPECT_FALSE(Mini.isAllocated(2));
  Mini.markAllocated(2);
  EXPECT_TRUE(Mini.isAllocated(2));
  EXPECT_EQ(Mini.allocatedCount(), 1u);
  Mini.markFree(2);
  EXPECT_FALSE(Mini.isAllocated(2));
}

TEST(Miniheap, SlabStartsZeroed) {
  Miniheap Mini(1, 4, 0, 0);
  for (size_t I = 0; I < 4 * 16; ++I)
    EXPECT_EQ(Mini.base()[I], 0);
}

TEST(Miniheap, MetadataStartsCleared) {
  Miniheap Mini(1, 4, 0, 0);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Mini.slot(I).ObjectId, 0u);
    EXPECT_FALSE(Mini.slot(I).Canaried);
    EXPECT_FALSE(Mini.slot(I).Bad);
  }
}

//===----------------------------------------------------------------------===//
// DieHardHeap
//===----------------------------------------------------------------------===//

static DieHardConfig testConfig(uint64_t Seed = 1) {
  DieHardConfig Config;
  Config.Seed = Seed;
  Config.InitialSlots = 16;
  return Config;
}

TEST(DieHardHeap, AllocateReturnsWritableMemory) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(100);
  ASSERT_NE(Ptr, nullptr);
  std::memset(Ptr, 0xcd, 100);
  EXPECT_EQ(static_cast<uint8_t *>(Ptr)[99], 0xcd);
}

TEST(DieHardHeap, AllocationsDoNotOverlap) {
  DieHardHeap Heap(testConfig());
  std::vector<std::pair<uint8_t *, size_t>> Objects;
  for (int I = 0; I < 200; ++I) {
    const size_t Size = 16 + (I % 5) * 24;
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(Size));
    ASSERT_NE(Ptr, nullptr);
    Objects.push_back({Ptr, Size});
  }
  for (size_t A = 0; A < Objects.size(); ++A)
    for (size_t B = A + 1; B < Objects.size(); ++B) {
      const bool Disjoint =
          Objects[A].first + Objects[A].second <= Objects[B].first ||
          Objects[B].first + Objects[B].second <= Objects[A].first;
      EXPECT_TRUE(Disjoint) << A << " overlaps " << B;
    }
}

TEST(DieHardHeap, ZeroSizeAndOversizeRejected) {
  DieHardHeap Heap(testConfig());
  EXPECT_EQ(Heap.allocate(0), nullptr);
  EXPECT_EQ(Heap.allocate(sizeclass::MaxObjectSize + 1), nullptr);
}

TEST(DieHardHeap, ClockCountsAllocations) {
  DieHardHeap Heap(testConfig());
  EXPECT_EQ(Heap.allocationClock(), 0u);
  Heap.allocate(16);
  Heap.allocate(16);
  EXPECT_EQ(Heap.allocationClock(), 2u);
}

TEST(DieHardHeap, ObjectIdsAreSequential) {
  DieHardHeap Heap(testConfig());
  for (uint64_t I = 1; I <= 5; ++I) {
    void *Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    ASSERT_TRUE(Ref.has_value());
    EXPECT_EQ(Heap.objectMetadata(*Ref).ObjectId, I);
  }
}

TEST(DieHardHeap, InvalidFreeIsIgnoredAndCounted) {
  DieHardHeap Heap(testConfig());
  int Local = 0;
  Heap.deallocate(&Local);
  EXPECT_EQ(Heap.stats().InvalidFrees, 1u);
  EXPECT_EQ(Heap.stats().Deallocations, 0u);
}

TEST(DieHardHeap, InteriorPointerFreeIsInvalid) {
  DieHardHeap Heap(testConfig());
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(64));
  Heap.deallocate(Ptr + 8);
  EXPECT_EQ(Heap.stats().InvalidFrees, 1u);
  EXPECT_TRUE(Heap.isLivePointer(Ptr));
}

TEST(DieHardHeap, DoubleFreeIsIgnoredAndCounted) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(64);
  Heap.deallocate(Ptr);
  Heap.deallocate(Ptr);
  EXPECT_EQ(Heap.stats().Deallocations, 1u);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
}

TEST(DieHardHeap, FreeRecordsTimeAndLiveness) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(64);
  Heap.allocate(64);
  auto Ref = Heap.findObject(Ptr);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_TRUE(Heap.isLivePointer(Ptr));
  Heap.deallocate(Ptr);
  EXPECT_FALSE(Heap.isLivePointer(Ptr));
  EXPECT_EQ(Heap.objectMetadata(*Ref).FreeTime, 2u);
}

TEST(DieHardHeap, FindObjectMapsInteriorAddresses) {
  DieHardHeap Heap(testConfig());
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(128));
  auto Ref = Heap.findObject(Ptr + 100);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_EQ(Heap.objectPointer(*Ref), Ptr);
}

TEST(DieHardHeap, FindObjectRejectsForeignAddresses) {
  DieHardHeap Heap(testConfig());
  Heap.allocate(64);
  int Local;
  EXPECT_FALSE(Heap.findObject(&Local).has_value());
  EXPECT_FALSE(Heap.findObject(nullptr).has_value());
}

TEST(DieHardHeap, MultiplierKeepsHeapUnderOccupied) {
  // The heap invariant: live objects never exceed capacity / M (§3.1).
  DieHardConfig Config = testConfig();
  Config.Multiplier = 2.0;
  DieHardHeap Heap(Config);
  for (int I = 0; I < 500; ++I)
    Heap.allocate(32);
  const unsigned Class = sizeclass::classFor(32);
  EXPECT_GE(Heap.classCapacity(Class),
            static_cast<size_t>(Heap.liveObjectCount() * 2));
}

TEST(DieHardHeap, MiniheapsDoubleInSize) {
  DieHardHeap Heap(testConfig());
  for (int I = 0; I < 300; ++I)
    Heap.allocate(32);
  const unsigned Class = sizeclass::classFor(32);
  const unsigned HeapCount = Heap.classHeapCount(Class);
  ASSERT_GE(HeapCount, 2u);
  size_t PrevSlots = 0;
  Heap.forEachMiniheap([&](unsigned C, unsigned /*H*/, const Miniheap &Mini) {
    if (C != Class)
      return;
    if (PrevSlots) {
      EXPECT_EQ(Mini.numSlots(), PrevSlots * 2);
    }
    PrevSlots = Mini.numSlots();
  });
}

TEST(DieHardHeap, PlacementDiffersAcrossSeeds) {
  // Differently-seeded heaps must randomize object placement
  // independently — the foundation of every probabilistic claim.
  DieHardHeap A(testConfig(1)), B(testConfig(2));
  unsigned SameSlot = 0;
  constexpr int N = 64;
  for (int I = 0; I < N; ++I) {
    void *Pa = A.allocate(32);
    void *Pb = B.allocate(32);
    auto Ra = A.findObject(Pa);
    auto Rb = B.findObject(Pb);
    if (Ra->SlotIndex == Rb->SlotIndex && Ra->HeapIndex == Rb->HeapIndex)
      ++SameSlot;
  }
  EXPECT_LT(SameSlot, N / 2);
}

TEST(DieHardHeap, SameSeedIsReproducible) {
  DieHardHeap A(testConfig(77)), B(testConfig(77));
  for (int I = 0; I < 64; ++I) {
    auto Ra = A.findObject(A.allocate(48));
    auto Rb = B.findObject(B.allocate(48));
    EXPECT_EQ(Ra->SlotIndex, Rb->SlotIndex);
    EXPECT_EQ(Ra->HeapIndex, Rb->HeapIndex);
  }
}

TEST(DieHardHeap, PlacementIsRoughlyUniform) {
  // Chi-square-ish check: allocate/free repeatedly in a fixed-capacity
  // class and confirm every slot gets used.
  DieHardHeap Heap(testConfig(5));
  std::map<size_t, int> SlotUse;
  for (int I = 0; I < 2000; ++I) {
    void *Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    ++SlotUse[Ref->SlotIndex + 1000 * Ref->HeapIndex];
    Heap.deallocate(Ptr);
  }
  EXPECT_GT(SlotUse.size(), 10u);
}

TEST(DieHardHeap, QuarantineBlocksReuse) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(32);
  auto Ref = Heap.findObject(Ptr);
  Heap.deallocate(Ptr);
  Heap.quarantine(*Ref);
  // The quarantined slot must never be returned again.
  for (int I = 0; I < 200; ++I)
    EXPECT_NE(Heap.allocate(32), Ptr);
  // Freeing it counts as a double free and changes nothing.
  Heap.deallocate(Ptr);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
}

TEST(DieHardHeap, SiteHashesRecordedFromContext) {
  CallContext Context;
  Context.pushFrame(0xaa);
  DieHardHeap Heap(testConfig(), &Context);
  void *Ptr;
  {
    CallContext::Scope Scope(Context, 0xbb);
    Ptr = Heap.allocate(32);
  }
  auto Ref = Heap.findObject(Ptr);
  const SiteId AllocSite = Heap.objectMetadata(*Ref).AllocSite;
  EXPECT_NE(AllocSite, 0u);
  {
    CallContext::Scope Scope(Context, 0xcc);
    Heap.deallocate(Ptr);
  }
  EXPECT_NE(Heap.objectMetadata(*Ref).FreeSite, 0u);
  EXPECT_NE(Heap.objectMetadata(*Ref).FreeSite, AllocSite);
}

TEST(DieHardHeap, NeighborSlotsAreAddressOrdered) {
  DieHardHeap Heap(testConfig());
  void *Ptr = nullptr;
  // Find an object with both neighbors.
  std::optional<ObjectRef> Mid;
  for (int I = 0; I < 50 && !Mid; ++I) {
    Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    if (Ref->SlotIndex > 0 &&
        Ref->SlotIndex + 1 < Heap.miniheap(*Ref).numSlots())
      Mid = Ref;
  }
  ASSERT_TRUE(Mid.has_value());
  auto Prev = Heap.previousSlot(*Mid);
  auto Next = Heap.nextSlot(*Mid);
  ASSERT_TRUE(Prev && Next);
  EXPECT_EQ(Heap.objectPointer(*Prev) + Heap.miniheap(*Mid).objectSize(),
            Heap.objectPointer(*Mid));
  EXPECT_EQ(Heap.objectPointer(*Mid) + Heap.miniheap(*Mid).objectSize(),
            Heap.objectPointer(*Next));
}

// Parameterized: the heap behaves across multipliers.
class MultiplierSweep : public ::testing::TestWithParam<double> {};

TEST_P(MultiplierSweep, OccupancyBoundHolds) {
  DieHardConfig Config = testConfig(3);
  Config.Multiplier = GetParam();
  DieHardHeap Heap(Config);
  std::vector<void *> Live;
  RandomGenerator Rng(9);
  for (int I = 0; I < 400; ++I) {
    Live.push_back(Heap.allocate(64));
    if (Live.size() > 20 && Rng.chance(0.5)) {
      const size_t Pick = Rng.nextBelow(Live.size());
      Heap.deallocate(Live[Pick]);
      Live.erase(Live.begin() + Pick);
    }
  }
  const unsigned Class = sizeclass::classFor(64);
  EXPECT_GE(static_cast<double>(Heap.classCapacity(Class)),
            static_cast<double>(Heap.liveObjectCount()) * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Multipliers, MultiplierSweep,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0));

//===----------------------------------------------------------------------===//
// BaselineAllocator
//===----------------------------------------------------------------------===//

TEST(BaselineAllocator, AllocateAndReuse) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(40);
  ASSERT_NE(A, nullptr);
  std::memset(A, 1, 40);
  Alloc.deallocate(A);
  // Freelist reuse: the same chunk comes back for an equal-size request.
  void *B = Alloc.allocate(40);
  EXPECT_EQ(B, A);
}

TEST(BaselineAllocator, DistinctLiveChunks) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(32);
  void *B = Alloc.allocate(32);
  EXPECT_NE(A, B);
}

TEST(BaselineAllocator, DoubleFreeDetectedViaHeaderTag) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(32);
  Alloc.deallocate(A);
  Alloc.deallocate(A);
  EXPECT_EQ(Alloc.stats().InvalidFrees, 1u);
}

TEST(BaselineAllocator, LargeAllocations) {
  BaselineAllocator Alloc;
  void *Big = Alloc.allocate(500000);
  ASSERT_NE(Big, nullptr);
  std::memset(Big, 0x7e, 500000);
  Alloc.deallocate(Big);
  EXPECT_EQ(Alloc.stats().Deallocations, 1u);
}

TEST(BaselineAllocator, ZeroByteRequestSucceeds) {
  BaselineAllocator Alloc;
  EXPECT_NE(Alloc.allocate(0), nullptr);
}

TEST(BaselineAllocator, ManyCycles) {
  BaselineAllocator Alloc;
  for (int I = 0; I < 10000; ++I) {
    void *Ptr = Alloc.allocate(16 + (I % 7) * 8);
    ASSERT_NE(Ptr, nullptr);
    Alloc.deallocate(Ptr);
  }
  EXPECT_EQ(Alloc.stats().Allocations, 10000u);
  EXPECT_EQ(Alloc.stats().Deallocations, 10000u);
}

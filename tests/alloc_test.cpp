//===- tests/alloc_test.cpp - Allocator substrate tests ----------------------===//

#include "alloc/BaselineAllocator.h"
#include "alloc/ConcurrentAllocator.h"
#include "alloc/DieHardHeap.h"
#include "alloc/Miniheap.h"
#include "alloc/SizeClass.h"
#include "diefast/DieFastHeap.h"
#include "runtime/ConcurrentStress.h"
#include "support/RandomGenerator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// Size classes
//===----------------------------------------------------------------------===//

TEST(SizeClass, ClassSizesArePowersOfTwo) {
  for (unsigned C = 0; C < sizeclass::numClasses(); ++C) {
    const size_t Size = sizeclass::classSize(C);
    EXPECT_EQ(Size & (Size - 1), 0u) << "class " << C;
  }
}

TEST(SizeClass, SmallestAndLargest) {
  EXPECT_EQ(sizeclass::classSize(0), sizeclass::MinObjectSize);
  EXPECT_EQ(sizeclass::classSize(sizeclass::numClasses() - 1),
            sizeclass::MaxObjectSize);
}

TEST(SizeClass, FitsBoundaries) {
  EXPECT_FALSE(sizeclass::fits(0));
  EXPECT_TRUE(sizeclass::fits(1));
  EXPECT_TRUE(sizeclass::fits(sizeclass::MaxObjectSize));
  EXPECT_FALSE(sizeclass::fits(sizeclass::MaxObjectSize + 1));
}

// Property sweep: every representable size maps to the smallest class
// that fits it.
class SizeClassSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SizeClassSweep, RequestFitsItsClassTightly) {
  const size_t Size = GetParam();
  const unsigned Class = sizeclass::classFor(Size);
  EXPECT_GE(sizeclass::classSize(Class), Size);
  if (Class > 0) {
    EXPECT_LT(sizeclass::classSize(Class - 1), Size);
  }
}

INSTANTIATE_TEST_SUITE_P(RepresentativeSizes, SizeClassSweep,
                         ::testing::Values(1, 7, 8, 9, 15, 16, 17, 31, 32,
                                           33, 63, 64, 65, 100, 127, 128,
                                           129, 255, 256, 257, 1000, 1024,
                                           4095, 4096, 65536, 1048576));

//===----------------------------------------------------------------------===//
// Miniheap
//===----------------------------------------------------------------------===//

TEST(Miniheap, LayoutIsContiguous) {
  Miniheap Mini(/*SizeClassIndex=*/2, /*NumSlots=*/16, /*CreationTime=*/0,
                /*GuardBytes=*/64);
  EXPECT_EQ(Mini.objectSize(), 32u);
  for (size_t I = 0; I + 1 < 16; ++I)
    EXPECT_EQ(Mini.slotPointer(I) + 32, Mini.slotPointer(I + 1));
}

TEST(Miniheap, ContainsAndSlotContaining) {
  Miniheap Mini(0, 8, 0, 64);
  EXPECT_TRUE(Mini.contains(Mini.slotPointer(0)));
  EXPECT_TRUE(Mini.contains(Mini.slotPointer(7) + 7));
  EXPECT_FALSE(Mini.contains(Mini.slotPointer(7) + 8)); // guard region
  EXPECT_EQ(Mini.slotContaining(Mini.slotPointer(3) + 5),
            std::optional<size_t>(3));
  int Local;
  EXPECT_FALSE(Mini.contains(&Local));
}

TEST(Miniheap, MarkAllocatedAndFree) {
  Miniheap Mini(1, 8, 0, 0);
  EXPECT_FALSE(Mini.isAllocated(2));
  Mini.markAllocated(2);
  EXPECT_TRUE(Mini.isAllocated(2));
  EXPECT_EQ(Mini.allocatedCount(), 1u);
  Mini.markFree(2);
  EXPECT_FALSE(Mini.isAllocated(2));
}

TEST(Miniheap, SlabStartsZeroed) {
  Miniheap Mini(1, 4, 0, 0);
  for (size_t I = 0; I < 4 * 16; ++I)
    EXPECT_EQ(Mini.base()[I], 0);
}

TEST(Miniheap, MetadataStartsCleared) {
  Miniheap Mini(1, 4, 0, 0);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Mini.slot(I).ObjectId, 0u);
    EXPECT_FALSE(Mini.slot(I).Canaried);
    EXPECT_FALSE(Mini.slot(I).Bad);
  }
}

//===----------------------------------------------------------------------===//
// DieHardHeap
//===----------------------------------------------------------------------===//

static DieHardConfig testConfig(uint64_t Seed = 1) {
  DieHardConfig Config;
  Config.Seed = Seed;
  Config.InitialSlots = 16;
  return Config;
}

TEST(DieHardHeap, AllocateReturnsWritableMemory) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(100);
  ASSERT_NE(Ptr, nullptr);
  std::memset(Ptr, 0xcd, 100);
  EXPECT_EQ(static_cast<uint8_t *>(Ptr)[99], 0xcd);
}

TEST(DieHardHeap, AllocationsDoNotOverlap) {
  DieHardHeap Heap(testConfig());
  std::vector<std::pair<uint8_t *, size_t>> Objects;
  for (int I = 0; I < 200; ++I) {
    const size_t Size = 16 + (I % 5) * 24;
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(Size));
    ASSERT_NE(Ptr, nullptr);
    Objects.push_back({Ptr, Size});
  }
  for (size_t A = 0; A < Objects.size(); ++A)
    for (size_t B = A + 1; B < Objects.size(); ++B) {
      const bool Disjoint =
          Objects[A].first + Objects[A].second <= Objects[B].first ||
          Objects[B].first + Objects[B].second <= Objects[A].first;
      EXPECT_TRUE(Disjoint) << A << " overlaps " << B;
    }
}

TEST(DieHardHeap, ZeroSizeAndOversizeRejected) {
  DieHardHeap Heap(testConfig());
  EXPECT_EQ(Heap.allocate(0), nullptr);
  EXPECT_EQ(Heap.allocate(sizeclass::MaxObjectSize + 1), nullptr);
}

TEST(DieHardHeap, ClockCountsAllocations) {
  DieHardHeap Heap(testConfig());
  EXPECT_EQ(Heap.allocationClock(), 0u);
  Heap.allocate(16);
  Heap.allocate(16);
  EXPECT_EQ(Heap.allocationClock(), 2u);
}

TEST(DieHardHeap, ObjectIdsAreSequential) {
  DieHardHeap Heap(testConfig());
  for (uint64_t I = 1; I <= 5; ++I) {
    void *Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    ASSERT_TRUE(Ref.has_value());
    EXPECT_EQ(Heap.objectMetadata(*Ref).ObjectId, I);
  }
}

TEST(DieHardHeap, InvalidFreeIsIgnoredAndCounted) {
  DieHardHeap Heap(testConfig());
  int Local = 0;
  Heap.deallocate(&Local);
  EXPECT_EQ(Heap.stats().InvalidFrees, 1u);
  EXPECT_EQ(Heap.stats().Deallocations, 0u);
}

TEST(DieHardHeap, InteriorPointerFreeIsInvalid) {
  DieHardHeap Heap(testConfig());
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(64));
  Heap.deallocate(Ptr + 8);
  EXPECT_EQ(Heap.stats().InvalidFrees, 1u);
  EXPECT_TRUE(Heap.isLivePointer(Ptr));
}

TEST(DieHardHeap, DoubleFreeIsIgnoredAndCounted) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(64);
  Heap.deallocate(Ptr);
  Heap.deallocate(Ptr);
  EXPECT_EQ(Heap.stats().Deallocations, 1u);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
}

TEST(DieHardHeap, FreeRecordsTimeAndLiveness) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(64);
  Heap.allocate(64);
  auto Ref = Heap.findObject(Ptr);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_TRUE(Heap.isLivePointer(Ptr));
  Heap.deallocate(Ptr);
  EXPECT_FALSE(Heap.isLivePointer(Ptr));
  EXPECT_EQ(Heap.objectMetadata(*Ref).FreeTime, 2u);
}

TEST(DieHardHeap, FindObjectMapsInteriorAddresses) {
  DieHardHeap Heap(testConfig());
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(128));
  auto Ref = Heap.findObject(Ptr + 100);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_EQ(Heap.objectPointer(*Ref), Ptr);
}

TEST(DieHardHeap, FindObjectRejectsForeignAddresses) {
  DieHardHeap Heap(testConfig());
  Heap.allocate(64);
  int Local;
  EXPECT_FALSE(Heap.findObject(&Local).has_value());
  EXPECT_FALSE(Heap.findObject(nullptr).has_value());
}

TEST(DieHardHeap, FindObjectRejectsGuardRegionAddresses) {
  // Guard regions flank each slab; addresses in them share pages with
  // the object region but must not resolve (that is how DieFast probes
  // one-past-the-end pointers safely).
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(64);
  auto Ref = Heap.findObject(Ptr);
  ASSERT_TRUE(Ref.has_value());
  const Miniheap &Mini = Heap.miniheap(*Ref);
  const uint8_t *Base = Mini.base();
  const uint8_t *End = Base + Mini.numSlots() * Mini.objectSize();
  EXPECT_FALSE(Heap.findObject(Base - 1).has_value());
  EXPECT_FALSE(Heap.findObject(End).has_value()); // one past the end
  EXPECT_FALSE(Heap.findObject(End + 100).has_value());
  EXPECT_TRUE(Heap.findObject(Base).has_value());
  EXPECT_TRUE(Heap.findObject(End - 1).has_value());
}

TEST(DieHardHeap, FastAndLegacyLookupAgree) {
  // The page directory and the sorted-range fallback are two indexes of
  // the same slabs; they must agree on every probe, hits and misses.
  DieHardConfig Fast = testConfig();
  DieHardConfig Legacy = testConfig();
  Legacy.LegacyHotPath = true;
  DieHardHeap A(Fast), B(Legacy);
  std::vector<void *> FromA, FromB;
  for (int I = 0; I < 300; ++I) {
    const size_t Size = 8u << (I % 5);
    FromA.push_back(A.allocate(Size));
    FromB.push_back(B.allocate(Size));
  }
  for (size_t I = 0; I < FromA.size(); ++I) {
    // Same seed, same stream: the two heaps place identically, so slots
    // found by each lookup must match ref-for-ref.
    auto Ra = A.findObject(FromA[I]);
    auto Rb = B.findObject(FromB[I]);
    ASSERT_TRUE(Ra.has_value());
    ASSERT_TRUE(Rb.has_value());
    EXPECT_EQ(*Ra, *Rb);
    // Interior and guard probes agree between the two index structures.
    auto Ia = A.findObject(static_cast<uint8_t *>(FromA[I]) + 3);
    ASSERT_TRUE(Ia.has_value());
    EXPECT_EQ(*Ia, *Ra);
  }
}

TEST(DieHardHeap, PlacementIsUniformAcrossSlots) {
  // Chi-squared sanity check over a single 64-slot miniheap: reserving
  // and releasing one slot at a time, every slot must be drawn with the
  // same frequency (the uniformity DieHard's guarantees rest on, §3.1).
  // The seed is fixed, so the statistic is deterministic.
  DieHardConfig Config = testConfig(1234);
  Config.InitialSlots = 64;
  DieHardHeap Heap(Config);
  constexpr int PerSlot = 300;
  constexpr int Draws = 64 * PerSlot;
  std::vector<int> Counts(64, 0);
  for (int I = 0; I < Draws; ++I) {
    const ObjectRef Ref = Heap.reserveSlot(0);
    ASSERT_LT(Ref.SlotIndex, 64u);
    ++Counts[Ref.SlotIndex];
    Heap.deallocateResolved(Ref);
  }
  double Chi2 = 0;
  for (int Count : Counts) {
    const double Delta = Count - PerSlot;
    Chi2 += Delta * Delta / PerSlot;
  }
  // 63 degrees of freedom: mean 63, sd ~11.2; 130 is ~6 sigma.
  EXPECT_LT(Chi2, 130.0);
}

TEST(DieHardHeap, PlacementIsUniformAcrossMiniheaps) {
  // Multi-slab uniformity: with live objects pinned and several
  // miniheaps in the class, the offset-table placement must still draw
  // every *free* slot equally often (and never a live one).
  DieHardConfig Config = testConfig(99);
  Config.InitialSlots = 64;
  DieHardHeap Heap(Config);
  std::vector<ObjectRef> Pinned;
  for (int I = 0; I < 100; ++I)
    Pinned.push_back(Heap.reserveSlot(0));
  ASSERT_GE(Heap.classHeapCount(0), 2u);
  const size_t Capacity = Heap.classCapacity(0);
  const size_t FreeSlots = Capacity - Pinned.size();

  // Tally draws by class-global slot index.
  std::vector<size_t> Offsets(Heap.classHeapCount(0), 0);
  for (unsigned H = 1; H < Heap.classHeapCount(0); ++H)
    Offsets[H] =
        Offsets[H - 1] +
        Heap.miniheap(ObjectRef{0, H - 1, 0}).numSlots();
  std::vector<int> Counts(Capacity, 0);
  constexpr int PerSlot = 100;
  const int Draws = static_cast<int>(FreeSlots) * PerSlot;
  for (int I = 0; I < Draws; ++I) {
    const ObjectRef Ref = Heap.reserveSlot(0);
    ++Counts[Offsets[Ref.HeapIndex] + Ref.SlotIndex];
    Heap.deallocateResolved(Ref);
  }
  double Chi2 = 0;
  int FreeSeen = 0;
  for (const ObjectRef &Ref : Pinned)
    EXPECT_EQ(Counts[Offsets[Ref.HeapIndex] + Ref.SlotIndex], 0)
        << "live slot was chosen";
  for (size_t I = 0; I < Capacity; ++I) {
    if (Counts[I] == 0)
      continue; // pinned (checked above) — free slots all get draws
    ++FreeSeen;
    const double Delta = Counts[I] - PerSlot;
    Chi2 += Delta * Delta / PerSlot;
  }
  EXPECT_EQ(FreeSeen, static_cast<int>(FreeSlots));
  // df = FreeSlots - 1; bound at ~6 sigma above the mean.
  const double Df = static_cast<double>(FreeSlots - 1);
  EXPECT_LT(Chi2, Df + 6.0 * std::sqrt(2.0 * Df));
}

TEST(DieHardHeap, FastAndLegacyPlacementSequencesMatch) {
  // Same seed, same draw stream: the offset-table resolve must pick the
  // exact slot the legacy linear walk picked, allocation for allocation.
  DieHardConfig Fast = testConfig(7);
  DieHardConfig Legacy = testConfig(7);
  Legacy.LegacyHotPath = true;
  DieHardHeap A(Fast), B(Legacy);
  for (int I = 0; I < 2000; ++I) {
    ObjectRef Ra, Rb;
    const size_t Size = 8u << (I % 4);
    ASSERT_NE(A.allocateWithRef(Size, Ra), nullptr);
    ASSERT_NE(B.allocateWithRef(Size, Rb), nullptr);
    ASSERT_EQ(Ra, Rb) << "placement diverged at allocation " << I;
  }
}

TEST(DieHardHeap, MultiplierKeepsHeapUnderOccupied) {
  // The heap invariant: live objects never exceed capacity / M (§3.1).
  DieHardConfig Config = testConfig();
  Config.Multiplier = 2.0;
  DieHardHeap Heap(Config);
  for (int I = 0; I < 500; ++I)
    Heap.allocate(32);
  const unsigned Class = sizeclass::classFor(32);
  EXPECT_GE(Heap.classCapacity(Class),
            static_cast<size_t>(Heap.liveObjectCount() * 2));
}

TEST(DieHardHeap, MiniheapsDoubleInSize) {
  DieHardHeap Heap(testConfig());
  for (int I = 0; I < 300; ++I)
    Heap.allocate(32);
  const unsigned Class = sizeclass::classFor(32);
  const unsigned HeapCount = Heap.classHeapCount(Class);
  ASSERT_GE(HeapCount, 2u);
  size_t PrevSlots = 0;
  Heap.forEachMiniheap([&](unsigned C, unsigned /*H*/, const Miniheap &Mini) {
    if (C != Class)
      return;
    if (PrevSlots) {
      EXPECT_EQ(Mini.numSlots(), PrevSlots * 2);
    }
    PrevSlots = Mini.numSlots();
  });
}

TEST(DieHardHeap, PlacementDiffersAcrossSeeds) {
  // Differently-seeded heaps must randomize object placement
  // independently — the foundation of every probabilistic claim.
  DieHardHeap A(testConfig(1)), B(testConfig(2));
  unsigned SameSlot = 0;
  constexpr int N = 64;
  for (int I = 0; I < N; ++I) {
    void *Pa = A.allocate(32);
    void *Pb = B.allocate(32);
    auto Ra = A.findObject(Pa);
    auto Rb = B.findObject(Pb);
    if (Ra->SlotIndex == Rb->SlotIndex && Ra->HeapIndex == Rb->HeapIndex)
      ++SameSlot;
  }
  EXPECT_LT(SameSlot, N / 2);
}

TEST(DieHardHeap, SameSeedIsReproducible) {
  DieHardHeap A(testConfig(77)), B(testConfig(77));
  for (int I = 0; I < 64; ++I) {
    auto Ra = A.findObject(A.allocate(48));
    auto Rb = B.findObject(B.allocate(48));
    EXPECT_EQ(Ra->SlotIndex, Rb->SlotIndex);
    EXPECT_EQ(Ra->HeapIndex, Rb->HeapIndex);
  }
}

TEST(DieHardHeap, PlacementIsRoughlyUniform) {
  // Chi-square-ish check: allocate/free repeatedly in a fixed-capacity
  // class and confirm every slot gets used.
  DieHardHeap Heap(testConfig(5));
  std::map<size_t, int> SlotUse;
  for (int I = 0; I < 2000; ++I) {
    void *Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    ++SlotUse[Ref->SlotIndex + 1000 * Ref->HeapIndex];
    Heap.deallocate(Ptr);
  }
  EXPECT_GT(SlotUse.size(), 10u);
}

TEST(DieHardHeap, QuarantineBlocksReuse) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(32);
  auto Ref = Heap.findObject(Ptr);
  Heap.deallocate(Ptr);
  Heap.quarantine(*Ref);
  // The quarantined slot must never be returned again.
  for (int I = 0; I < 200; ++I)
    EXPECT_NE(Heap.allocate(32), Ptr);
  // Freeing it counts as a double free and changes nothing.
  Heap.deallocate(Ptr);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
}

TEST(DieHardHeap, SiteHashesRecordedFromContext) {
  CallContext Context;
  Context.pushFrame(0xaa);
  DieHardHeap Heap(testConfig(), &Context);
  void *Ptr;
  {
    CallContext::Scope Scope(Context, 0xbb);
    Ptr = Heap.allocate(32);
  }
  auto Ref = Heap.findObject(Ptr);
  const SiteId AllocSite = Heap.objectMetadata(*Ref).AllocSite;
  EXPECT_NE(AllocSite, 0u);
  {
    CallContext::Scope Scope(Context, 0xcc);
    Heap.deallocate(Ptr);
  }
  EXPECT_NE(Heap.objectMetadata(*Ref).FreeSite, 0u);
  EXPECT_NE(Heap.objectMetadata(*Ref).FreeSite, AllocSite);
}

TEST(DieHardHeap, NeighborSlotsAreAddressOrdered) {
  DieHardHeap Heap(testConfig());
  void *Ptr = nullptr;
  // Find an object with both neighbors.
  std::optional<ObjectRef> Mid;
  for (int I = 0; I < 50 && !Mid; ++I) {
    Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    if (Ref->SlotIndex > 0 &&
        Ref->SlotIndex + 1 < Heap.miniheap(*Ref).numSlots())
      Mid = Ref;
  }
  ASSERT_TRUE(Mid.has_value());
  auto Prev = Heap.previousSlot(*Mid);
  auto Next = Heap.nextSlot(*Mid);
  ASSERT_TRUE(Prev && Next);
  EXPECT_EQ(Heap.objectPointer(*Prev) + Heap.miniheap(*Mid).objectSize(),
            Heap.objectPointer(*Mid));
  EXPECT_EQ(Heap.objectPointer(*Mid) + Heap.miniheap(*Mid).objectSize(),
            Heap.objectPointer(*Next));
}

// Parameterized: the heap behaves across multipliers.
class MultiplierSweep : public ::testing::TestWithParam<double> {};

TEST_P(MultiplierSweep, OccupancyBoundHolds) {
  DieHardConfig Config = testConfig(3);
  Config.Multiplier = GetParam();
  DieHardHeap Heap(Config);
  std::vector<void *> Live;
  RandomGenerator Rng(9);
  for (int I = 0; I < 400; ++I) {
    Live.push_back(Heap.allocate(64));
    if (Live.size() > 20 && Rng.chance(0.5)) {
      const size_t Pick = Rng.nextBelow(Live.size());
      Heap.deallocate(Live[Pick]);
      Live.erase(Live.begin() + Pick);
    }
  }
  const unsigned Class = sizeclass::classFor(64);
  EXPECT_GE(static_cast<double>(Heap.classCapacity(Class)),
            static_cast<double>(Heap.liveObjectCount()) * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Multipliers, MultiplierSweep,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0));

//===----------------------------------------------------------------------===//
// BaselineAllocator
//===----------------------------------------------------------------------===//

TEST(BaselineAllocator, AllocateAndReuse) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(40);
  ASSERT_NE(A, nullptr);
  std::memset(A, 1, 40);
  Alloc.deallocate(A);
  // Freelist reuse: the same chunk comes back for an equal-size request.
  void *B = Alloc.allocate(40);
  EXPECT_EQ(B, A);
}

TEST(BaselineAllocator, DistinctLiveChunks) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(32);
  void *B = Alloc.allocate(32);
  EXPECT_NE(A, B);
}

TEST(BaselineAllocator, DoubleFreeDetectedViaHeaderTag) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(32);
  Alloc.deallocate(A);
  Alloc.deallocate(A);
  EXPECT_EQ(Alloc.stats().InvalidFrees, 1u);
}

TEST(BaselineAllocator, LargeAllocations) {
  BaselineAllocator Alloc;
  void *Big = Alloc.allocate(500000);
  ASSERT_NE(Big, nullptr);
  std::memset(Big, 0x7e, 500000);
  Alloc.deallocate(Big);
  EXPECT_EQ(Alloc.stats().Deallocations, 1u);
}

TEST(BaselineAllocator, ZeroByteRequestSucceeds) {
  BaselineAllocator Alloc;
  EXPECT_NE(Alloc.allocate(0), nullptr);
}

TEST(BaselineAllocator, ManyCycles) {
  BaselineAllocator Alloc;
  for (int I = 0; I < 10000; ++I) {
    void *Ptr = Alloc.allocate(16 + (I % 7) * 8);
    ASSERT_NE(Ptr, nullptr);
    Alloc.deallocate(Ptr);
  }
  EXPECT_EQ(Alloc.stats().Allocations, 10000u);
  EXPECT_EQ(Alloc.stats().Deallocations, 10000u);
}

//===----------------------------------------------------------------------===//
// ConcurrentAllocator (PR 7 front-end)
//===----------------------------------------------------------------------===//

TEST(ConcurrentAllocator, MagazineOfOneMatchesDirectBackend) {
  // With one-slot magazines and a single cache, the front-end refills on
  // every allocation and drains every queued free before drawing, so the
  // backend sees the exact operation sequence a direct DieHardHeap would:
  // the placement stream must match slot for slot, and the clocks must
  // agree at the end.
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(21);
  Cfg.MagazineSize = 1;
  ConcurrentAllocator Front(Cfg);
  ConcurrentAllocator::ThreadCache &Cache = Front.createCache();
  DieHardHeap Direct(testConfig(21));

  RandomGenerator Ops(777);
  std::vector<std::pair<void *, void *>> Live;
  for (int I = 0; I < 3000; ++I) {
    if (!Live.empty() && Ops.chance(0.4)) {
      const size_t Victim = Ops.nextBelow(Live.size());
      Front.deallocate(Live[Victim].first);
      Direct.deallocate(Live[Victim].second);
      Live.erase(Live.begin() + static_cast<ptrdiff_t>(Victim));
    } else {
      const size_t Size = size_t(8) << Ops.nextBelow(4);
      ObjectRef Ra, Rb;
      void *Pa = Front.allocateFrom(Cache, Size, &Ra);
      void *Pb = Direct.allocateWithRef(Size, Rb);
      ASSERT_NE(Pa, nullptr);
      ASSERT_NE(Pb, nullptr);
      ASSERT_EQ(Ra, Rb) << "placement diverged at op " << I;
      Live.push_back({Pa, Pb});
    }
  }
  EXPECT_EQ(Front.allocationClock(), Direct.allocationClock());
}

TEST(ConcurrentAllocator, MagazineOfOneWithCanariesMatchesDieFast) {
  // Same equivalence with DieFast semantics layered on: the canary seed
  // derivation matches DieFastHeap's, so the canary values agree, and
  // verify/zero-fill/fill draw no placement randomness, so the slot
  // streams stay identical too.
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(22);
  Cfg.MagazineSize = 1;
  Cfg.DieFastCanaries = true;
  Cfg.CanaryFillProbability = 1.0;
  Cfg.ZeroFillAllocations = true;
  ConcurrentAllocator Front(Cfg);
  ConcurrentAllocator::ThreadCache &Cache = Front.createCache();

  DieFastConfig Reference;
  Reference.Heap = testConfig(22);
  Reference.CanaryFillProbability = 1.0;
  Reference.ZeroFillAllocations = true;
  DieFastHeap Direct(Reference);

  EXPECT_EQ(Front.canary().value(), Direct.canary().value());

  RandomGenerator Ops(4242);
  std::vector<std::pair<void *, void *>> Live;
  for (int I = 0; I < 2000; ++I) {
    if (!Live.empty() && Ops.chance(0.4)) {
      const size_t Victim = Ops.nextBelow(Live.size());
      Front.deallocate(Live[Victim].first);
      Direct.deallocate(Live[Victim].second);
      Live.erase(Live.begin() + static_cast<ptrdiff_t>(Victim));
    } else {
      const size_t Size = size_t(8) << Ops.nextBelow(4);
      ObjectRef Ra;
      void *Pa = Front.allocateFrom(Cache, Size, &Ra);
      void *Pb = Direct.allocate(Size);
      ASSERT_NE(Pa, nullptr);
      ASSERT_NE(Pb, nullptr);
      const auto Rb = Direct.heap().findObject(Pb);
      ASSERT_TRUE(Rb.has_value());
      ASSERT_EQ(Ra, *Rb) << "placement diverged at op " << I;
      Live.push_back({Pa, Pb});
    }
  }
  EXPECT_EQ(Front.errorsSignalled(), 0u);
  EXPECT_EQ(Direct.errorsSignalled(), 0u);
}

TEST(ConcurrentAllocator, PlacementThroughCachesIsUniform) {
  // Chi-squared uniformity with the magazine machinery in the loop: four
  // caches round-robin allocations of one size class, each slot drawn
  // through batched refills.  Batching changes when draws happen, not
  // their distribution — every slot must still be chosen equally often.
  // Sized so the class never grows (reserved magazines + pending frees
  // stay far under capacity / M).
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(4321);
  Cfg.Heap.InitialSlots = 256;
  Cfg.MagazineSize = 4;
  ConcurrentAllocator Alloc(Cfg);
  constexpr unsigned NumCaches = 4;
  std::vector<ConcurrentAllocator::ThreadCache *> Caches;
  for (unsigned I = 0; I < NumCaches; ++I)
    Caches.push_back(&Alloc.createCache());

  constexpr int PerSlot = 60;
  constexpr int Draws = 256 * PerSlot;
  std::vector<int> Counts(256, 0);
  for (int I = 0; I < Draws; ++I) {
    ObjectRef Ref;
    void *Ptr = Alloc.allocateFrom(*Caches[I % NumCaches], 8, &Ref);
    ASSERT_NE(Ptr, nullptr);
    ASSERT_EQ(Ref.HeapIndex, 0u) << "class grew unexpectedly";
    ++Counts[Ref.SlotIndex];
    Alloc.deallocate(Ptr);
  }
  double Chi2 = 0;
  for (int Count : Counts) {
    const double Delta = Count - PerSlot;
    Chi2 += Delta * Delta / PerSlot;
  }
  // df = 255; bound at ~6 sigma above the mean.
  const double Df = 255.0;
  EXPECT_LT(Chi2, Df + 6.0 * std::sqrt(2.0 * Df));
}

TEST(ConcurrentAllocator, CrossThreadFreesDrainExactlyOnce) {
  // Four workers with cross-thread handoffs: every allocation is freed
  // exactly once (remote or local), every free drains exactly once, and
  // after a flush the backend's books balance to zero live objects with
  // no double or invalid frees recorded.
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(91);
  Cfg.MagazineSize = 16;
  ConcurrentAllocator Alloc(Cfg);

  ConcurrentStressConfig Stress;
  Stress.Threads = 4;
  Stress.OpsPerThread = 8000;
  Stress.ResidentPerThread = 16;
  Stress.CrossFreeFraction = 0.4;
  Stress.Seed = 91;
  const ConcurrentStressResult R = runConcurrentStress(Alloc, Stress);

  EXPECT_EQ(R.PatternFaults, 0u);
  EXPECT_EQ(R.FailedAllocations, 0u);
  EXPECT_EQ(R.Allocations, 4u * 8000u);

  Alloc.flushAll();
  EXPECT_EQ(Alloc.pendingRemoteFrees(), 0u);
  EXPECT_EQ(Alloc.backend().liveObjectCount(), 0u);
  const AllocatorStats &S = Alloc.stats();
  EXPECT_EQ(S.Allocations, R.Allocations);
  EXPECT_EQ(S.Deallocations, R.Allocations);
  EXPECT_EQ(S.DoubleFrees, 0u);
  EXPECT_EQ(S.InvalidFrees, 0u);
}

TEST(ConcurrentAllocator, CanaryStateSurvivesConcurrentChurn) {
  // DieFast semantics under contention: no false corruption reports, and
  // after quiescence every freed-and-drained slot (FreeTime > 0) holds an
  // intact canary — the fill-at-drain path left exactly the state the
  // single-threaded heap would have.
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(92);
  Cfg.MagazineSize = 16;
  Cfg.DieFastCanaries = true;
  Cfg.CanaryFillProbability = 1.0;
  ConcurrentAllocator Alloc(Cfg);

  ConcurrentStressConfig Stress;
  Stress.Threads = 4;
  Stress.OpsPerThread = 4000;
  Stress.ResidentPerThread = 16;
  Stress.CrossFreeFraction = 0.4;
  Stress.Seed = 92;
  const ConcurrentStressResult R = runConcurrentStress(Alloc, Stress);
  EXPECT_EQ(R.PatternFaults, 0u);
  EXPECT_EQ(R.FailedAllocations, 0u);

  Alloc.flushAll();
  EXPECT_EQ(Alloc.errorsSignalled(), 0u);
  EXPECT_EQ(Alloc.backend().liveObjectCount(), 0u);

  size_t CanariedSlots = 0;
  Alloc.backend().forEachMiniheap([&](unsigned, unsigned, Miniheap &Mini) {
    for (size_t Slot = 0; Slot < Mini.numSlots(); ++Slot) {
      const SlotMetadata &Meta = Mini.slot(Slot);
      if (Meta.FreeTime == 0)
        continue; // Never freed (or never allocated).
      ASSERT_TRUE(Meta.Canaried) << "p = 1 fill skipped a drained slot";
      ASSERT_TRUE(Alloc.canary().verify(Mini.slotPointer(Slot),
                                        Mini.objectSize()))
          << "canary damaged in class " << Mini.objectSize() << " slot "
          << Slot;
      ++CanariedSlots;
    }
  });
  EXPECT_GT(CanariedSlots, 0u);
}

TEST(ConcurrentAllocator, CorruptedCanaryIsQuarantinedOnCachedPath) {
  // A dangling write into a canaried slot must be caught at hand-out even
  // when the slot arrives through a magazine: the slot is quarantined
  // (never returned again) and exactly one error is signalled.
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(5);
  Cfg.MagazineSize = 4;
  Cfg.DieFastCanaries = true;
  ConcurrentAllocator Alloc(Cfg);
  ConcurrentAllocator::ThreadCache &Cache = Alloc.createCache();

  void *Doomed = Alloc.allocateFrom(Cache, 16);
  ASSERT_NE(Doomed, nullptr);
  Alloc.deallocate(Doomed);
  Alloc.flushCache(Cache); // Drain: the slot is canary-filled now.
  static_cast<uint8_t *>(Doomed)[3] ^= 0xff; // The dangling write.

  std::vector<void *> Kept;
  for (int I = 0; I < 2000 && Alloc.errorsSignalled() == 0; ++I) {
    void *Ptr = Alloc.allocateFrom(Cache, 16);
    ASSERT_NE(Ptr, nullptr);
    ASSERT_NE(Ptr, Doomed) << "corrupted slot was handed out";
    Kept.push_back(Ptr);
  }
  EXPECT_EQ(Alloc.errorsSignalled(), 1u);

  const auto Resolved = Alloc.backend().resolvePointer(Doomed);
  ASSERT_TRUE(Resolved.has_value());
  EXPECT_TRUE(Resolved->Heap->slot(Resolved->Ref.SlotIndex).Bad)
      << "corrupted slot was not quarantined";
  for (void *Ptr : Kept)
    Alloc.deallocate(Ptr);
}

TEST(ConcurrentAllocator, DoubleAndInvalidFreesAreCountedLockFree) {
  // The lock-free free path must detect bad frees without the backend
  // lock: a second free of the same pointer bounces off the pending-free
  // bit, and out-of-heap or mid-object pointers bounce off resolution.
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(17);
  Cfg.MagazineSize = 8;
  ConcurrentAllocator Alloc(Cfg);
  ConcurrentAllocator::ThreadCache &Cache = Alloc.createCache();

  void *Ptr = Alloc.allocateFrom(Cache, 32);
  ASSERT_NE(Ptr, nullptr);
  Alloc.deallocate(Ptr);
  Alloc.deallocate(Ptr); // Double free: claimed already.
  int Local = 0;
  Alloc.deallocate(&Local); // Outside the heap entirely.
  void *Mid = Alloc.allocateFrom(Cache, 32);
  ASSERT_NE(Mid, nullptr);
  Alloc.deallocate(static_cast<uint8_t *>(Mid) + 8); // Mid-object.
  Alloc.deallocate(Mid);

  const AllocatorStats &S = Alloc.stats();
  EXPECT_EQ(S.DoubleFrees, 1u);
  EXPECT_EQ(S.InvalidFrees, 2u);
  EXPECT_EQ(S.Allocations, 2u);
}

TEST(ConcurrentAllocator, LockAcquisitionsAreAmortizedByMagazines) {
  // The machine-independent decontention witness: the cached mode takes
  // the backend lock ~2/MagazineSize times per alloc/free pair where the
  // global-lock baseline pays exactly 2.  Wall-clock scaling depends on
  // core count; this ratio does not.
  constexpr uint64_t N = 6400;
  constexpr size_t Magazine = 64;

  ConcurrentAllocatorConfig Cached;
  Cached.Heap = testConfig(55);
  Cached.MagazineSize = Magazine;
  ConcurrentAllocator Fast(Cached);
  ConcurrentAllocator::ThreadCache &Cache = Fast.createCache();
  std::vector<void *> Ptrs;
  Ptrs.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    void *Ptr = Fast.allocateFrom(Cache, 16);
    ASSERT_NE(Ptr, nullptr);
    Ptrs.push_back(Ptr);
  }
  for (void *Ptr : Ptrs)
    Fast.deallocate(Ptr);
  Fast.flushCache(Cache);
  // Refills lock once per Magazine allocations; frees lock never (the
  // flush drains them all in one acquisition).  Allow slack for growth.
  EXPECT_LT(Fast.backendLockAcquires(), 2 * N / Magazine + 16);
  EXPECT_EQ(Fast.backend().liveObjectCount(), 0u);

  ConcurrentAllocatorConfig Locked = Cached;
  Locked.GlobalLockBaseline = true;
  ConcurrentAllocator Slow(Locked);
  Ptrs.clear();
  for (uint64_t I = 0; I < N; ++I)
    Ptrs.push_back(Slow.allocate(16));
  for (void *Ptr : Ptrs)
    Slow.deallocate(Ptr);
  // One acquisition per operation, exactly.
  EXPECT_EQ(Slow.backendLockAcquires(), 2 * N);
}

TEST(ConcurrentAllocator, ThreadExitFlushesItsCache) {
  // A thread that allocates implicitly (allocate() -> TLS cache) and
  // exits must leave nothing behind: its magazines return to the free
  // pool and its queued frees drain, all from the TLS destructor.
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(31);
  Cfg.MagazineSize = 16;
  ConcurrentAllocator Alloc(Cfg);
  std::thread Worker([&] {
    void *Ptr = Alloc.allocate(64);
    EXPECT_NE(Ptr, nullptr);
    Alloc.deallocate(Ptr);
  });
  Worker.join();
  EXPECT_EQ(Alloc.pendingRemoteFrees(), 0u);
  EXPECT_EQ(Alloc.backend().liveObjectCount(), 0u);
  EXPECT_EQ(Alloc.stats().Allocations, 1u);
  EXPECT_EQ(Alloc.stats().Deallocations, 1u);
}

//===----------------------------------------------------------------------===//
// Page retirement (PR 9)
//===----------------------------------------------------------------------===//

TEST(PageRetirement, RetiredPagesNeverReenterTheLottery) {
  DieHardHeap Heap(testConfig(77));
  // Populate, then retire the page under one victim object.
  std::vector<void *> Ptrs;
  for (int I = 0; I < 32; ++I)
    Ptrs.push_back(Heap.allocate(64));
  const uintptr_t Page = reinterpret_cast<uintptr_t>(Ptrs[5]) & ~uintptr_t(0xfff);
  Heap.retirePage(Page);
  EXPECT_TRUE(Heap.isPageRetired(Page));
  EXPECT_GE(Heap.retiredPageCount(), 1u);

  // Free everything — slots on the retired page go to quarantine, the
  // rest return to the pool.
  for (void *Ptr : Ptrs)
    Heap.deallocate(Ptr);
  EXPECT_GT(Heap.retiredSlotCount(), 0u);

  // No future allocation may land on the retired page.
  for (int I = 0; I < 2000; ++I) {
    void *Ptr = Heap.allocate(64);
    ASSERT_NE(Ptr, nullptr);
    EXPECT_FALSE(Heap.isPageRetired(reinterpret_cast<uintptr_t>(Ptr)))
        << "allocation " << I << " landed on a retired page";
  }
}

TEST(PageRetirement, RetireIsIdempotent) {
  DieHardHeap Heap(testConfig(5));
  void *Ptr = Heap.allocate(64);
  const uintptr_t Page = reinterpret_cast<uintptr_t>(Ptr) & ~uintptr_t(0xfff);
  Heap.deallocate(Ptr);
  const size_t First = Heap.retirePage(Page);
  EXPECT_GT(First, 0u); // the freed slot was quarantined immediately
  EXPECT_EQ(Heap.retirePage(Page), 0u);
  EXPECT_EQ(Heap.retiredPageCount(), 1u);
}

TEST(PageRetirement, ForeignPageRetiresNothing) {
  DieHardHeap Heap(testConfig(6));
  EXPECT_EQ(Heap.retirePage(0x12340000), 0u);
  EXPECT_TRUE(Heap.isPageRetired(0x12340000));
  // The heap still allocates normally.
  EXPECT_NE(Heap.allocate(64), nullptr);
}

TEST(PageRetirement, MagazinePathHonorsRetirement) {
  // The concurrent front-end's magazines pre-draw slots; retirement must
  // hold through refills, remote-free drains, and cache flushes.
  ConcurrentAllocatorConfig Cfg;
  Cfg.Heap = testConfig(88);
  Cfg.MagazineSize = 8;
  ConcurrentAllocator Front(Cfg);
  ConcurrentAllocator::ThreadCache &Cache = Front.createCache();

  std::vector<void *> Ptrs;
  for (int I = 0; I < 64; ++I)
    Ptrs.push_back(Front.allocateFrom(Cache, 64));
  const uintptr_t Page =
      reinterpret_cast<uintptr_t>(Ptrs[3]) & ~uintptr_t(0xfff);
  Front.backend().retirePage(Page);

  // Lock-free frees of retired-page objects drain into quarantine.
  for (void *Ptr : Ptrs)
    Front.deallocate(Ptr);
  // Flush returns reserved magazine slots: retired ones must not rejoin.
  Front.flushAll();
  EXPECT_GT(Front.backend().retiredSlotCount(), 0u);

  for (int I = 0; I < 2000; ++I) {
    void *Ptr = Front.allocateFrom(Cache, 64);
    ASSERT_NE(Ptr, nullptr);
    EXPECT_FALSE(Front.backend().isPageRetired(
        reinterpret_cast<uintptr_t>(Ptr)))
        << "magazine handed out a retired-page slot at " << I;
  }
}

//===- tests/alloc_test.cpp - Allocator substrate tests ----------------------===//

#include "alloc/BaselineAllocator.h"
#include "alloc/DieHardHeap.h"
#include "alloc/Miniheap.h"
#include "alloc/SizeClass.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <vector>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// Size classes
//===----------------------------------------------------------------------===//

TEST(SizeClass, ClassSizesArePowersOfTwo) {
  for (unsigned C = 0; C < sizeclass::numClasses(); ++C) {
    const size_t Size = sizeclass::classSize(C);
    EXPECT_EQ(Size & (Size - 1), 0u) << "class " << C;
  }
}

TEST(SizeClass, SmallestAndLargest) {
  EXPECT_EQ(sizeclass::classSize(0), sizeclass::MinObjectSize);
  EXPECT_EQ(sizeclass::classSize(sizeclass::numClasses() - 1),
            sizeclass::MaxObjectSize);
}

TEST(SizeClass, FitsBoundaries) {
  EXPECT_FALSE(sizeclass::fits(0));
  EXPECT_TRUE(sizeclass::fits(1));
  EXPECT_TRUE(sizeclass::fits(sizeclass::MaxObjectSize));
  EXPECT_FALSE(sizeclass::fits(sizeclass::MaxObjectSize + 1));
}

// Property sweep: every representable size maps to the smallest class
// that fits it.
class SizeClassSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SizeClassSweep, RequestFitsItsClassTightly) {
  const size_t Size = GetParam();
  const unsigned Class = sizeclass::classFor(Size);
  EXPECT_GE(sizeclass::classSize(Class), Size);
  if (Class > 0) {
    EXPECT_LT(sizeclass::classSize(Class - 1), Size);
  }
}

INSTANTIATE_TEST_SUITE_P(RepresentativeSizes, SizeClassSweep,
                         ::testing::Values(1, 7, 8, 9, 15, 16, 17, 31, 32,
                                           33, 63, 64, 65, 100, 127, 128,
                                           129, 255, 256, 257, 1000, 1024,
                                           4095, 4096, 65536, 1048576));

//===----------------------------------------------------------------------===//
// Miniheap
//===----------------------------------------------------------------------===//

TEST(Miniheap, LayoutIsContiguous) {
  Miniheap Mini(/*SizeClassIndex=*/2, /*NumSlots=*/16, /*CreationTime=*/0,
                /*GuardBytes=*/64);
  EXPECT_EQ(Mini.objectSize(), 32u);
  for (size_t I = 0; I + 1 < 16; ++I)
    EXPECT_EQ(Mini.slotPointer(I) + 32, Mini.slotPointer(I + 1));
}

TEST(Miniheap, ContainsAndSlotContaining) {
  Miniheap Mini(0, 8, 0, 64);
  EXPECT_TRUE(Mini.contains(Mini.slotPointer(0)));
  EXPECT_TRUE(Mini.contains(Mini.slotPointer(7) + 7));
  EXPECT_FALSE(Mini.contains(Mini.slotPointer(7) + 8)); // guard region
  EXPECT_EQ(Mini.slotContaining(Mini.slotPointer(3) + 5),
            std::optional<size_t>(3));
  int Local;
  EXPECT_FALSE(Mini.contains(&Local));
}

TEST(Miniheap, MarkAllocatedAndFree) {
  Miniheap Mini(1, 8, 0, 0);
  EXPECT_FALSE(Mini.isAllocated(2));
  Mini.markAllocated(2);
  EXPECT_TRUE(Mini.isAllocated(2));
  EXPECT_EQ(Mini.allocatedCount(), 1u);
  Mini.markFree(2);
  EXPECT_FALSE(Mini.isAllocated(2));
}

TEST(Miniheap, SlabStartsZeroed) {
  Miniheap Mini(1, 4, 0, 0);
  for (size_t I = 0; I < 4 * 16; ++I)
    EXPECT_EQ(Mini.base()[I], 0);
}

TEST(Miniheap, MetadataStartsCleared) {
  Miniheap Mini(1, 4, 0, 0);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Mini.slot(I).ObjectId, 0u);
    EXPECT_FALSE(Mini.slot(I).Canaried);
    EXPECT_FALSE(Mini.slot(I).Bad);
  }
}

//===----------------------------------------------------------------------===//
// DieHardHeap
//===----------------------------------------------------------------------===//

static DieHardConfig testConfig(uint64_t Seed = 1) {
  DieHardConfig Config;
  Config.Seed = Seed;
  Config.InitialSlots = 16;
  return Config;
}

TEST(DieHardHeap, AllocateReturnsWritableMemory) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(100);
  ASSERT_NE(Ptr, nullptr);
  std::memset(Ptr, 0xcd, 100);
  EXPECT_EQ(static_cast<uint8_t *>(Ptr)[99], 0xcd);
}

TEST(DieHardHeap, AllocationsDoNotOverlap) {
  DieHardHeap Heap(testConfig());
  std::vector<std::pair<uint8_t *, size_t>> Objects;
  for (int I = 0; I < 200; ++I) {
    const size_t Size = 16 + (I % 5) * 24;
    uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(Size));
    ASSERT_NE(Ptr, nullptr);
    Objects.push_back({Ptr, Size});
  }
  for (size_t A = 0; A < Objects.size(); ++A)
    for (size_t B = A + 1; B < Objects.size(); ++B) {
      const bool Disjoint =
          Objects[A].first + Objects[A].second <= Objects[B].first ||
          Objects[B].first + Objects[B].second <= Objects[A].first;
      EXPECT_TRUE(Disjoint) << A << " overlaps " << B;
    }
}

TEST(DieHardHeap, ZeroSizeAndOversizeRejected) {
  DieHardHeap Heap(testConfig());
  EXPECT_EQ(Heap.allocate(0), nullptr);
  EXPECT_EQ(Heap.allocate(sizeclass::MaxObjectSize + 1), nullptr);
}

TEST(DieHardHeap, ClockCountsAllocations) {
  DieHardHeap Heap(testConfig());
  EXPECT_EQ(Heap.allocationClock(), 0u);
  Heap.allocate(16);
  Heap.allocate(16);
  EXPECT_EQ(Heap.allocationClock(), 2u);
}

TEST(DieHardHeap, ObjectIdsAreSequential) {
  DieHardHeap Heap(testConfig());
  for (uint64_t I = 1; I <= 5; ++I) {
    void *Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    ASSERT_TRUE(Ref.has_value());
    EXPECT_EQ(Heap.objectMetadata(*Ref).ObjectId, I);
  }
}

TEST(DieHardHeap, InvalidFreeIsIgnoredAndCounted) {
  DieHardHeap Heap(testConfig());
  int Local = 0;
  Heap.deallocate(&Local);
  EXPECT_EQ(Heap.stats().InvalidFrees, 1u);
  EXPECT_EQ(Heap.stats().Deallocations, 0u);
}

TEST(DieHardHeap, InteriorPointerFreeIsInvalid) {
  DieHardHeap Heap(testConfig());
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(64));
  Heap.deallocate(Ptr + 8);
  EXPECT_EQ(Heap.stats().InvalidFrees, 1u);
  EXPECT_TRUE(Heap.isLivePointer(Ptr));
}

TEST(DieHardHeap, DoubleFreeIsIgnoredAndCounted) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(64);
  Heap.deallocate(Ptr);
  Heap.deallocate(Ptr);
  EXPECT_EQ(Heap.stats().Deallocations, 1u);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
}

TEST(DieHardHeap, FreeRecordsTimeAndLiveness) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(64);
  Heap.allocate(64);
  auto Ref = Heap.findObject(Ptr);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_TRUE(Heap.isLivePointer(Ptr));
  Heap.deallocate(Ptr);
  EXPECT_FALSE(Heap.isLivePointer(Ptr));
  EXPECT_EQ(Heap.objectMetadata(*Ref).FreeTime, 2u);
}

TEST(DieHardHeap, FindObjectMapsInteriorAddresses) {
  DieHardHeap Heap(testConfig());
  uint8_t *Ptr = static_cast<uint8_t *>(Heap.allocate(128));
  auto Ref = Heap.findObject(Ptr + 100);
  ASSERT_TRUE(Ref.has_value());
  EXPECT_EQ(Heap.objectPointer(*Ref), Ptr);
}

TEST(DieHardHeap, FindObjectRejectsForeignAddresses) {
  DieHardHeap Heap(testConfig());
  Heap.allocate(64);
  int Local;
  EXPECT_FALSE(Heap.findObject(&Local).has_value());
  EXPECT_FALSE(Heap.findObject(nullptr).has_value());
}

TEST(DieHardHeap, FindObjectRejectsGuardRegionAddresses) {
  // Guard regions flank each slab; addresses in them share pages with
  // the object region but must not resolve (that is how DieFast probes
  // one-past-the-end pointers safely).
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(64);
  auto Ref = Heap.findObject(Ptr);
  ASSERT_TRUE(Ref.has_value());
  const Miniheap &Mini = Heap.miniheap(*Ref);
  const uint8_t *Base = Mini.base();
  const uint8_t *End = Base + Mini.numSlots() * Mini.objectSize();
  EXPECT_FALSE(Heap.findObject(Base - 1).has_value());
  EXPECT_FALSE(Heap.findObject(End).has_value()); // one past the end
  EXPECT_FALSE(Heap.findObject(End + 100).has_value());
  EXPECT_TRUE(Heap.findObject(Base).has_value());
  EXPECT_TRUE(Heap.findObject(End - 1).has_value());
}

TEST(DieHardHeap, FastAndLegacyLookupAgree) {
  // The page directory and the sorted-range fallback are two indexes of
  // the same slabs; they must agree on every probe, hits and misses.
  DieHardConfig Fast = testConfig();
  DieHardConfig Legacy = testConfig();
  Legacy.LegacyHotPath = true;
  DieHardHeap A(Fast), B(Legacy);
  std::vector<void *> FromA, FromB;
  for (int I = 0; I < 300; ++I) {
    const size_t Size = 8u << (I % 5);
    FromA.push_back(A.allocate(Size));
    FromB.push_back(B.allocate(Size));
  }
  for (size_t I = 0; I < FromA.size(); ++I) {
    // Same seed, same stream: the two heaps place identically, so slots
    // found by each lookup must match ref-for-ref.
    auto Ra = A.findObject(FromA[I]);
    auto Rb = B.findObject(FromB[I]);
    ASSERT_TRUE(Ra.has_value());
    ASSERT_TRUE(Rb.has_value());
    EXPECT_EQ(*Ra, *Rb);
    // Interior and guard probes agree between the two index structures.
    auto Ia = A.findObject(static_cast<uint8_t *>(FromA[I]) + 3);
    ASSERT_TRUE(Ia.has_value());
    EXPECT_EQ(*Ia, *Ra);
  }
}

TEST(DieHardHeap, PlacementIsUniformAcrossSlots) {
  // Chi-squared sanity check over a single 64-slot miniheap: reserving
  // and releasing one slot at a time, every slot must be drawn with the
  // same frequency (the uniformity DieHard's guarantees rest on, §3.1).
  // The seed is fixed, so the statistic is deterministic.
  DieHardConfig Config = testConfig(1234);
  Config.InitialSlots = 64;
  DieHardHeap Heap(Config);
  constexpr int PerSlot = 300;
  constexpr int Draws = 64 * PerSlot;
  std::vector<int> Counts(64, 0);
  for (int I = 0; I < Draws; ++I) {
    const ObjectRef Ref = Heap.reserveSlot(0);
    ASSERT_LT(Ref.SlotIndex, 64u);
    ++Counts[Ref.SlotIndex];
    Heap.deallocateResolved(Ref);
  }
  double Chi2 = 0;
  for (int Count : Counts) {
    const double Delta = Count - PerSlot;
    Chi2 += Delta * Delta / PerSlot;
  }
  // 63 degrees of freedom: mean 63, sd ~11.2; 130 is ~6 sigma.
  EXPECT_LT(Chi2, 130.0);
}

TEST(DieHardHeap, PlacementIsUniformAcrossMiniheaps) {
  // Multi-slab uniformity: with live objects pinned and several
  // miniheaps in the class, the offset-table placement must still draw
  // every *free* slot equally often (and never a live one).
  DieHardConfig Config = testConfig(99);
  Config.InitialSlots = 64;
  DieHardHeap Heap(Config);
  std::vector<ObjectRef> Pinned;
  for (int I = 0; I < 100; ++I)
    Pinned.push_back(Heap.reserveSlot(0));
  ASSERT_GE(Heap.classHeapCount(0), 2u);
  const size_t Capacity = Heap.classCapacity(0);
  const size_t FreeSlots = Capacity - Pinned.size();

  // Tally draws by class-global slot index.
  std::vector<size_t> Offsets(Heap.classHeapCount(0), 0);
  for (unsigned H = 1; H < Heap.classHeapCount(0); ++H)
    Offsets[H] =
        Offsets[H - 1] +
        Heap.miniheap(ObjectRef{0, H - 1, 0}).numSlots();
  std::vector<int> Counts(Capacity, 0);
  constexpr int PerSlot = 100;
  const int Draws = static_cast<int>(FreeSlots) * PerSlot;
  for (int I = 0; I < Draws; ++I) {
    const ObjectRef Ref = Heap.reserveSlot(0);
    ++Counts[Offsets[Ref.HeapIndex] + Ref.SlotIndex];
    Heap.deallocateResolved(Ref);
  }
  double Chi2 = 0;
  int FreeSeen = 0;
  for (const ObjectRef &Ref : Pinned)
    EXPECT_EQ(Counts[Offsets[Ref.HeapIndex] + Ref.SlotIndex], 0)
        << "live slot was chosen";
  for (size_t I = 0; I < Capacity; ++I) {
    if (Counts[I] == 0)
      continue; // pinned (checked above) — free slots all get draws
    ++FreeSeen;
    const double Delta = Counts[I] - PerSlot;
    Chi2 += Delta * Delta / PerSlot;
  }
  EXPECT_EQ(FreeSeen, static_cast<int>(FreeSlots));
  // df = FreeSlots - 1; bound at ~6 sigma above the mean.
  const double Df = static_cast<double>(FreeSlots - 1);
  EXPECT_LT(Chi2, Df + 6.0 * std::sqrt(2.0 * Df));
}

TEST(DieHardHeap, FastAndLegacyPlacementSequencesMatch) {
  // Same seed, same draw stream: the offset-table resolve must pick the
  // exact slot the legacy linear walk picked, allocation for allocation.
  DieHardConfig Fast = testConfig(7);
  DieHardConfig Legacy = testConfig(7);
  Legacy.LegacyHotPath = true;
  DieHardHeap A(Fast), B(Legacy);
  for (int I = 0; I < 2000; ++I) {
    ObjectRef Ra, Rb;
    const size_t Size = 8u << (I % 4);
    ASSERT_NE(A.allocateWithRef(Size, Ra), nullptr);
    ASSERT_NE(B.allocateWithRef(Size, Rb), nullptr);
    ASSERT_EQ(Ra, Rb) << "placement diverged at allocation " << I;
  }
}

TEST(DieHardHeap, MultiplierKeepsHeapUnderOccupied) {
  // The heap invariant: live objects never exceed capacity / M (§3.1).
  DieHardConfig Config = testConfig();
  Config.Multiplier = 2.0;
  DieHardHeap Heap(Config);
  for (int I = 0; I < 500; ++I)
    Heap.allocate(32);
  const unsigned Class = sizeclass::classFor(32);
  EXPECT_GE(Heap.classCapacity(Class),
            static_cast<size_t>(Heap.liveObjectCount() * 2));
}

TEST(DieHardHeap, MiniheapsDoubleInSize) {
  DieHardHeap Heap(testConfig());
  for (int I = 0; I < 300; ++I)
    Heap.allocate(32);
  const unsigned Class = sizeclass::classFor(32);
  const unsigned HeapCount = Heap.classHeapCount(Class);
  ASSERT_GE(HeapCount, 2u);
  size_t PrevSlots = 0;
  Heap.forEachMiniheap([&](unsigned C, unsigned /*H*/, const Miniheap &Mini) {
    if (C != Class)
      return;
    if (PrevSlots) {
      EXPECT_EQ(Mini.numSlots(), PrevSlots * 2);
    }
    PrevSlots = Mini.numSlots();
  });
}

TEST(DieHardHeap, PlacementDiffersAcrossSeeds) {
  // Differently-seeded heaps must randomize object placement
  // independently — the foundation of every probabilistic claim.
  DieHardHeap A(testConfig(1)), B(testConfig(2));
  unsigned SameSlot = 0;
  constexpr int N = 64;
  for (int I = 0; I < N; ++I) {
    void *Pa = A.allocate(32);
    void *Pb = B.allocate(32);
    auto Ra = A.findObject(Pa);
    auto Rb = B.findObject(Pb);
    if (Ra->SlotIndex == Rb->SlotIndex && Ra->HeapIndex == Rb->HeapIndex)
      ++SameSlot;
  }
  EXPECT_LT(SameSlot, N / 2);
}

TEST(DieHardHeap, SameSeedIsReproducible) {
  DieHardHeap A(testConfig(77)), B(testConfig(77));
  for (int I = 0; I < 64; ++I) {
    auto Ra = A.findObject(A.allocate(48));
    auto Rb = B.findObject(B.allocate(48));
    EXPECT_EQ(Ra->SlotIndex, Rb->SlotIndex);
    EXPECT_EQ(Ra->HeapIndex, Rb->HeapIndex);
  }
}

TEST(DieHardHeap, PlacementIsRoughlyUniform) {
  // Chi-square-ish check: allocate/free repeatedly in a fixed-capacity
  // class and confirm every slot gets used.
  DieHardHeap Heap(testConfig(5));
  std::map<size_t, int> SlotUse;
  for (int I = 0; I < 2000; ++I) {
    void *Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    ++SlotUse[Ref->SlotIndex + 1000 * Ref->HeapIndex];
    Heap.deallocate(Ptr);
  }
  EXPECT_GT(SlotUse.size(), 10u);
}

TEST(DieHardHeap, QuarantineBlocksReuse) {
  DieHardHeap Heap(testConfig());
  void *Ptr = Heap.allocate(32);
  auto Ref = Heap.findObject(Ptr);
  Heap.deallocate(Ptr);
  Heap.quarantine(*Ref);
  // The quarantined slot must never be returned again.
  for (int I = 0; I < 200; ++I)
    EXPECT_NE(Heap.allocate(32), Ptr);
  // Freeing it counts as a double free and changes nothing.
  Heap.deallocate(Ptr);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
}

TEST(DieHardHeap, SiteHashesRecordedFromContext) {
  CallContext Context;
  Context.pushFrame(0xaa);
  DieHardHeap Heap(testConfig(), &Context);
  void *Ptr;
  {
    CallContext::Scope Scope(Context, 0xbb);
    Ptr = Heap.allocate(32);
  }
  auto Ref = Heap.findObject(Ptr);
  const SiteId AllocSite = Heap.objectMetadata(*Ref).AllocSite;
  EXPECT_NE(AllocSite, 0u);
  {
    CallContext::Scope Scope(Context, 0xcc);
    Heap.deallocate(Ptr);
  }
  EXPECT_NE(Heap.objectMetadata(*Ref).FreeSite, 0u);
  EXPECT_NE(Heap.objectMetadata(*Ref).FreeSite, AllocSite);
}

TEST(DieHardHeap, NeighborSlotsAreAddressOrdered) {
  DieHardHeap Heap(testConfig());
  void *Ptr = nullptr;
  // Find an object with both neighbors.
  std::optional<ObjectRef> Mid;
  for (int I = 0; I < 50 && !Mid; ++I) {
    Ptr = Heap.allocate(32);
    auto Ref = Heap.findObject(Ptr);
    if (Ref->SlotIndex > 0 &&
        Ref->SlotIndex + 1 < Heap.miniheap(*Ref).numSlots())
      Mid = Ref;
  }
  ASSERT_TRUE(Mid.has_value());
  auto Prev = Heap.previousSlot(*Mid);
  auto Next = Heap.nextSlot(*Mid);
  ASSERT_TRUE(Prev && Next);
  EXPECT_EQ(Heap.objectPointer(*Prev) + Heap.miniheap(*Mid).objectSize(),
            Heap.objectPointer(*Mid));
  EXPECT_EQ(Heap.objectPointer(*Mid) + Heap.miniheap(*Mid).objectSize(),
            Heap.objectPointer(*Next));
}

// Parameterized: the heap behaves across multipliers.
class MultiplierSweep : public ::testing::TestWithParam<double> {};

TEST_P(MultiplierSweep, OccupancyBoundHolds) {
  DieHardConfig Config = testConfig(3);
  Config.Multiplier = GetParam();
  DieHardHeap Heap(Config);
  std::vector<void *> Live;
  RandomGenerator Rng(9);
  for (int I = 0; I < 400; ++I) {
    Live.push_back(Heap.allocate(64));
    if (Live.size() > 20 && Rng.chance(0.5)) {
      const size_t Pick = Rng.nextBelow(Live.size());
      Heap.deallocate(Live[Pick]);
      Live.erase(Live.begin() + Pick);
    }
  }
  const unsigned Class = sizeclass::classFor(64);
  EXPECT_GE(static_cast<double>(Heap.classCapacity(Class)),
            static_cast<double>(Heap.liveObjectCount()) * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Multipliers, MultiplierSweep,
                         ::testing::Values(1.5, 2.0, 3.0, 4.0));

//===----------------------------------------------------------------------===//
// BaselineAllocator
//===----------------------------------------------------------------------===//

TEST(BaselineAllocator, AllocateAndReuse) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(40);
  ASSERT_NE(A, nullptr);
  std::memset(A, 1, 40);
  Alloc.deallocate(A);
  // Freelist reuse: the same chunk comes back for an equal-size request.
  void *B = Alloc.allocate(40);
  EXPECT_EQ(B, A);
}

TEST(BaselineAllocator, DistinctLiveChunks) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(32);
  void *B = Alloc.allocate(32);
  EXPECT_NE(A, B);
}

TEST(BaselineAllocator, DoubleFreeDetectedViaHeaderTag) {
  BaselineAllocator Alloc;
  void *A = Alloc.allocate(32);
  Alloc.deallocate(A);
  Alloc.deallocate(A);
  EXPECT_EQ(Alloc.stats().InvalidFrees, 1u);
}

TEST(BaselineAllocator, LargeAllocations) {
  BaselineAllocator Alloc;
  void *Big = Alloc.allocate(500000);
  ASSERT_NE(Big, nullptr);
  std::memset(Big, 0x7e, 500000);
  Alloc.deallocate(Big);
  EXPECT_EQ(Alloc.stats().Deallocations, 1u);
}

TEST(BaselineAllocator, ZeroByteRequestSucceeds) {
  BaselineAllocator Alloc;
  EXPECT_NE(Alloc.allocate(0), nullptr);
}

TEST(BaselineAllocator, ManyCycles) {
  BaselineAllocator Alloc;
  for (int I = 0; I < 10000; ++I) {
    void *Ptr = Alloc.allocate(16 + (I % 7) * 8);
    ASSERT_NE(Ptr, nullptr);
    Alloc.deallocate(Ptr);
  }
  EXPECT_EQ(Alloc.stats().Allocations, 10000u);
  EXPECT_EQ(Alloc.stats().Deallocations, 10000u);
}

//===- tests/isolate_test.cpp - Error isolation tests (§4) --------------------===//

#include "isolate/ErrorIsolator.h"

#include "TestHelpers.h"
#include "workload/ScriptedBugs.h"
#include "workload/TraceWorkload.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {

/// Site tokens used by the scripted scenarios.
constexpr uint32_t SiteA = 0x100; // culprit / dangled allocation site
constexpr uint32_t SiteB = 0x200; // bystander allocations
constexpr uint32_t SiteF = 0x300; // frees

SiteId tokenSite(uint32_t Token) {
  CallContext Context;
  Context.pushFrame(Token);
  return Context.currentSite();
}

/// Churn that cycles allocations through most slots of the 64-byte
/// class, so freed space carries canaries the way a long-running heap's
/// does (virgin never-allocated slots are unobservable, as in the
/// paper's canary-bitmap design).
void churnWarmup(std::vector<TraceOp> &Ops, uint32_t BaseSlot) {
  for (uint32_t Round = 0; Round < 6; ++Round) {
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(
          TraceOp::alloc(BaseSlot + Round * 30 + I, /*Size=*/64, SiteB));
    for (uint32_t I = 0; I < 30; ++I)
      Ops.push_back(TraceOp::free(BaseSlot + Round * 30 + I, SiteF));
  }
}

/// Scripted overflow: a 64-byte buffer (slot-exact) overflowed by
/// \p OverflowBytes amid bystander churn.
std::vector<TraceOp> overflowTrace(uint32_t OverflowBytes) {
  std::vector<TraceOp> Ops;
  churnWarmup(Ops, 1000);
  // Bystander population: live objects and canaried free slots.
  for (uint32_t I = 0; I < 24; ++I)
    Ops.push_back(TraceOp::alloc(/*Slot=*/I, /*Size=*/64, SiteB));
  for (uint32_t I = 0; I < 24; I += 2)
    Ops.push_back(TraceOp::free(I, SiteF));
  // The culprit, then the deterministic overrun past its end.
  Ops.push_back(TraceOp::alloc(100, 64, SiteA));
  Ops.push_back(TraceOp::write(100, 0, 64, 0x11)); // in-bounds fill
  Ops.push_back(
      TraceOp::write(100, 64, OverflowBytes, 0x77)); // the overflow
  // Trailing churn so detection has something to hook into.
  for (uint32_t I = 200; I < 212; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
    Ops.push_back(TraceOp::free(I, SiteF));
  }
  return Ops;
}

/// Scripted dangling overwrite: object freed, then written through the
/// stale pointer with deterministic program data.
std::vector<TraceOp> danglingTrace() {
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < 16; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, SiteB));
  Ops.push_back(TraceOp::alloc(50, 64, SiteA));
  Ops.push_back(TraceOp::free(50, SiteF)); // premature free
  // Churn between free and the stale write.
  for (uint32_t I = 100; I < 106; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, SiteB));
  // The dangling write: identical bytes in every run (§4.2).
  Ops.push_back(TraceOp::write(50, 8, 16, 0x3c));
  for (uint32_t I = 200; I < 204; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, SiteB));
  return Ops;
}

} // namespace

//===----------------------------------------------------------------------===//
// Overflow isolation
//===----------------------------------------------------------------------===//

TEST(OverflowIsolation, FindsCulpritSiteWithThreeImages) {
  const auto Images = imagesFromTrace(overflowTrace(6), 3);
  const IsolationResult Result = isolateErrors(Images);
  ASSERT_FALSE(Result.Overflows.empty());
  EXPECT_EQ(Result.Overflows.front().CulpritAllocSite, tokenSite(SiteA));
}

TEST(OverflowIsolation, PadMatchesOverflowExtent) {
  const auto Images = imagesFromTrace(overflowTrace(6), 3);
  const IsolationResult Result = isolateErrors(Images);
  ASSERT_FALSE(Result.Overflows.empty());
  // The pad must contain the full 6-byte overrun, and not wildly more.
  EXPECT_GE(Result.Overflows.front().PadBytes, 6u);
  EXPECT_LE(Result.Overflows.front().PadBytes, 8u);
  EXPECT_EQ(Result.Patches.padFor(tokenSite(SiteA)),
            Result.Overflows.front().PadBytes);
}

TEST(OverflowIsolation, TopCandidateHasHighScore) {
  const auto Images = imagesFromTrace(overflowTrace(20), 3);
  const IsolationResult Result = isolateErrors(Images);
  ASSERT_FALSE(Result.Overflows.empty());
  EXPECT_GT(Result.Overflows.front().Score, 0.99);
  EXPECT_GE(Result.Overflows.front().Confirmations, 2u);
}

TEST(OverflowIsolation, NoFindingsOnCleanImages) {
  std::vector<TraceOp> Clean;
  for (uint32_t I = 0; I < 32; ++I) {
    Clean.push_back(TraceOp::alloc(I, 64, SiteB));
    Clean.push_back(TraceOp::write(I, 0, 64, 0x22));
  }
  for (uint32_t I = 0; I < 32; I += 2)
    Clean.push_back(TraceOp::free(I, SiteF));
  const auto Images = imagesFromTrace(Clean, 3);
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_TRUE(Result.Overflows.empty());
  EXPECT_TRUE(Result.Danglings.empty());
  EXPECT_TRUE(Result.Patches.empty());
}

TEST(OverflowIsolation, RequiresAtLeastTwoImages) {
  const auto Images = imagesFromTrace(overflowTrace(6), 1);
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_TRUE(Result.Patches.empty());
}

TEST(OverflowIsolation, PointerValuesAreNotFlaggedAsCorruption) {
  // Live objects holding pointers differ across heaps by construction;
  // the isolator must mask them (§4.1).  The trace cannot store computed
  // pointers, so build images by hand from a pointer-heavy workload run.
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < 16; ++I)
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
  // No bug at all, but lots of churn.
  for (uint32_t I = 0; I < 16; I += 3)
    Ops.push_back(TraceOp::free(I, SiteF));
  const auto Images = imagesFromTrace(Ops, 4);
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_TRUE(Result.Patches.empty());
}

// Parameterized over the paper's injected overflow sizes (§7.2).
class OverflowSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(OverflowSizeSweep, IsolatedAndPadded) {
  const uint32_t Size = GetParam();
  const auto Images = imagesFromTrace(overflowTrace(Size), 3);
  const IsolationResult Result = isolateErrors(Images);
  ASSERT_FALSE(Result.Overflows.empty()) << "overflow of " << Size;
  EXPECT_EQ(Result.Overflows.front().CulpritAllocSite, tokenSite(SiteA));
  EXPECT_GE(Result.Overflows.front().PadBytes, Size);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, OverflowSizeSweep,
                         ::testing::Values(4, 20, 36));

//===----------------------------------------------------------------------===//
// Dangling isolation
//===----------------------------------------------------------------------===//

TEST(DanglingIsolation, FindsIdenticalOverwrite) {
  const auto Images = imagesFromTrace(danglingTrace(), 3);
  const IsolationResult Result = isolateErrors(Images);
  ASSERT_FALSE(Result.Danglings.empty());
  const DanglingFinding &Finding = Result.Danglings.front();
  EXPECT_EQ(Finding.AllocSite, tokenSite(SiteA));
  EXPECT_EQ(Finding.FreeSite, tokenSite(SiteF));
}

TEST(DanglingIsolation, DeferralIsTwiceFreeToFailurePlusOne) {
  const auto Images = imagesFromTrace(danglingTrace(), 3);
  const IsolationResult Result = isolateErrors(Images);
  ASSERT_FALSE(Result.Danglings.empty());
  const DanglingFinding &Finding = Result.Danglings.front();
  EXPECT_EQ(Finding.DeferralTicks,
            2 * (Finding.FailureTime - Finding.FreeTime) + 1);
  EXPECT_EQ(Result.Patches.deferralFor(Finding.AllocSite, Finding.FreeSite),
            Finding.DeferralTicks);
}

TEST(DanglingIsolation, OverwriteNotMisclassifiedAsOverflow) {
  const auto Images = imagesFromTrace(danglingTrace(), 3);
  const IsolationResult Result = isolateErrors(Images);
  // The dangled object's corruption must be excluded from overflow
  // evidence (Theorem 1 separates the two cases).
  EXPECT_EQ(Result.Patches.padFor(tokenSite(SiteA)), 0u);
  EXPECT_EQ(Result.Patches.padFor(tokenSite(SiteB)), 0u);
}

TEST(DanglingIsolation, TwoImagesSuffice) {
  const auto Images = imagesFromTrace(danglingTrace(), 2);
  const IsolationResult Result = isolateErrors(Images);
  ASSERT_FALSE(Result.Danglings.empty());
  EXPECT_EQ(Result.Danglings.front().AllocSite, tokenSite(SiteA));
}

TEST(DanglingIsolation, ReadOnlyDanglingYieldsNothing) {
  // A dangled object that is never written leaves no corruption: the
  // iterative-mode isolator must come up empty (§4.2; cumulative mode
  // exists for exactly this case).
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < 16; ++I)
    Ops.push_back(TraceOp::alloc(I, 32, SiteB));
  Ops.push_back(TraceOp::alloc(50, 64, SiteA));
  Ops.push_back(TraceOp::free(50, SiteF));
  Ops.push_back(TraceOp::read(50, 16)); // read-only use-after-free
  const auto Images = imagesFromTrace(Ops, 3);
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_TRUE(Result.Danglings.empty());
  EXPECT_TRUE(Result.Patches.empty());
}

//===----------------------------------------------------------------------===//
// Combined scenarios
//===----------------------------------------------------------------------===//

TEST(ErrorIsolation, OverflowAndDanglingInOneRun) {
  std::vector<TraceOp> Ops = danglingTrace();
  // Add an overflow on top (slots 300+ to avoid collisions).
  churnWarmup(Ops, 2000);
  Ops.push_back(TraceOp::alloc(300, 64, SiteA));
  Ops.push_back(TraceOp::write(300, 64, 12, 0x44));
  for (uint32_t I = 310; I < 318; ++I) {
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
    Ops.push_back(TraceOp::free(I, SiteF));
  }
  const auto Images = imagesFromTrace(Ops, 3);
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_FALSE(Result.Danglings.empty());
  ASSERT_FALSE(Result.Overflows.empty());
  EXPECT_GE(Result.Overflows.front().PadBytes, 12u);
}

TEST(ErrorIsolation, EvidenceCollectorClassifiesWords) {
  // Unit-level checks of the §4.1 masking rules.
  const auto Images = imagesFromTrace(overflowTrace(6), 3);
  const std::vector<HeapImageView> Views = makeViews(Images);
  const EvidenceCollector Collector(Views);

  EXPECT_EQ(Collector.classifyWord(1, 0, {5, 5, 5}), WordClassKind::Equal);
  // All pairwise distinct: legitimately different (pids etc.).
  EXPECT_EQ(Collector.classifyWord(1, 0, {1, 2, 3}),
            WordClassKind::LegitimatelyDifferent);
  // Minority disagreement: overflow evidence.
  EXPECT_EQ(Collector.classifyWord(1, 0, {5, 5, 9}),
            WordClassKind::OverflowEvidence);
}

TEST(ErrorIsolation, CoalesceRegionsMergesAdjacent) {
  std::vector<CorruptionRegion> Regions(2);
  Regions[0].ImageIndex = 0;
  Regions[0].BeginAddress = 100;
  Regions[0].EndAddress = 104;
  Regions[0].Bytes = {1, 2, 3, 4};
  Regions[1].ImageIndex = 0;
  Regions[1].BeginAddress = 104;
  Regions[1].EndAddress = 106;
  Regions[1].Bytes = {5, 6};
  coalesceRegions(Regions);
  ASSERT_EQ(Regions.size(), 1u);
  EXPECT_EQ(Regions[0].BeginAddress, 100u);
  EXPECT_EQ(Regions[0].EndAddress, 106u);
  EXPECT_EQ(Regions[0].Bytes, (std::vector<uint8_t>{1, 2, 3, 4, 5, 6}));
}

TEST(ErrorIsolation, CoalesceKeepsDistinctImagesSeparate) {
  std::vector<CorruptionRegion> Regions(2);
  Regions[0].ImageIndex = 0;
  Regions[0].BeginAddress = 100;
  Regions[0].EndAddress = 104;
  Regions[0].Bytes = {1, 2, 3, 4};
  Regions[1].ImageIndex = 1;
  Regions[1].BeginAddress = 102;
  Regions[1].EndAddress = 106;
  Regions[1].Bytes = {5, 6, 7, 8};
  coalesceRegions(Regions);
  EXPECT_EQ(Regions.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Software-vs-hardware origin classification (PR 9)
//===----------------------------------------------------------------------===//

namespace {

FaultPlan hardwareFault(FaultKind Kind, uint64_t Seed) {
  FaultPlan Plan;
  Plan.Kind = Kind;
  // After the churn warmup (180 allocations) there are plenty of freed,
  // canaried victim slots.
  Plan.TriggerAllocation = 150;
  Plan.PatternSeed = Seed;
  return Plan;
}

} // namespace

TEST(OriginClassifier, BitFlipYieldsHardwareReportAndZeroSitePatches) {
  // The load-bearing discrimination: decorrelated single-bit damage must
  // never become a site patch — it becomes a hardware-fault report with
  // the suspected physical pages.
  const auto Images =
      scriptedHardwareEvidenceImages(3, hardwareFault(FaultKind::BitFlip, 7));
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_EQ(Result.Patches.padCount(), 0u);
  EXPECT_EQ(Result.Patches.frontPadCount(), 0u);
  EXPECT_EQ(Result.Patches.deferralCount(), 0u);
  ASSERT_FALSE(Result.HardwareFaults.empty());
  for (const HardwareFinding &Finding : Result.HardwareFaults) {
    EXPECT_NE(Finding.PageAddress, 0u);
    EXPECT_EQ(Finding.PageAddress & 0xfffu, 0u);
    EXPECT_NE(Finding.KindMask, 0u);
    EXPECT_GE(Finding.EvidenceRegions, 1u);
  }
  EXPECT_EQ(Result.Patches.hardwareReportCount(),
            Result.HardwareFaults.size());
}

TEST(OriginClassifier, StuckAtYieldsHardwareReportAndZeroSitePatches) {
  const auto Images =
      scriptedHardwareEvidenceImages(3, hardwareFault(FaultKind::StuckAt, 5));
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_EQ(Result.Patches.padCount(), 0u);
  EXPECT_EQ(Result.Patches.frontPadCount(), 0u);
  EXPECT_EQ(Result.Patches.deferralCount(), 0u);
  EXPECT_FALSE(Result.HardwareFaults.empty());
}

TEST(OriginClassifier, RowClusterYieldsClusteredHardwareReport) {
  const auto Images = scriptedHardwareEvidenceImages(
      3, hardwareFault(FaultKind::RowCluster, 3));
  const IsolationResult Result = isolateErrors(Images);
  EXPECT_EQ(Result.Patches.padCount(), 0u);
  EXPECT_EQ(Result.Patches.frontPadCount(), 0u);
  EXPECT_EQ(Result.Patches.deferralCount(), 0u);
  ASSERT_FALSE(Result.HardwareFaults.empty());
  // Many slots of one simulated row corrupt together: at least one page
  // carries the row-cluster signature and several evidence regions.
  uint32_t CombinedMask = 0;
  uint64_t MaxRegions = 0;
  for (const HardwareFinding &Finding : Result.HardwareFaults) {
    CombinedMask |= Finding.KindMask;
    MaxRegions = std::max(MaxRegions, Finding.EvidenceRegions);
  }
  EXPECT_TRUE(CombinedMask & HardwareFaultRowCluster);
  EXPECT_GE(MaxRegions, 2u);
}

TEST(OriginClassifier, OverflowDiagnosisIsBitIdenticalWithClassifier) {
  // A pure-software evidence set must flow through the classifier
  // untouched: the diagnosis with classification enabled is identical to
  // the pre-PR-9 path (classifier off).
  const auto Images = imagesFromTrace(overflowTrace(6), 3);
  IsolationConfig Disabled;
  Disabled.Origin.Enabled = false;
  const IsolationResult Before = isolateErrors(Images, Disabled);
  const IsolationResult After = isolateErrors(Images);
  EXPECT_GT(Before.Patches.padCount(), 0u);
  EXPECT_TRUE(Before.Patches == After.Patches);
  EXPECT_TRUE(After.HardwareFaults.empty());
  ASSERT_EQ(Before.Overflows.size(), After.Overflows.size());
  for (size_t I = 0; I < Before.Overflows.size(); ++I) {
    EXPECT_EQ(Before.Overflows[I].CulpritAllocSite,
              After.Overflows[I].CulpritAllocSite);
    EXPECT_EQ(Before.Overflows[I].PadBytes, After.Overflows[I].PadBytes);
  }
}

TEST(OriginClassifier, MixedRunPatchesSoftwareAndReportsHardware) {
  // An overflow and a DRAM fault in the same heap: the overflow still
  // gets its pad (same site, same size as a clean software-only run) and
  // the flip damage goes to a hardware report, not a second site patch.
  ExterminatorConfig WithFault;
  WithFault.Fault = hardwareFault(FaultKind::BitFlip, 11);
  WithFault.Fault.TriggerAllocation = 190;
  const auto Mixed = imagesFromTrace(overflowTrace(6), 3, 1000, WithFault);
  const IsolationResult Result = isolateErrors(Mixed);

  const auto Clean = imagesFromTrace(overflowTrace(6), 3);
  const IsolationResult Reference = isolateErrors(Clean);

  ASSERT_FALSE(Result.Overflows.empty());
  ASSERT_FALSE(Reference.Overflows.empty());
  EXPECT_EQ(Result.Overflows[0].CulpritAllocSite,
            Reference.Overflows[0].CulpritAllocSite);
  EXPECT_GT(Result.Patches.padFor(tokenSite(SiteA)), 0u);
  EXPECT_FALSE(Result.HardwareFaults.empty());
  EXPECT_EQ(Result.Patches.deferralCount(), 0u);
}

//===- tests/cumulative_test.cpp - Cumulative mode tests (§5) -----------------===//

#include "cumulative/BayesClassifier.h"
#include "cumulative/CumulativeIsolator.h"
#include "cumulative/SiteEstimator.h"
#include "support/Serializer.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace exterminator;
using namespace exterminator::testing_support;

//===----------------------------------------------------------------------===//
// BayesClassifier (§5.1)
//===----------------------------------------------------------------------===//

TEST(BayesClassifier, H0LikelihoodMatchesClosedForm) {
  // Two trials with X = 1/2: observing (Y=1, Y=0) has probability 1/4.
  std::vector<BayesTrial> Trials = {{0.5, true}, {0.5, false}};
  EXPECT_NEAR(BayesClassifier::logLikelihoodH0(Trials), std::log(0.25),
              1e-9);
}

TEST(BayesClassifier, H1IntegralMatchesClosedForm) {
  // One trial, X = 0, Y = 1: P(Y|θ) = θ, so ∫θ dθ = 1/2.
  std::vector<BayesTrial> Trials = {{0.0, true}};
  EXPECT_NEAR(std::exp(BayesClassifier::logLikelihoodH1(Trials)), 0.5,
              1e-6);
}

TEST(BayesClassifier, H1IntegralMatchesClosedFormQuadratic) {
  // Two trials, X = 0, Y = 1 twice: ∫θ² dθ = 1/3.
  std::vector<BayesTrial> Trials = {{0.0, true}, {0.0, true}};
  EXPECT_NEAR(std::exp(BayesClassifier::logLikelihoodH1(Trials)),
              1.0 / 3.0, 1e-6);
}

TEST(BayesClassifier, H1IntegralWithMixedOutcomes) {
  // X = 0 trials: P(Y=1|θ) = θ, P(Y=0|θ) = 1−θ.
  // ∫ θ(1−θ) dθ = 1/6.
  std::vector<BayesTrial> Trials = {{0.0, true}, {0.0, false}};
  EXPECT_NEAR(std::exp(BayesClassifier::logLikelihoodH1(Trials)),
              1.0 / 6.0, 1e-6);
}

TEST(BayesClassifier, BayesFactorGrowsWithConsistentHits) {
  // A site whose Y = 1 at X = 1/2 every run: the Bayes factor must grow
  // without bound — this is how "15 failures" eventually cross any
  // threshold (§7.2).
  std::vector<BayesTrial> Trials;
  double Previous = -1e300;
  for (int I = 0; I < 20; ++I) {
    Trials.push_back(BayesTrial{0.5, true});
    const double LogBF = BayesClassifier::logBayesFactor(Trials);
    EXPECT_GT(LogBF, Previous);
    Previous = LogBF;
  }
  EXPECT_GT(Previous, 5.0);
}

TEST(BayesClassifier, ChanceLevelHitsDoNotAccumulateEvidence) {
  // Y = 1 at exactly the chance rate: no sustained growth.  Interleave
  // hits and misses at X = 1/2.
  std::vector<BayesTrial> Trials;
  for (int I = 0; I < 30; ++I)
    Trials.push_back(BayesTrial{0.5, I % 2 == 0});
  EXPECT_LT(BayesClassifier::logBayesFactor(Trials), 1.0);
}

TEST(BayesClassifier, ThresholdScalesWithSiteCount) {
  const BayesClassifier Classifier(4.0);
  // P(H1) = 1/(4N): more candidate sites → higher threshold.
  EXPECT_LT(Classifier.logThreshold(10), Classifier.logThreshold(1000));
  EXPECT_NEAR(Classifier.logThreshold(1),
              std::log((1.0 - 0.25) / 0.25), 1e-9);
}

TEST(BayesClassifier, IsErrorSourceEndToEnd) {
  const BayesClassifier Classifier(4.0);
  std::vector<BayesTrial> Guilty, Innocent;
  for (int I = 0; I < 15; ++I) {
    Guilty.push_back(BayesTrial{0.3, true});
    Innocent.push_back(BayesTrial{0.3, I % 3 == 0}); // ~chance rate
  }
  EXPECT_TRUE(Classifier.isErrorSource(Guilty, 100));
  EXPECT_FALSE(Classifier.isErrorSource(Innocent, 100));
}

TEST(BayesClassifier, EmptyTrialsNeverFlag) {
  const BayesClassifier Classifier(4.0);
  EXPECT_FALSE(Classifier.isErrorSource({}, 10));
}

TEST(BayesClassifier, ExtremeProbabilitiesAreClamped) {
  // X = 0 with Y = 1 would be -inf under H0 without clamping; the
  // classifier must stay finite and strongly favor H1.
  std::vector<BayesTrial> Trials = {{0.0, true}, {0.0, true}};
  const double LogBF = BayesClassifier::logBayesFactor(Trials);
  EXPECT_TRUE(std::isfinite(LogBF));
  EXPECT_GT(LogBF, 10.0);
}

//===----------------------------------------------------------------------===//
// SiteEstimator (§5.1, §5.2)
//===----------------------------------------------------------------------===//

namespace {
constexpr uint32_t SiteA = 0x100;
constexpr uint32_t SiteB = 0x200;
constexpr uint32_t SiteF = 0x300;

SiteId tokenSite(uint32_t Token) {
  CallContext Context;
  Context.pushFrame(Token);
  return Context.currentSite();
}

/// A run with a 6-byte overflow from SiteA (64-byte buffer).
std::vector<TraceOp> overflowTrace() {
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < 24; ++I)
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
  for (uint32_t I = 0; I < 24; I += 2)
    Ops.push_back(TraceOp::free(I, SiteF));
  Ops.push_back(TraceOp::alloc(100, 64, SiteA));
  Ops.push_back(TraceOp::write(100, 64, 6, 0x77));
  return Ops;
}
} // namespace

TEST(SiteEstimator, CleanRunHasNoCorruption) {
  std::vector<TraceOp> Ops;
  for (uint32_t I = 0; I < 16; ++I)
    Ops.push_back(TraceOp::alloc(I, 64, SiteB));
  const auto Run = runTrace(Ops, 42);
  const RunSummary Summary = summarizeRun(Run.FinalImage, false);
  EXPECT_FALSE(Summary.CorruptionObserved);
  EXPECT_TRUE(Summary.OverflowTrials.empty());
  EXPECT_FALSE(Summary.Failed);
}

TEST(SiteEstimator, OverflowRunProducesTrials) {
  // The overflow lands on a canaried free slot in most randomizations;
  // find a seed where it does and check the trial structure.
  for (uint64_t Seed = 1; Seed < 20; ++Seed) {
    const auto Run = runTrace(overflowTrace(), Seed);
    const RunSummary Summary = summarizeRun(Run.FinalImage, false);
    if (!Summary.CorruptionObserved)
      continue;
    ASSERT_FALSE(Summary.OverflowTrials.empty());
    for (const OverflowTrial &Trial : Summary.OverflowTrials) {
      EXPECT_GE(Trial.Probability, 0.0);
      EXPECT_LE(Trial.Probability, 1.0);
    }
    return;
  }
  FAIL() << "no seed produced observable corruption";
}

TEST(SiteEstimator, TrueCulpritSiteObservedWhenCorrupt) {
  // Whenever corruption is observed, the true culprit (directly below
  // its own overflow) must have Y = 1.
  unsigned Corrupt = 0, CulpritObserved = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    const auto Run = runTrace(overflowTrace(), Seed);
    const RunSummary Summary = summarizeRun(Run.FinalImage, false);
    if (!Summary.CorruptionObserved)
      continue;
    ++Corrupt;
    for (const OverflowTrial &Trial : Summary.OverflowTrials)
      if (Trial.AllocSite == tokenSite(SiteA) && Trial.Observed)
        ++CulpritObserved;
  }
  ASSERT_GT(Corrupt, 0u);
  EXPECT_EQ(CulpritObserved, Corrupt);
}

TEST(SiteEstimator, DanglingTrialsOnlyOnFailedRuns) {
  std::vector<TraceOp> Ops;
  Ops.push_back(TraceOp::alloc(0, 64, SiteA));
  Ops.push_back(TraceOp::free(0, SiteF));
  const auto Run = runTrace(Ops, 3);
  EXPECT_TRUE(summarizeRun(Run.FinalImage, false).DanglingTrials.empty());
  EXPECT_FALSE(summarizeRun(Run.FinalImage, true).DanglingTrials.empty());
}

TEST(SiteEstimator, DanglingTrialProbabilityReflectsP) {
  // With p = 1 and one freed object, X = 1 − (1−p)^1 = 1.
  std::vector<TraceOp> Ops;
  Ops.push_back(TraceOp::alloc(0, 64, SiteA));
  Ops.push_back(TraceOp::free(0, SiteF));
  const auto Run = runTrace(Ops, 3);
  const RunSummary Summary = summarizeRun(Run.FinalImage, true);
  ASSERT_EQ(Summary.DanglingTrials.size(), 1u);
  EXPECT_NEAR(Summary.DanglingTrials[0].Probability, 1.0, 1e-12);
  EXPECT_TRUE(Summary.DanglingTrials[0].Observed);
}

TEST(SiteEstimator, HalfCanaryProbabilityInTrials) {
  ExterminatorConfig Config;
  Config.CanaryFillProbability = 0.5;
  std::vector<TraceOp> Ops;
  Ops.push_back(TraceOp::alloc(0, 64, SiteA));
  Ops.push_back(TraceOp::free(0, SiteF));
  Ops.push_back(TraceOp::alloc(1, 64, SiteA));
  Ops.push_back(TraceOp::free(1, SiteF));
  const auto Run = runTrace(Ops, 3, Config);
  const RunSummary Summary = summarizeRun(Run.FinalImage, true);
  ASSERT_EQ(Summary.DanglingTrials.size(), 1u);
  // Two freed objects at p = 1/2: X = 1 − (1/2)² = 3/4.
  EXPECT_NEAR(Summary.DanglingTrials[0].Probability, 0.75, 1e-12);
}

TEST(RunSummary, SerializationRoundTrip) {
  RunSummary Summary;
  Summary.Failed = true;
  Summary.CorruptionObserved = true;
  Summary.EndTime = 12345;
  Summary.OverflowTrials.push_back(OverflowTrial{0xaaaa, 0.25, true, 6});
  Summary.OverflowTrials.push_back(OverflowTrial{0xbbbb, 0.5, false, 0});
  Summary.DanglingTrials.push_back(
      DanglingTrial{0xcccc, 0xdddd, 0.75, true, 42});

  RunSummary Back;
  ASSERT_TRUE(deserializeRunSummary(serializeRunSummary(Summary), Back));
  EXPECT_EQ(Back.Failed, Summary.Failed);
  EXPECT_EQ(Back.CorruptionObserved, Summary.CorruptionObserved);
  EXPECT_EQ(Back.EndTime, Summary.EndTime);
  EXPECT_EQ(Back.OverflowTrials, Summary.OverflowTrials);
  EXPECT_EQ(Back.DanglingTrials, Summary.DanglingTrials);
}

TEST(RunSummary, DeserializeRejectsGarbage) {
  RunSummary Back;
  EXPECT_FALSE(deserializeRunSummary({9, 9, 9, 9}, Back));
}

//===----------------------------------------------------------------------===//
// CumulativeIsolator (§5)
//===----------------------------------------------------------------------===//

TEST(CumulativeIsolator, FlagsConsistentlyGuiltySite) {
  CumulativeIsolator Isolator;
  // 20 corrupted runs where site 0xaaaa always satisfies the criteria at
  // 30% chance probability, while 50 innocent sites hit at chance.
  RandomGenerator Rng(7);
  for (int Run = 0; Run < 20; ++Run) {
    RunSummary Summary;
    Summary.CorruptionObserved = true;
    Summary.OverflowTrials.push_back(OverflowTrial{0xaaaa, 0.3, true, 6});
    for (SiteId S = 1; S <= 50; ++S)
      Summary.OverflowTrials.push_back(
          OverflowTrial{S, 0.3, Rng.chance(0.3), 2});
    Isolator.addRun(Summary);
  }
  const auto Findings = Isolator.classifyOverflows();
  ASSERT_FALSE(Findings.empty());
  EXPECT_EQ(Findings.front().AllocSite, 0xaaaau);
  EXPECT_EQ(Findings.front().PadBytes, 6u);
  // No innocent site outranks the guilty one.
  for (const auto &Finding : Findings) {
    if (Finding.AllocSite != 0xaaaa) {
      EXPECT_LT(Finding.LogBayesFactor, Findings.front().LogBayesFactor);
    }
  }
}

TEST(CumulativeIsolator, NoFindingsFromChanceAlone) {
  CumulativeIsolator Isolator;
  RandomGenerator Rng(11);
  for (int Run = 0; Run < 30; ++Run) {
    RunSummary Summary;
    Summary.CorruptionObserved = true;
    for (SiteId S = 1; S <= 50; ++S)
      Summary.OverflowTrials.push_back(
          OverflowTrial{S, 0.3, Rng.chance(0.3), 1});
    Isolator.addRun(Summary);
  }
  EXPECT_TRUE(Isolator.classifyOverflows().empty());
}

TEST(CumulativeIsolator, DanglingPairCrossesThresholdWithFailures) {
  CumulativeIsolator Isolator;
  RandomGenerator Rng(13);
  unsigned Failures = 0;
  // Failed runs: the dangled pair was always canaried (that is why the
  // run failed); innocent pairs are canaried at the chance rate p = 1/2.
  while (Isolator.classifyDanglings().empty() && Failures < 50) {
    RunSummary Summary;
    Summary.Failed = true;
    Summary.DanglingTrials.push_back(
        DanglingTrial{0xaaaa, 0xbbbb, 0.5, true, 40});
    for (SiteId S = 1; S <= 30; ++S)
      Summary.DanglingTrials.push_back(
          DanglingTrial{S, S + 1, 0.5, Rng.chance(0.5), 10});
    Isolator.addRun(Summary);
    ++Failures;
  }
  const auto Findings = Isolator.classifyDanglings();
  ASSERT_FALSE(Findings.empty());
  EXPECT_EQ(Findings.front().AllocSite, 0xaaaau);
  EXPECT_EQ(Findings.front().FreeSite, 0xbbbbu);
  // 2 × max free-to-failure distance (§5.2).
  EXPECT_EQ(Findings.front().DeferralTicks, 80u);
  // The paper observes ~15 failures before crossing; ours should be in
  // the same regime (tens, not thousands or units).
  EXPECT_GE(Failures, 5u);
  EXPECT_LE(Failures, 40u);
}

TEST(CumulativeIsolator, PatchesReflectFindings) {
  CumulativeIsolator Isolator;
  for (int Run = 0; Run < 25; ++Run) {
    RunSummary Summary;
    Summary.CorruptionObserved = true;
    Summary.Failed = true;
    Summary.OverflowTrials.push_back(OverflowTrial{0x1111, 0.2, true, 36});
    Summary.DanglingTrials.push_back(
        DanglingTrial{0x2222, 0x3333, 0.5, true, 100});
    for (SiteId S = 1; S <= 40; ++S) {
      Summary.OverflowTrials.push_back(OverflowTrial{S, 0.2, false, 0});
      Summary.DanglingTrials.push_back(
          DanglingTrial{S, S, 0.5, Run % 2 == 0, 5});
    }
    Isolator.addRun(Summary);
  }
  const PatchSet Patches = Isolator.patches();
  EXPECT_EQ(Patches.padFor(0x1111), 36u);
  EXPECT_EQ(Patches.deferralFor(0x2222, 0x3333), 200u);
}

TEST(CumulativeIsolator, StateSerializationRoundTrip) {
  CumulativeIsolator Isolator;
  RunSummary Summary;
  Summary.Failed = true;
  Summary.CorruptionObserved = true;
  Summary.OverflowTrials.push_back(OverflowTrial{0xaaaa, 0.3, true, 6});
  Summary.DanglingTrials.push_back(
      DanglingTrial{0xbbbb, 0xcccc, 0.5, true, 42});
  for (int I = 0; I < 10; ++I)
    Isolator.addRun(Summary);

  CumulativeIsolator Back;
  ASSERT_TRUE(Back.deserialize(Isolator.serialize()));
  EXPECT_EQ(Back.runCount(), 10u);
  EXPECT_EQ(Back.failedRunCount(), 10u);
  // Classification over the restored state matches.
  const auto A = Isolator.classifyOverflows();
  const auto B = Back.classifyOverflows();
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].AllocSite, B[I].AllocSite);
    EXPECT_DOUBLE_EQ(A[I].LogBayesFactor, B[I].LogBayesFactor);
  }
}

TEST(CumulativeIsolator, DeserializeRejectsGarbage) {
  CumulativeIsolator Isolator;
  EXPECT_FALSE(Isolator.deserialize({1, 2, 3}));
}

TEST(CumulativeIsolator, MalformedInputLeavesStateUntouched) {
  // All-or-nothing: a state buffer torn mid-stream must not half-seed
  // the accumulated history (a server restored from it would classify
  // from a fabricated trial record).
  CumulativeIsolator Isolator;
  RunSummary Summary;
  Summary.Failed = true;
  Summary.CorruptionObserved = true;
  Summary.OverflowTrials.push_back(OverflowTrial{0xaaaa, 0.3, true, 6});
  Summary.DanglingTrials.push_back(
      DanglingTrial{0xbbbb, 0xcccc, 0.5, true, 42});
  for (int I = 0; I < 6; ++I)
    Isolator.addRun(Summary);
  const std::vector<uint8_t> Good = Isolator.serialize();

  CumulativeIsolator Victim;
  Victim.addRun(Summary);
  const std::vector<uint8_t> Before = Victim.serialize();
  // Cut at a stride (full per-byte coverage is slow at ~4 KB of
  // accumulator sums per site); always include the first/last bytes.
  for (size_t Cut = 0; Cut < Good.size(); Cut += 61) {
    const std::vector<uint8_t> Truncated(Good.begin(), Good.begin() + Cut);
    EXPECT_FALSE(Victim.deserialize(Truncated))
        << "accepted truncation at " << Cut;
    EXPECT_EQ(Victim.serialize(), Before) << "mutated state at cut " << Cut;
  }
  EXPECT_FALSE(Victim.deserialize(
      std::vector<uint8_t>(Good.begin(), Good.end() - 1)));
  EXPECT_EQ(Victim.serialize(), Before);
  // The intact buffer still restores wholesale.
  ASSERT_TRUE(Victim.deserialize(Good));
  EXPECT_EQ(Victim.serialize(), Good);
  EXPECT_EQ(Victim.runCount(), 6u);
}

TEST(CumulativeIsolator, LegacyV1StateStillLoads) {
  // Pre-PR-5 state files ("XCS1") carry trials but no accumulator sums;
  // deserialize rebuilds the sums by replay, bit-identical to a v2
  // ("XCS2") restore of the same history.
  CumulativeIsolator Original;
  RunSummary Summary;
  Summary.Failed = true;
  Summary.CorruptionObserved = true;
  for (unsigned I = 0; I < 9; ++I) {
    Summary.OverflowTrials = {{0xabc, 0.25, I % 3 != 0, 12}};
    Summary.DanglingTrials = {{0x123, 0x456, 0.4, true, 50 + I}};
    Original.addRun(Summary);
  }

  // Hand-build the v1 encoding from the isolator's own v2 bytes: v1 is
  // v2 minus the per-site accumulator blobs, so re-encode trials only.
  ByteWriter V1;
  V1.writeU32(0x58435331); // "XCS1"
  V1.writeU64(Original.runCount());
  V1.writeU64(Original.failedRunCount());
  V1.writeU64(Original.corruptRunCount());
  V1.writeU64(1); // one overflow site
  V1.writeU32(0xabc);
  V1.writeU32(12); // MaxPad
  V1.writeU32(6);  // Observed (runs with I % 3 != 0)
  V1.writeU64(9);
  for (unsigned I = 0; I < 9; ++I) {
    V1.writeF64(0.25);
    V1.writeU8(I % 3 != 0 ? 1 : 0);
  }
  V1.writeU64(1); // one dangling pair
  V1.writeU64((uint64_t(0x123) << 32) | 0x456);
  V1.writeU64(58); // MaxFreeToFailure
  V1.writeU32(9);
  V1.writeU64(9);
  for (unsigned I = 0; I < 9; ++I) {
    V1.writeF64(0.4);
    V1.writeU8(1);
  }

  CumulativeIsolator FromV1;
  ASSERT_TRUE(FromV1.deserialize(V1.buffer()));
  // Replayed v1 state serializes to the identical v2 bytes — same
  // trials, same running sums.
  EXPECT_EQ(FromV1.serialize(), Original.serialize());
}

TEST(CumulativeIsolator, TotalSitesHintRaisesThreshold) {
  // The same evidence flags with a small N but not with a huge one.
  RunSummary Summary;
  Summary.CorruptionObserved = true;
  Summary.OverflowTrials.push_back(OverflowTrial{0xaaaa, 0.5, true, 4});

  CumulativeConfig SmallN;
  SmallN.TotalSitesHint = 2;
  CumulativeIsolator Small(SmallN);
  CumulativeConfig HugeN;
  HugeN.TotalSitesHint = 1000000000;
  CumulativeIsolator Huge(HugeN);
  for (int I = 0; I < 8; ++I) {
    Small.addRun(Summary);
    Huge.addRun(Summary);
  }
  EXPECT_FALSE(Small.classifyOverflows().empty());
  EXPECT_TRUE(Huge.classifyOverflows().empty());
}

TEST(BayesAccumulator, BitIdenticalToBatchRecompute) {
  // The incremental accumulator (what the patch server classifies with
  // after every ingested summary) must produce exactly the batch
  // statics' factor — same additions in the same order, no tolerance.
  std::vector<BayesTrial> Trials;
  BayesAccumulator Accum;
  for (unsigned I = 0; I < 200; ++I) {
    BayesTrial Trial;
    Trial.Probability = (I % 97 + 1) / 100.0;
    Trial.Observed = (I * 2654435761u) % 3 != 0;
    Trials.push_back(Trial);
    Accum.addTrial(Trial);

    EXPECT_EQ(Accum.trialCount(), Trials.size());
    EXPECT_EQ(Accum.logLikelihoodH0(),
              BayesClassifier::logLikelihoodH0(Trials));
    EXPECT_EQ(Accum.logLikelihoodH1(),
              BayesClassifier::logLikelihoodH1(Trials));
    EXPECT_EQ(Accum.logBayesFactor(),
              BayesClassifier::logBayesFactor(Trials))
        << "diverged after trial " << I;
  }
}

TEST(CumulativeIsolator, DeserializedStateClassifiesIdentically) {
  // Round-tripping accumulated state must rebuild the incremental
  // classifier too: findings before and after are identical.
  CumulativeIsolator Original;
  RunSummary Summary;
  Summary.Failed = true;
  Summary.CorruptionObserved = true;
  for (unsigned I = 0; I < 12; ++I) {
    Summary.OverflowTrials = {{0xabc, 0.2, true, 16},
                              {0xdef, 0.5, I % 2 == 0, 8}};
    Summary.DanglingTrials = {{0x123, 0x456, 0.4, true, 100 + I}};
    Original.addRun(Summary);
  }

  CumulativeIsolator Restored;
  ASSERT_TRUE(Restored.deserialize(Original.serialize()));

  const auto OriginalOverflows = Original.classifyOverflows();
  const auto RestoredOverflows = Restored.classifyOverflows();
  ASSERT_EQ(OriginalOverflows.size(), RestoredOverflows.size());
  for (size_t I = 0; I < OriginalOverflows.size(); ++I) {
    EXPECT_EQ(OriginalOverflows[I].AllocSite,
              RestoredOverflows[I].AllocSite);
    EXPECT_EQ(OriginalOverflows[I].LogBayesFactor,
              RestoredOverflows[I].LogBayesFactor);
  }
  const auto OriginalDanglings = Original.classifyDanglings();
  const auto RestoredDanglings = Restored.classifyDanglings();
  ASSERT_EQ(OriginalDanglings.size(), RestoredDanglings.size());
  for (size_t I = 0; I < OriginalDanglings.size(); ++I) {
    EXPECT_EQ(OriginalDanglings[I].LogBayesFactor,
              RestoredDanglings[I].LogBayesFactor);
    EXPECT_EQ(OriginalDanglings[I].DeferralTicks,
              RestoredDanglings[I].DeferralTicks);
  }
}

//===- tests/codec_test.cpp - Codec layer tests ---------------------------===//
//
// Covers the PR 10 codec layer: the LZ block codec and its envelope
// (round trips, incompressibility, and the adversarial-input taxonomy —
// declared-size bombs, truncation sweeps, corrupt back-references), the
// codec-wrapped stream stages, and the delta-encoded image bundles with
// the bundle-ratio pin on replicated espresso dumps.
//
//===----------------------------------------------------------------------===//

#include "codec/BlockCodec.h"
#include "codec/CodecStream.h"
#include "codec/DeltaCodec.h"

#include "TestHelpers.h"
#include "heapimage/HeapImageIO.h"
#include "heapimage/ImageBundle.h"
#include "support/Serializer.h"
#include "workload/EspressoWorkload.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {

/// Compressible bytes: varint-ish structured data with heavy repeats,
/// the shape of real evidence streams.
std::vector<uint8_t> structuredBytes(size_t Size) {
  std::vector<uint8_t> Out;
  Out.reserve(Size);
  uint32_t Site = 0x1000;
  while (Out.size() < Size) {
    for (int I = 0; I < 16 && Out.size() < Size; ++I)
      Out.push_back(static_cast<uint8_t>((Site >> (I % 4) * 8) & 0xff));
    Out.push_back(0x00);
    Out.push_back(0xfe);
    Site += (Out.size() % 7 == 0) ? 8 : 0;
  }
  return Out;
}

/// Incompressible bytes: a seeded uniform byte stream.
std::vector<uint8_t> randomBytes(size_t Size, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::vector<uint8_t> Out(Size);
  for (uint8_t &B : Out)
    B = static_cast<uint8_t>(Rng());
  return Out;
}

/// End-of-run images of the espresso workload under distinct heap seeds
/// — the replicated dumps §4 isolation actually ships.
std::vector<HeapImage> espressoDumps(unsigned Count) {
  EspressoWorkload Work;
  ExterminatorConfig Config;
  std::vector<HeapImage> Images;
  for (unsigned I = 0; I < Count; ++I)
    Images.push_back(
        runWorkloadOnce(Work, /*InputSeed=*/5, /*HeapSeed=*/11 + I * 7919,
                        Config, PatchSet())
            .FinalImage);
  return Images;
}

} // namespace

//===----------------------------------------------------------------------===//
// LZ block codec
//===----------------------------------------------------------------------===//

TEST(BlockCodec, RoundTripsStructuredData) {
  const std::vector<uint8_t> Raw = structuredBytes(64 * 1024);
  std::vector<uint8_t> Comp;
  const size_t CompSize = lzCompress(Raw.data(), Raw.size(), Comp);
  ASSERT_GT(CompSize, 0u);
  ASSERT_LT(CompSize, Raw.size());

  std::vector<uint8_t> Back(Raw.size());
  ASSERT_TRUE(lzDecompress(Comp.data(), CompSize, Back.data(), Back.size()));
  EXPECT_EQ(Back, Raw);
}

TEST(BlockCodec, RoundTripsAcrossSizes) {
  // Sweep sizes around token/extension boundaries, including ones that
  // end mid-sequence and ones larger than the 64 KiB window.
  for (size_t Size : {size_t(5), size_t(64), size_t(255), size_t(256),
                      size_t(4096), size_t(70000), size_t(200000)}) {
    const std::vector<uint8_t> Raw = structuredBytes(Size);
    std::vector<uint8_t> Comp;
    const size_t CompSize = lzCompress(Raw.data(), Raw.size(), Comp);
    if (CompSize == 0)
      continue; // too small to bother; the envelope stores raw
    ASSERT_LE(CompSize, lzMaxCompressedSize(Raw.size()));
    std::vector<uint8_t> Back(Raw.size());
    ASSERT_TRUE(
        lzDecompress(Comp.data(), CompSize, Back.data(), Back.size()))
        << "size " << Size;
    EXPECT_EQ(Back, Raw) << "size " << Size;
  }
}

TEST(BlockCodec, RandomBytesAreIncompressible) {
  const std::vector<uint8_t> Raw = randomBytes(32 * 1024, 42);
  std::vector<uint8_t> Comp;
  EXPECT_EQ(lzCompress(Raw.data(), Raw.size(), Comp), 0u);
}

TEST(BlockCodec, DecompressRejectsTruncationSweep) {
  const std::vector<uint8_t> Raw = structuredBytes(8 * 1024);
  std::vector<uint8_t> Comp;
  const size_t CompSize = lzCompress(Raw.data(), Raw.size(), Comp);
  ASSERT_GT(CompSize, 0u);
  std::vector<uint8_t> Out(Raw.size());
  for (size_t Cut = 0; Cut < CompSize; ++Cut)
    EXPECT_FALSE(lzDecompress(Comp.data(), Cut, Out.data(), Out.size()))
        << "accepted truncation at " << Cut;
}

TEST(BlockCodec, DecompressRejectsCorruptBackReferences) {
  // Flip every byte in turn: offsets pointing before the output start,
  // lengths running past the declared size, or streams ending early must
  // all fail — and none may crash or write outside Out.
  const std::vector<uint8_t> Raw = structuredBytes(4 * 1024);
  std::vector<uint8_t> Comp;
  const size_t CompSize = lzCompress(Raw.data(), Raw.size(), Comp);
  ASSERT_GT(CompSize, 0u);
  Comp.resize(CompSize);
  std::vector<uint8_t> Out(Raw.size());
  size_t Rejections = 0;
  for (size_t I = 0; I < Comp.size(); ++I) {
    std::vector<uint8_t> Mutated = Comp;
    Mutated[I] ^= 0xff;
    if (!lzDecompress(Mutated.data(), Mutated.size(), Out.data(),
                      Out.size()))
      ++Rejections;
  }
  // A large share of single-byte corruptions must be caught (flips
  // inside literal bytes legitimately decode to different-but-valid
  // output, so it can never be all of them).
  EXPECT_GT(Rejections, Comp.size() / 3);
}

//===----------------------------------------------------------------------===//
// Envelope (encodeCodecBlock / decodeCodecBlock)
//===----------------------------------------------------------------------===//

TEST(CodecEnvelope, RoundTripsCompressibleAndIncompressible) {
  for (const std::vector<uint8_t> &Raw :
       {structuredBytes(16 * 1024), randomBytes(16 * 1024, 7),
        std::vector<uint8_t>{}, std::vector<uint8_t>{0x42}}) {
    const std::vector<uint8_t> Envelope = encodeCodecBlock(Raw);
    std::vector<uint8_t> Back;
    ASSERT_TRUE(decodeCodecBlock(Envelope, Back, 1u << 20));
    EXPECT_EQ(Back, Raw);
  }
}

TEST(CodecEnvelope, CompressibleDataShrinks) {
  const std::vector<uint8_t> Raw = structuredBytes(64 * 1024);
  EXPECT_LT(encodeCodecBlock(Raw).size(), Raw.size());
}

TEST(CodecEnvelope, RejectsDeclaredSizeBomb) {
  // A forged envelope declaring more than the caller's budget must fail
  // before any allocation is sized from the declaration.
  ByteWriter Forged;
  Forged.writeU8(static_cast<uint8_t>(CodecId::Lz));
  Forged.writeVarU64(uint64_t(1) << 40); // a terabyte, declared
  Forged.writeU8(0x00);                  // token bytes, irrelevant
  const uint64_t RejectedBefore = codecStats().RejectedBlocks;
  std::vector<uint8_t> Out;
  EXPECT_FALSE(decodeCodecBlock(Forged.buffer(), Out, 1u << 20));
  EXPECT_GT(codecStats().RejectedBlocks, RejectedBefore);

  // Same declaration under Raw id: body shorter than declared, reject.
  ByteWriter ForgedRaw;
  ForgedRaw.writeU8(static_cast<uint8_t>(CodecId::Raw));
  ForgedRaw.writeVarU64(uint64_t(1) << 40);
  EXPECT_FALSE(decodeCodecBlock(ForgedRaw.buffer(), Out, 1u << 20));
}

TEST(CodecEnvelope, RejectsUnknownCodecId) {
  ByteWriter Forged;
  Forged.writeU8(0x7f);
  Forged.writeVarU64(16);
  std::vector<uint8_t> Out;
  EXPECT_FALSE(decodeCodecBlock(Forged.buffer(), Out, 1u << 20));
}

TEST(CodecEnvelope, RejectsTruncationSweep) {
  const std::vector<uint8_t> Envelope =
      encodeCodecBlock(structuredBytes(8 * 1024));
  std::vector<uint8_t> Out;
  for (size_t Cut = 0; Cut < Envelope.size(); ++Cut) {
    std::vector<uint8_t> Truncated(Envelope.begin(), Envelope.begin() + Cut);
    EXPECT_FALSE(decodeCodecBlock(Truncated, Out, 1u << 20))
        << "accepted truncation at " << Cut;
  }
}

TEST(CodecEnvelope, StatsCountCompressionTraffic) {
  const CodecStatsSnapshot Before = codecStats();
  const std::vector<uint8_t> Raw = structuredBytes(32 * 1024);
  const std::vector<uint8_t> Envelope = encodeCodecBlock(Raw);
  std::vector<uint8_t> Back;
  ASSERT_TRUE(decodeCodecBlock(Envelope, Back, 1u << 20));
  const CodecStatsSnapshot After = codecStats();
  EXPECT_GT(After.CompressCalls, Before.CompressCalls);
  EXPECT_GE(After.CompressInBytes - Before.CompressInBytes, Raw.size());
  EXPECT_GT(After.DecompressCalls, Before.DecompressCalls);
  EXPECT_GE(After.DecompressOutBytes - Before.DecompressOutBytes, Raw.size());
}

//===----------------------------------------------------------------------===//
// Codec stream stages
//===----------------------------------------------------------------------===//

TEST(CodecStream, RoundTripsMultiBlockStream) {
  // Larger than CodecStreamBlockCap so the stream carries several
  // blocks, written in awkward chunk sizes.
  const std::vector<uint8_t> Raw = structuredBytes(3 * CodecStreamBlockCap / 2);
  std::vector<uint8_t> Stream;
  {
    VectorSink Sink(Stream);
    CompressingSink Compressor(Sink);
    size_t Offset = 0, Chunk = 1;
    while (Offset < Raw.size()) {
      const size_t N = std::min(Chunk, Raw.size() - Offset);
      ASSERT_TRUE(Compressor.write(Raw.data() + Offset, N));
      Offset += N;
      Chunk = Chunk * 3 + 1;
    }
    ASSERT_TRUE(Compressor.finish());
  }
  ASSERT_LT(Stream.size(), Raw.size());

  MemorySource Source(Stream);
  DecompressingSource Decompressor(Source);
  std::vector<uint8_t> Back(Raw.size());
  size_t Got = 0;
  while (Got < Back.size()) {
    const size_t N = Decompressor.read(Back.data() + Got, 4096);
    if (N == 0)
      break;
    Got += N;
  }
  ASSERT_EQ(Got, Raw.size());
  EXPECT_EQ(Back, Raw);
  EXPECT_TRUE(Decompressor.finished());
  EXPECT_EQ(Decompressor.read(Back.data(), 1), 0u); // terminator consumed
}

TEST(CodecStream, RejectsTruncationEverywhere) {
  const std::vector<uint8_t> Raw = structuredBytes(CodecStreamBlockCap + 100);
  std::vector<uint8_t> Stream;
  {
    VectorSink Sink(Stream);
    CompressingSink Compressor(Sink);
    ASSERT_TRUE(Compressor.write(Raw.data(), Raw.size()));
    ASSERT_TRUE(Compressor.finish());
  }
  // Every proper prefix must end in failed() or a short stream — never a
  // clean finish with wrong bytes, never a crash.
  for (size_t Cut = 0; Cut < Stream.size(); Cut += 997) {
    MemorySource Source(Stream.data(), Cut);
    DecompressingSource Decompressor(Source);
    std::vector<uint8_t> Back(Raw.size());
    size_t Got = 0;
    for (;;) {
      const size_t N = Decompressor.read(Back.data() + Got,
                                         std::min<size_t>(4096, Raw.size() - Got));
      if (N == 0)
        break;
      Got += N;
      if (Got == Raw.size())
        break;
    }
    EXPECT_TRUE(Decompressor.failed() || Got < Raw.size() ||
                !Decompressor.finished())
        << "clean decode from truncation at " << Cut;
  }
}

TEST(CodecStream, RejectsOversizedDeclaredBlock) {
  // A stream whose first block declares more raw bytes than the cap
  // must fail before allocating that much.
  std::vector<uint8_t> Stream;
  {
    VectorSink Sink(Stream);
    StreamWriter Writer(Sink);
    Writer.writeVarU64(uint64_t(CodecStreamBlockCap) * 16); // bomb
    Writer.writeVarU64(0);                                  // "stored"
  }
  MemorySource Source(Stream);
  DecompressingSource Decompressor(Source);
  uint8_t Byte;
  EXPECT_EQ(Decompressor.read(&Byte, 1), 0u);
  EXPECT_TRUE(Decompressor.failed());
}

//===----------------------------------------------------------------------===//
// Delta-encoded bundles (format v2)
//===----------------------------------------------------------------------===//

TEST(DeltaBundle, RoundTripIsLosslessOnReplicatedDumps) {
  const std::vector<HeapImage> Images = espressoDumps(3);
  const std::vector<uint8_t> Bytes =
      serializeImageBundle(Images, ImageBundleFormatV2);
  std::vector<HeapImage> Decoded;
  ASSERT_TRUE(deserializeImageBundle(Bytes, Decoded));
  ASSERT_EQ(Decoded.size(), Images.size());
  for (size_t I = 0; I < Images.size(); ++I)
    EXPECT_TRUE(Decoded[I] == Images[I]) << "image " << I;
}

TEST(DeltaBundle, RatioAtMostHalfOnReplicatedEspressoDumps) {
  // The acceptance pin: bundle.ratio (delta bundle bytes over the same
  // images shipped as independent v2 files) must be at most 0.5 — the
  // delta codec has to at least halve replicated evidence, where the
  // pre-codec dictionary-only bundle managed 0.997.
  const std::vector<HeapImage> Images = espressoDumps(3);
  size_t IndependentBytes = 0;
  for (const HeapImage &Image : Images)
    IndependentBytes += serializeHeapImage(Image).size();
  const size_t DeltaBytes =
      serializeImageBundle(Images, ImageBundleFormatV2).size();
  const double Ratio =
      static_cast<double>(DeltaBytes) / static_cast<double>(IndependentBytes);
  EXPECT_LE(Ratio, 0.5) << "delta " << DeltaBytes << " B vs independent "
                        << IndependentBytes << " B";

  // And v2 must beat the v1 dictionary-only bundle outright.
  EXPECT_LT(DeltaBytes,
            serializeImageBundle(Images, ImageBundleFormatV1).size());
}

TEST(DeltaBundle, V1StillDecodesAndMatchesV2) {
  const std::vector<HeapImage> Images = espressoDumps(2);
  std::vector<HeapImage> FromV1, FromV2;
  ASSERT_TRUE(deserializeImageBundle(
      serializeImageBundle(Images, ImageBundleFormatV1), FromV1));
  ASSERT_TRUE(deserializeImageBundle(
      serializeImageBundle(Images, ImageBundleFormatV2), FromV2));
  ASSERT_EQ(FromV1.size(), FromV2.size());
  for (size_t I = 0; I < FromV1.size(); ++I)
    EXPECT_TRUE(FromV1[I] == FromV2[I]) << "image " << I;
}

TEST(DeltaBundle, TruncationSweepNeverDecodes) {
  const std::vector<uint8_t> Bytes =
      serializeImageBundle(espressoDumps(2), ImageBundleFormatV2);
  std::vector<HeapImage> Decoded;
  for (size_t Cut = 0; Cut < Bytes.size(); Cut += 509) {
    std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(deserializeImageBundle(Truncated, Decoded))
        << "accepted truncation at " << Cut;
  }
}

TEST(DeltaBundle, CorruptBackReferencesRejectedNotWild) {
  // Byte-flip sweep over a delta bundle: corrupt object-id references
  // must decode as errors (unknown id, size mismatch) or as valid
  // alternate bundles — never crash, hang, or blow the slot budget.
  const std::vector<uint8_t> Bytes =
      serializeImageBundle(espressoDumps(2), ImageBundleFormatV2);
  size_t Rejections = 0;
  for (size_t I = 0; I < Bytes.size(); I += 131) {
    std::vector<uint8_t> Mutated = Bytes;
    Mutated[I] ^= 0xff;
    std::vector<HeapImage> Decoded;
    uint64_t Budget = MaxWireSlots;
    if (!deserializeImageBundle(Mutated, Decoded, Budget))
      ++Rejections;
  }
  EXPECT_GT(Rejections, 0u);
}

TEST(DeltaBundle, FirstImageMayNotCarryReferences) {
  // The first image has no base; a reference tag there is a forgery.
  // Splice a SlotRefFullTag into the first image's first slot record by
  // re-encoding a single-image bundle and corrupting the tag space —
  // readDeltaImageBody must reject references against a null base.
  const std::vector<HeapImage> One = espressoDumps(1);
  std::vector<uint8_t> Bytes = serializeImageBundle(One, ImageBundleFormatV2);
  // Brute-force: flipping any byte to the full-reference tag must never
  // produce an out-of-bounds copy; most positions must fail cleanly.
  size_t Failures = 0, Trials = 0;
  for (size_t I = 16; I < Bytes.size(); I += 211) {
    std::vector<uint8_t> Mutated = Bytes;
    Mutated[I] = SlotRefFullTag;
    std::vector<HeapImage> Decoded;
    ++Trials;
    if (!deserializeImageBundle(Mutated, Decoded))
      ++Failures;
  }
  EXPECT_GT(Failures, Trials / 2);
}

//===----------------------------------------------------------------------===//
// Compressed bundle file container ("XIC1")
//===----------------------------------------------------------------------===//

TEST(BundleContainer, SaveLoadRoundTripsAndShrinks) {
  const std::vector<HeapImage> Images = espressoDumps(3);
  const std::string Path = ::testing::TempDir() + "/codec_bundle.xib";
  ASSERT_TRUE(saveImageBundle(Images, Path));

  std::vector<uint8_t> FileBytes;
  ASSERT_TRUE(readFileBytes(Path, FileBytes));
  // On-disk container must be smaller than the raw v1 bundle stream —
  // the codec working end to end.
  EXPECT_LT(FileBytes.size(),
            serializeImageBundle(Images, ImageBundleFormatV1).size());

  std::vector<HeapImage> Back;
  ASSERT_TRUE(loadImageBundle(Path, Back));
  ASSERT_EQ(Back.size(), Images.size());
  for (size_t I = 0; I < Images.size(); ++I)
    EXPECT_TRUE(Back[I] == Images[I]) << "image " << I;
  std::remove(Path.c_str());
}

TEST(BundleContainer, BareBundleFilesStillLoad) {
  // Pre-container files (a raw "XIB1" stream on disk) must keep loading.
  const std::vector<HeapImage> Images = espressoDumps(2);
  const std::string Path = ::testing::TempDir() + "/codec_bare.xib";
  ASSERT_TRUE(writeFileBytes(
      Path, serializeImageBundle(Images, ImageBundleFormatV1)));
  std::vector<HeapImage> Back;
  ASSERT_TRUE(loadImageBundle(Path, Back));
  ASSERT_EQ(Back.size(), Images.size());
  std::remove(Path.c_str());
}

//===- tests/support_test.cpp - Support substrate tests ---------------------===//

#include "support/Bitmap.h"
#include "support/FlatU64Map.h"
#include "support/MpscQueue.h"
#include "support/PageTable.h"
#include "support/RandomGenerator.h"
#include "support/Executor.h"
#include "support/Serializer.h"
#include "support/SiteHash.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

using namespace exterminator;

//===----------------------------------------------------------------------===//
// RandomGenerator
//===----------------------------------------------------------------------===//

TEST(RandomGenerator, SameSeedSameStream) {
  RandomGenerator A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomGenerator, DifferentSeedsDifferentStreams) {
  RandomGenerator A(1), B(2);
  unsigned Matches = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Matches;
  EXPECT_EQ(Matches, 0u);
}

TEST(RandomGenerator, ReseedResetsStream) {
  RandomGenerator A(7);
  const uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RandomGenerator, NextBelowStaysInRange) {
  RandomGenerator Rng(3);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(RandomGenerator, NextBelowOneIsZero) {
  RandomGenerator Rng(5);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Rng.nextBelow(1), 0u);
}

TEST(RandomGenerator, NextBelowIsRoughlyUniform) {
  RandomGenerator Rng(11);
  constexpr uint64_t Buckets = 8;
  constexpr int Draws = 80000;
  int Counts[Buckets] = {};
  for (int I = 0; I < Draws; ++I)
    ++Counts[Rng.nextBelow(Buckets)];
  for (uint64_t B = 0; B < Buckets; ++B) {
    // Each bucket expects 10000; allow 5% deviation.
    EXPECT_NEAR(Counts[B], Draws / Buckets, Draws / Buckets * 0.05);
  }
}

TEST(RandomGenerator, NextDoubleInUnitInterval) {
  RandomGenerator Rng(13);
  for (int I = 0; I < 1000; ++I) {
    const double X = Rng.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(RandomGenerator, ChanceExtremes) {
  RandomGenerator Rng(17);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.chance(0.0));
    EXPECT_TRUE(Rng.chance(1.0));
  }
}

TEST(RandomGenerator, ChanceMatchesProbability) {
  RandomGenerator Rng(19);
  int Heads = 0;
  constexpr int Draws = 40000;
  for (int I = 0; I < Draws; ++I)
    if (Rng.chance(0.25))
      ++Heads;
  EXPECT_NEAR(Heads, Draws * 0.25, Draws * 0.02);
}

TEST(RandomGenerator, ForkProducesIndependentStream) {
  RandomGenerator A(23);
  RandomGenerator Child = A.fork();
  unsigned Matches = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == Child.next())
      ++Matches;
  EXPECT_EQ(Matches, 0u);
}

TEST(RandomGenerator, SplitMix64KnownSequenceIsDeterministic) {
  uint64_t S1 = 0, S2 = 0;
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(splitMix64(S1), splitMix64(S2));
}

//===----------------------------------------------------------------------===//
// Bitmap
//===----------------------------------------------------------------------===//

TEST(Bitmap, StartsEmpty) {
  Bitmap Map(100);
  EXPECT_EQ(Map.size(), 100u);
  EXPECT_EQ(Map.count(), 0u);
  for (size_t I = 0; I < 100; ++I)
    EXPECT_FALSE(Map.test(I));
}

TEST(Bitmap, SetAndTest) {
  Bitmap Map(70);
  EXPECT_TRUE(Map.set(0));
  EXPECT_TRUE(Map.set(63));
  EXPECT_TRUE(Map.set(64));
  EXPECT_TRUE(Map.set(69));
  EXPECT_TRUE(Map.test(0));
  EXPECT_TRUE(Map.test(63));
  EXPECT_TRUE(Map.test(64));
  EXPECT_TRUE(Map.test(69));
  EXPECT_FALSE(Map.test(1));
  EXPECT_EQ(Map.count(), 4u);
}

TEST(Bitmap, DoubleSetReturnsFalse) {
  Bitmap Map(10);
  EXPECT_TRUE(Map.set(5));
  // A bit can only be set once — this is what makes double frees benign.
  EXPECT_FALSE(Map.set(5));
  EXPECT_EQ(Map.count(), 1u);
}

TEST(Bitmap, DoubleResetReturnsFalse) {
  Bitmap Map(10);
  Map.set(5);
  EXPECT_TRUE(Map.reset(5));
  EXPECT_FALSE(Map.reset(5));
  EXPECT_EQ(Map.count(), 0u);
}

TEST(Bitmap, ClearResetsEverything) {
  Bitmap Map(100);
  for (size_t I = 0; I < 100; I += 3)
    Map.set(I);
  Map.clear();
  EXPECT_EQ(Map.count(), 0u);
  for (size_t I = 0; I < 100; ++I)
    EXPECT_FALSE(Map.test(I));
}

TEST(Bitmap, ProbeClearFindsOnlyClearBits) {
  Bitmap Map(64);
  for (size_t I = 0; I < 64; ++I)
    if (I != 17 && I != 42)
      Map.set(I);
  RandomGenerator Rng(1);
  std::set<size_t> Found;
  for (int I = 0; I < 100; ++I) {
    auto Bit = Map.probeClear(Rng);
    ASSERT_TRUE(Bit.has_value());
    EXPECT_TRUE(*Bit == 17 || *Bit == 42);
    Found.insert(*Bit);
  }
  // Both free bits should be reachable by random probing.
  EXPECT_EQ(Found.size(), 2u);
}

TEST(Bitmap, ProbeClearOnFullMapFails) {
  Bitmap Map(8);
  for (size_t I = 0; I < 8; ++I)
    Map.set(I);
  RandomGenerator Rng(1);
  EXPECT_FALSE(Map.probeClear(Rng).has_value());
}

TEST(Bitmap, ProbeClearOnEmptySizeFails) {
  Bitmap Map;
  RandomGenerator Rng(1);
  EXPECT_FALSE(Map.probeClear(Rng).has_value());
}

TEST(Bitmap, ProbeClearIsUniform) {
  // At half occupancy, every free bit should be hit roughly equally —
  // the uniformity DieHard's probabilistic guarantees build on.
  Bitmap Map(32);
  for (size_t I = 0; I < 32; I += 2)
    Map.set(I);
  RandomGenerator Rng(99);
  int Counts[32] = {};
  constexpr int Draws = 32000;
  for (int I = 0; I < Draws; ++I)
    ++Counts[*Map.probeClear(Rng)];
  for (size_t I = 1; I < 32; I += 2)
    EXPECT_NEAR(Counts[I], Draws / 16, Draws / 16 * 0.1);
}

TEST(Bitmap, ProbeClearPartialLastWord) {
  // 70 bits: the last word holds only 6 valid bits.  Set every bit but
  // the final one; probing must find exactly bit 69 and never a
  // past-the-end bit of the partial word.
  Bitmap Map(70);
  for (size_t I = 0; I < 69; ++I)
    Map.set(I);
  RandomGenerator Rng(5);
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(Map.probeClear(Rng), std::optional<size_t>(69));
}

TEST(Bitmap, ProbeClearDenseFallbackStaysUniform) {
  // One clear bit in 4096: rejection probes nearly always miss, forcing
  // the rank-select fallback, which must still return only clear bits.
  Bitmap Map(4096);
  for (size_t I = 0; I < 4096; ++I)
    if (I != 1234 && I != 4000)
      Map.set(I);
  RandomGenerator Rng(7);
  std::set<size_t> Found;
  for (int I = 0; I < 300; ++I) {
    auto Bit = Map.probeClear(Rng);
    ASSERT_TRUE(Bit.has_value());
    EXPECT_TRUE(*Bit == 1234 || *Bit == 4000);
    Found.insert(*Bit);
  }
  EXPECT_EQ(Found.size(), 2u);
}

TEST(Bitmap, SelectClearRanks) {
  Bitmap Map(130);
  // Clear bits: everything except 0..9 and 127.
  for (size_t I = 0; I < 10; ++I)
    Map.set(I);
  Map.set(127);
  EXPECT_EQ(Map.clearCount(), 119u);
  EXPECT_EQ(Map.selectClear(0), std::optional<size_t>(10));
  EXPECT_EQ(Map.selectClear(1), std::optional<size_t>(11));
  // Rank of the last clear bit (129): clear bits below it are
  // 10..126 (117 of them) and 128, so rank 118.
  EXPECT_EQ(Map.selectClear(117), std::optional<size_t>(128));
  EXPECT_EQ(Map.selectClear(118), std::optional<size_t>(129));
  EXPECT_EQ(Map.selectClear(119), std::nullopt);
}

TEST(Bitmap, SelectClearFullMap) {
  Bitmap Map(64);
  for (size_t I = 0; I < 64; ++I)
    Map.set(I);
  EXPECT_EQ(Map.selectClear(0), std::nullopt);
}

TEST(Bitmap, SelectClearLastWordPartial) {
  // Clear bits only in the partial tail word.
  Bitmap Map(67);
  for (size_t I = 0; I < 65; ++I)
    Map.set(I);
  EXPECT_EQ(Map.selectClear(0), std::optional<size_t>(65));
  EXPECT_EQ(Map.selectClear(1), std::optional<size_t>(66));
  EXPECT_EQ(Map.selectClear(2), std::nullopt);
}

TEST(Bitmap, FindNextSet) {
  Bitmap Map(130);
  Map.set(3);
  Map.set(64);
  Map.set(129);
  EXPECT_EQ(Map.findNextSet(0), std::optional<size_t>(3));
  EXPECT_EQ(Map.findNextSet(4), std::optional<size_t>(64));
  EXPECT_EQ(Map.findNextSet(65), std::optional<size_t>(129));
  EXPECT_EQ(Map.findNextSet(130), std::nullopt);
}

TEST(Bitmap, FindNextSetOnEmptyMap) {
  Bitmap Map(64);
  EXPECT_EQ(Map.findNextSet(0), std::nullopt);
}

//===----------------------------------------------------------------------===//
// PageTable
//===----------------------------------------------------------------------===//

TEST(PageTable, LookupMissesOnEmptyTable) {
  PageTable Table;
  EXPECT_EQ(Table.lookup(12345), PageTable::NotFound);
  EXPECT_EQ(Table.lookup(0), PageTable::NotFound); // null page sentinel
}

TEST(PageTable, InsertAndLookup) {
  PageTable Table;
  auto [Value, Inserted] = Table.emplace(7, 42);
  EXPECT_TRUE(Inserted);
  EXPECT_EQ(Value, 42u);
  EXPECT_EQ(Table.lookup(7), 42u);
  EXPECT_EQ(Table.lookup(8), PageTable::NotFound);
}

TEST(PageTable, EmplaceReturnsExistingMapping) {
  PageTable Table;
  Table.emplace(7, 1);
  auto [Value, Inserted] = Table.emplace(7, 2);
  EXPECT_FALSE(Inserted);
  EXPECT_EQ(Value, 1u);
  // overwrite replaces the stored value (how the heap marks a page
  // ambiguous).
  Table.overwrite(7, 99);
  EXPECT_EQ(Table.lookup(7), 99u);
}

TEST(PageTable, SurvivesGrowth) {
  PageTable Table;
  // Far past the initial capacity, with both consecutive pages (the heap
  // registration pattern) and scattered ones.
  for (uintptr_t Page = 1; Page <= 5000; ++Page)
    Table.emplace(Page, static_cast<uint32_t>(Page * 3));
  EXPECT_EQ(Table.size(), 5000u);
  for (uintptr_t Page = 1; Page <= 5000; ++Page)
    ASSERT_EQ(Table.lookup(Page), static_cast<uint32_t>(Page * 3));
  EXPECT_EQ(Table.lookup(5001), PageTable::NotFound);
}

TEST(PageTable, ConcurrentLookupDuringGrowth) {
  // One writer inserts pages 1..N — crossing several epoch
  // republications — while readers continuously look up pages already
  // published through an acquire-released watermark.  Readers must
  // always hit with the right value: retired tables stay readable, and
  // entries publish value-before-key.  (The TSan CI job runs this under
  // the race detector.)
  PageTable Table;
  constexpr uintptr_t N = 40000;
  std::atomic<uintptr_t> Watermark{0};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Mismatches{0};

  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R)
    Readers.emplace_back([&, R] {
      RandomGenerator Rng(0xbeef + R);
      // Keep reading for a floor of lookups even after the writer stops:
      // on a single-core host the writer can finish before a reader's
      // first timeslice, and the post-stop lookups still validate every
      // epoch's data.
      for (uint64_t Hits = 0;
           !Stop.load(std::memory_order_acquire) || Hits < 20000; ++Hits) {
        const uintptr_t High = Watermark.load(std::memory_order_acquire);
        if (High == 0)
          continue;
        const uintptr_t Page = 1 + Rng.nextBelow(High);
        if (Table.lookup(Page) != static_cast<uint32_t>(Page * 7))
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (uintptr_t Page = 1; Page <= N; ++Page) {
    Table.emplace(Page, static_cast<uint32_t>(Page * 7));
    Watermark.store(Page, std::memory_order_release);
    // Give timesliced readers a chance to interleave with growth.
    if ((Page & 4095) == 0)
      std::this_thread::yield();
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &Reader : Readers)
    Reader.join();

  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(Table.size(), N);
  for (uintptr_t Page = 1; Page <= N; ++Page)
    ASSERT_EQ(Table.lookup(Page), static_cast<uint32_t>(Page * 7));
}

//===----------------------------------------------------------------------===//
// MpscQueue
//===----------------------------------------------------------------------===//

namespace {

struct QueueTestNode {
  MpscNode Link; // first member: node pointer == payload pointer
  unsigned Producer = 0;
  uint64_t Sequence = 0;
};

} // namespace

TEST(MpscQueue, DrainOnEmptyReturnsNull) {
  MpscQueue Queue;
  EXPECT_TRUE(Queue.empty());
  EXPECT_EQ(Queue.drainAll(), nullptr);
  // Still usable after an empty drain.
  QueueTestNode Node;
  Queue.push(&Node.Link);
  EXPECT_FALSE(Queue.empty());
  EXPECT_EQ(Queue.drainAll(), &Node.Link);
  EXPECT_TRUE(Queue.empty());
  EXPECT_EQ(Queue.drainAll(), nullptr);
}

TEST(MpscQueue, SingleProducerDrainsInFifoOrder) {
  MpscQueue Queue;
  QueueTestNode Nodes[16];
  for (uint64_t I = 0; I < 16; ++I) {
    Nodes[I].Sequence = I;
    Queue.push(&Nodes[I].Link);
  }
  uint64_t Expected = 0;
  for (MpscNode *Node = Queue.drainAll(); Node; Node = Node->Next) {
    const auto *Payload = reinterpret_cast<const QueueTestNode *>(Node);
    EXPECT_EQ(Payload->Sequence, Expected++);
  }
  EXPECT_EQ(Expected, 16u);
}

TEST(MpscQueue, MultiProducerStressKeepsPerProducerFifoAndLosesNothing) {
  // 4 producers push pre-allocated tagged nodes while the consumer
  // drains concurrently until all arrive.  Checks: no node lost or
  // duplicated, and each producer's nodes arrive in push order even
  // though drains interleave with pushes.
  constexpr unsigned Producers = 4;
  constexpr uint64_t PerProducer = 20000;
  MpscQueue Queue;

  std::vector<std::vector<QueueTestNode>> Nodes(Producers);
  for (unsigned P = 0; P < Producers; ++P) {
    Nodes[P].resize(PerProducer);
    for (uint64_t I = 0; I < PerProducer; ++I) {
      Nodes[P][I].Producer = P;
      Nodes[P][I].Sequence = I;
    }
  }

  std::vector<std::thread> Threads;
  for (unsigned P = 0; P < Producers; ++P)
    Threads.emplace_back([&, P] {
      for (uint64_t I = 0; I < PerProducer; ++I)
        Queue.push(&Nodes[P][I].Link);
    });

  uint64_t Received = 0;
  uint64_t NextSequence[Producers] = {};
  uint64_t OrderViolations = 0;
  while (Received < Producers * PerProducer) {
    for (MpscNode *Node = Queue.drainAll(); Node; Node = Node->Next) {
      const auto *Payload = reinterpret_cast<const QueueTestNode *>(Node);
      if (Payload->Sequence != NextSequence[Payload->Producer]++)
        ++OrderViolations;
      ++Received;
    }
  }
  for (std::thread &Producer : Threads)
    Producer.join();

  EXPECT_EQ(OrderViolations, 0u);
  EXPECT_EQ(Received, Producers * PerProducer);
  for (unsigned P = 0; P < Producers; ++P)
    EXPECT_EQ(NextSequence[P], PerProducer);
  EXPECT_EQ(Queue.drainAll(), nullptr);
}

//===----------------------------------------------------------------------===//
// SiteHash
//===----------------------------------------------------------------------===//

TEST(SiteHash, MatchesPaperDJB2Definition) {
  // Figure 3: hash = 5381; hash = ((hash << 5) + hash) + pc[i].
  const uint32_t Pc[SiteHashDepth] = {10, 20, 30, 40, 50};
  uint32_t Expected = 5381;
  for (unsigned I = 0; I < SiteHashDepth; ++I)
    Expected = ((Expected << 5) + Expected) + Pc[I];
  EXPECT_EQ(computeSiteHash(Pc), Expected);
}

TEST(SiteHash, AllZeroFramesHashDeterministically) {
  const uint32_t Pc[SiteHashDepth] = {0, 0, 0, 0, 0};
  EXPECT_EQ(computeSiteHash(Pc), computeSiteHash(Pc));
  EXPECT_NE(computeSiteHash(Pc), 0u);
}

TEST(CallContext, EmptyContextHasStableSite) {
  CallContext Context;
  EXPECT_EQ(Context.currentSite(), Context.currentSite());
}

TEST(CallContext, DifferentFramesDifferentSites) {
  CallContext A, B;
  A.pushFrame(1);
  B.pushFrame(2);
  EXPECT_NE(A.currentSite(), B.currentSite());
}

TEST(CallContext, SiteDependsOnFiveInnermostFrames) {
  CallContext A, B;
  // Frames deeper than SiteHashDepth from the top must not matter.
  A.pushFrame(100);
  for (uint32_t F = 1; F <= SiteHashDepth; ++F) {
    A.pushFrame(F);
    B.pushFrame(F);
  }
  EXPECT_EQ(A.currentSite(), B.currentSite());
}

TEST(CallContext, ScopePushesAndPops) {
  CallContext Context;
  Context.pushFrame(7);
  const SiteId Before = Context.currentSite();
  {
    CallContext::Scope Scope(Context, 8);
    EXPECT_NE(Context.currentSite(), Before);
    EXPECT_EQ(Context.depth(), 2u);
  }
  EXPECT_EQ(Context.currentSite(), Before);
  EXPECT_EQ(Context.depth(), 1u);
}

TEST(CallContext, OrderMatters) {
  CallContext A, B;
  A.pushFrame(1);
  A.pushFrame(2);
  B.pushFrame(2);
  B.pushFrame(1);
  EXPECT_NE(A.currentSite(), B.currentSite());
}

//===----------------------------------------------------------------------===//
// Serializer
//===----------------------------------------------------------------------===//

TEST(Serializer, RoundTripScalars) {
  ByteWriter Writer;
  Writer.writeU8(0xab);
  Writer.writeU32(0xdeadbeef);
  Writer.writeU64(0x0123456789abcdefULL);
  Writer.writeF64(3.14159);

  ByteReader Reader(Writer.buffer());
  EXPECT_EQ(Reader.readU8(), 0xab);
  EXPECT_EQ(Reader.readU32(), 0xdeadbeefu);
  EXPECT_EQ(Reader.readU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(Reader.readF64(), 3.14159);
  EXPECT_TRUE(Reader.atEnd());
  EXPECT_FALSE(Reader.failed());
}

TEST(Serializer, RoundTripBlobAndString) {
  ByteWriter Writer;
  Writer.writeBlob({1, 2, 3, 4, 5});
  Writer.writeString("exterminator");

  ByteReader Reader(Writer.buffer());
  EXPECT_EQ(Reader.readBlob(), (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(Reader.readString(), "exterminator");
  EXPECT_TRUE(Reader.atEnd());
}

TEST(Serializer, EmptyBlobRoundTrips) {
  ByteWriter Writer;
  Writer.writeBlob({});
  ByteReader Reader(Writer.buffer());
  EXPECT_TRUE(Reader.readBlob().empty());
  EXPECT_TRUE(Reader.atEnd());
}

TEST(Serializer, OverReadSetsStickyFailure) {
  ByteWriter Writer;
  Writer.writeU8(1);
  ByteReader Reader(Writer.buffer());
  Reader.readU8();
  EXPECT_EQ(Reader.readU32(), 0u); // past end: zero + failure
  EXPECT_TRUE(Reader.failed());
  EXPECT_EQ(Reader.readU64(), 0u); // failure is sticky
  EXPECT_FALSE(Reader.atEnd());
}

TEST(Serializer, TruncatedBlobFails) {
  ByteWriter Writer;
  Writer.writeU64(1000); // claims 1000 bytes, provides none
  ByteReader Reader(Writer.buffer());
  EXPECT_TRUE(Reader.readBlob().empty());
  EXPECT_TRUE(Reader.failed());
}

TEST(Serializer, FileRoundTrip) {
  const std::string Path = ::testing::TempDir() + "/serializer_test.bin";
  std::vector<uint8_t> Data = {9, 8, 7, 6, 5};
  ASSERT_TRUE(writeFileBytes(Path, Data));
  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFileBytes(Path, Back));
  EXPECT_EQ(Back, Data);
}

TEST(Serializer, ReadMissingFileFails) {
  std::vector<uint8_t> Back;
  EXPECT_FALSE(readFileBytes("/nonexistent/path/nope.bin", Back));
}

TEST(Serializer, WriteFailureDoesNotClobberOrCreate) {
  // Writes go to a temp file and rename over the target; a failure
  // (here: an unwritable directory) must neither create nor disturb
  // anything at the destination path.
  const std::string Path = "/nonexistent/path/nope.bin";
  EXPECT_FALSE(writeFileBytes(Path, {1, 2, 3}));
  std::vector<uint8_t> Back;
  EXPECT_FALSE(readFileBytes(Path, Back));
}

TEST(Serializer, WriteReplacesExistingFileAndLeavesNoTemp) {
  const std::string Path = ::testing::TempDir() + "/serializer_atomic.bin";
  ASSERT_TRUE(writeFileBytes(Path, {1, 1, 1}));
  // A stale temp file from a previous crashed writer must not confuse
  // the replacement.
  ASSERT_TRUE(writeFileBytes(Path + ".tmp", {9, 9, 9, 9, 9}));
  ASSERT_TRUE(writeFileBytes(Path, {2, 2}));
  std::vector<uint8_t> Back;
  ASSERT_TRUE(readFileBytes(Path, Back));
  EXPECT_EQ(Back, (std::vector<uint8_t>{2, 2}));
  // The successful rename consumed the temp file.
  EXPECT_FALSE(readFileBytes(Path + ".tmp", Back));
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Statistics, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Statistics, MeanBasic) { EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5); }

TEST(Statistics, GeometricMeanBasic) {
  EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometricMean({2.0, 8.0, 4.0}), 4.0, 1e-12);
}

TEST(Statistics, GeometricMeanOfIdenticalValues) {
  EXPECT_NEAR(geometricMean({1.25, 1.25, 1.25}), 1.25, 1e-12);
}

TEST(Statistics, LogAddMatchesDirectComputation) {
  const double A = std::log(0.3), B = std::log(0.7);
  EXPECT_NEAR(logAdd(A, B), std::log(1.0), 1e-12);
}

TEST(Statistics, LogAddHandlesNegativeInfinity) {
  const double NegInf = -std::numeric_limits<double>::infinity();
  EXPECT_NEAR(logAdd(std::log(0.5), NegInf), std::log(0.5), 1e-12);
}

TEST(Statistics, RunningStatMatchesClosedForm) {
  RunningStat Stat;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    Stat.add(X);
  EXPECT_EQ(Stat.count(), 8u);
  EXPECT_DOUBLE_EQ(Stat.mean(), 5.0);
  EXPECT_NEAR(Stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(Stat.max(), 9.0);
}

TEST(Statistics, RunningStatSingleValue) {
  RunningStat Stat;
  Stat.add(3.0);
  EXPECT_DOUBLE_EQ(Stat.mean(), 3.0);
  EXPECT_DOUBLE_EQ(Stat.variance(), 0.0);
}

//===----------------------------------------------------------------------===//
// Serializer: varints and streaming
//===----------------------------------------------------------------------===//

TEST(Serializer, VarintRoundTripsBoundaryValues) {
  ByteWriter Writer;
  const uint64_t Values[] = {0,       1,          127,        128,
                             16383,   16384,      0xffffffff, uint64_t(1) << 35,
                             ~uint64_t(0)};
  for (uint64_t V : Values)
    Writer.writeVarU64(V);
  ByteReader Reader(Writer.buffer());
  for (uint64_t V : Values)
    EXPECT_EQ(Reader.readVarU64(), V);
  EXPECT_TRUE(Reader.atEnd());
}

TEST(Serializer, VarintSmallValuesAreOneByte) {
  ByteWriter Writer;
  Writer.writeVarU64(100);
  EXPECT_EQ(Writer.size(), 1u);
  Writer.writeVarU64(1000);
  EXPECT_EQ(Writer.size(), 3u); // 2 more
}

TEST(Serializer, VarintOverlongEncodingFails) {
  // 11 continuation bytes cannot encode a u64.
  std::vector<uint8_t> Bad(11, 0x80);
  ByteReader Reader(Bad);
  Reader.readVarU64();
  EXPECT_TRUE(Reader.failed());
}

TEST(Serializer, VarintTenthByteOverflowBitsFail) {
  // A tenth byte carrying bits past bit 63 must fail, not silently
  // truncate to a wrong value.
  std::vector<uint8_t> Bad(9, 0x80);
  Bad.push_back(0x7f); // bits 1-6 would shift past bit 63
  ByteReader Reader(Bad);
  EXPECT_EQ(Reader.readVarU64(), 0u);
  EXPECT_TRUE(Reader.failed());

  // The legitimate extreme (bit 63 set, nothing past it) still decodes.
  std::vector<uint8_t> Max(9, 0xff);
  Max.push_back(0x01);
  ByteReader MaxReader(Max);
  EXPECT_EQ(MaxReader.readVarU64(), ~uint64_t(0));
  EXPECT_FALSE(MaxReader.failed());
}

TEST(Serializer, StreamWriterMatchesByteWriter) {
  ByteWriter Legacy;
  Legacy.writeU8(7);
  Legacy.writeU32(0xcafebabe);
  Legacy.writeU64(123456789);
  Legacy.writeVarU64(300);
  Legacy.writeF64(2.5);

  std::vector<uint8_t> Streamed;
  VectorSink Sink(Streamed);
  StreamWriter Writer(Sink);
  Writer.writeU8(7);
  Writer.writeU32(0xcafebabe);
  Writer.writeU64(123456789);
  Writer.writeVarU64(300);
  Writer.writeF64(2.5);

  EXPECT_FALSE(Writer.failed());
  EXPECT_EQ(Streamed, Legacy.buffer());
}

TEST(Serializer, StreamReaderReadsMemorySource) {
  ByteWriter Writer;
  Writer.writeU32(42);
  Writer.writeVarU64(90000);
  MemorySource Source(Writer.buffer());
  StreamReader Reader(Source);
  EXPECT_EQ(Reader.readU32(), 42u);
  EXPECT_EQ(Reader.readVarU64(), 90000u);
  EXPECT_FALSE(Reader.failed());
  EXPECT_EQ(Source.remaining(), 0u);
  Reader.readU8();
  EXPECT_TRUE(Reader.failed()); // sticky past-end failure
}

TEST(Serializer, FileSinkSourceRoundTrip) {
  const std::string Path = ::testing::TempDir() + "/stream_test.bin";
  {
    FileSink Sink(Path);
    ASSERT_TRUE(Sink.ok());
    StreamWriter Writer(Sink);
    Writer.writeU64(0x1122334455667788ULL);
    Writer.writeVarU64(77);
    EXPECT_FALSE(Writer.failed());
    EXPECT_TRUE(Sink.close());
  }
  FileSource Source(Path);
  ASSERT_TRUE(Source.ok());
  StreamReader Reader(Source);
  EXPECT_EQ(Reader.readU64(), 0x1122334455667788ULL);
  EXPECT_EQ(Reader.readVarU64(), 77u);
  EXPECT_FALSE(Reader.failed());
  EXPECT_TRUE(Source.exhausted());
}

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

TEST(Executor, ParallelForCoversEveryIndexExactlyOnce) {
  Executor Exec(4);
  std::vector<std::atomic<int>> Hits(1000);
  for (auto &Hit : Hits)
    Hit.store(0);
  Exec.parallelFor(Hits.size(),
                   [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(Executor, JoinIsABarrier) {
  // Every write must be visible after parallelFor returns, without any
  // synchronization by the caller.
  Executor Exec(3);
  std::vector<uint64_t> Results(64, 0);
  Exec.parallelFor(Results.size(), [&](size_t I) { Results[I] = I * I; });
  for (size_t I = 0; I < Results.size(); ++I)
    EXPECT_EQ(Results[I], I * I);
}

TEST(Executor, ReusableAcrossJobs) {
  Executor Exec(4);
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<size_t> Sum{0};
    Exec.parallelFor(10, [&](size_t I) { Sum.fetch_add(I + 1); });
    EXPECT_EQ(Sum.load(), 55u) << "round " << Round;
  }
}

TEST(Executor, SingleThreadDegeneratesToLoop) {
  Executor Exec(1);
  EXPECT_EQ(Exec.threadCount(), 1u);
  std::vector<int> Order;
  Exec.parallelFor(5, [&](size_t I) { Order.push_back(static_cast<int>(I)); });
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Executor, ActuallyRunsConcurrently) {
  // Two tasks that each wait for the other can only finish if they
  // overlap in time.
  Executor Exec(2);
  std::atomic<int> Arrived{0};
  Exec.parallelFor(2, [&](size_t) {
    Arrived.fetch_add(1);
    for (int Spin = 0; Spin < 100000000 && Arrived.load() < 2; ++Spin)
      std::this_thread::yield();
    EXPECT_EQ(Arrived.load(), 2);
  });
}

TEST(Executor, EmptyJobReturnsImmediately) {
  Executor Exec(4);
  bool Ran = false;
  Exec.parallelFor(0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

//===----------------------------------------------------------------------===//
// FlatU64Map
//===----------------------------------------------------------------------===//

TEST(FlatU64Map, EmplaceAndLookup) {
  FlatU64Map<uint32_t> Map;
  EXPECT_EQ(Map.lookup(1), nullptr);
  EXPECT_TRUE(Map.emplace(1, 10));
  EXPECT_TRUE(Map.emplace(2, 20));
  ASSERT_NE(Map.lookup(1), nullptr);
  EXPECT_EQ(*Map.lookup(1), 10u);
  ASSERT_NE(Map.lookup(2), nullptr);
  EXPECT_EQ(*Map.lookup(2), 20u);
  EXPECT_EQ(Map.lookup(3), nullptr);
  EXPECT_EQ(Map.size(), 2u);
}

TEST(FlatU64Map, FirstEmplaceWins) {
  // unordered_map::emplace semantics: the view index keeps the first
  // slot seen for an id.
  FlatU64Map<uint32_t> Map;
  EXPECT_TRUE(Map.emplace(7, 1));
  EXPECT_FALSE(Map.emplace(7, 2));
  EXPECT_EQ(*Map.lookup(7), 1u);
  EXPECT_EQ(Map.size(), 1u);
}

TEST(FlatU64Map, SurvivesGrowthWithConsecutiveKeys) {
  // Object ids are consecutive clock values — the pattern Fibonacci
  // hashing exists to spread.  Push far past the initial capacity.
  FlatU64Map<uint64_t> Map;
  constexpr uint64_t N = 10000;
  for (uint64_t Key = 1; Key <= N; ++Key)
    ASSERT_TRUE(Map.emplace(Key, Key * 3));
  EXPECT_EQ(Map.size(), N);
  for (uint64_t Key = 1; Key <= N; ++Key) {
    ASSERT_NE(Map.lookup(Key), nullptr) << Key;
    EXPECT_EQ(*Map.lookup(Key), Key * 3);
  }
  EXPECT_EQ(Map.lookup(N + 1), nullptr);
}

TEST(FlatU64Map, ReserveAvoidsNothingObservable) {
  // reserve is a pure pre-size: contents and lookups are unchanged.
  FlatU64Map<uint32_t> Reserved, Grown;
  Reserved.reserve(1000);
  for (uint64_t Key = 1; Key <= 1000; ++Key) {
    Reserved.emplace(Key * 977, static_cast<uint32_t>(Key));
    Grown.emplace(Key * 977, static_cast<uint32_t>(Key));
  }
  for (uint64_t Key = 1; Key <= 1000; ++Key) {
    ASSERT_NE(Reserved.lookup(Key * 977), nullptr);
    EXPECT_EQ(*Reserved.lookup(Key * 977), *Grown.lookup(Key * 977));
  }
}

TEST(FlatU64Map, ZeroKeyNeverStoredNeverFound) {
  FlatU64Map<uint32_t> Map;
  Map.emplace(1, 1);
  EXPECT_EQ(Map.lookup(0), nullptr);
}

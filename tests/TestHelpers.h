//===- tests/TestHelpers.h - Shared test scaffolding -----------*- C++ -*-===//
//
// Part of the Exterminator reproduction (Novark, Berger & Zorn, PLDI 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared across the test suite: running scripted traces over the
/// full heap stack and collecting heap images from differently-seeded
/// runs.
///
//===----------------------------------------------------------------------===//

#ifndef EXTERMINATOR_TESTS_TESTHELPERS_H
#define EXTERMINATOR_TESTS_TESTHELPERS_H

#include "runtime/Exterminator.h"
#include "workload/TraceWorkload.h"

#include <vector>

namespace exterminator {
namespace testing_support {

/// Runs \p Ops once over the full stack with the given heap seed.
inline SingleRunResult runTrace(const std::vector<TraceOp> &Ops,
                                uint64_t HeapSeed,
                                const ExterminatorConfig &Config =
                                    ExterminatorConfig()) {
  TraceWorkload Work(Ops);
  return runWorkloadOnce(Work, /*InputSeed=*/1, HeapSeed, Config,
                         PatchSet());
}

/// Collects \p Count end-of-run images of \p Ops under distinct heap
/// seeds (what iterative mode sees for a trace that runs to completion).
inline std::vector<HeapImage>
imagesFromTrace(const std::vector<TraceOp> &Ops, unsigned Count,
                uint64_t FirstSeed = 1000,
                const ExterminatorConfig &Config = ExterminatorConfig()) {
  std::vector<HeapImage> Images;
  for (unsigned I = 0; I < Count; ++I)
    Images.push_back(
        runTrace(Ops, FirstSeed + I * 7919, Config).FinalImage);
  return Images;
}

} // namespace testing_support
} // namespace exterminator

#endif // EXTERMINATOR_TESTS_TESTHELPERS_H

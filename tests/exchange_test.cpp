//===- tests/exchange_test.cpp - Patch-exchange tests -------------------------===//
//
// Covers the patch exchange: the frame codec and its adversarial-input
// taxonomy, the acceptance criterion that evidence submitted through
// PatchClient→PatchServer yields a patch set bit-identical to a local
// DiagnosisPipeline (over both the loopback and the socket transport),
// epoch/incremental fetch semantics, batching, server survival under
// hostile bytes, and the exchange-backed CumulativeDriver.
//
//===----------------------------------------------------------------------===//

#include "exchange/PatchClient.h"
#include "exchange/PatchServer.h"
#include "exchange/SocketTransport.h"
#include "exchange/StateStore.h"

#include "TestHelpers.h"
#include "heapimage/ImageBundle.h"
#include "runtime/CumulativeDriver.h"
#include "support/Serializer.h"
#include "workload/EspressoWorkload.h"
#include "workload/ScriptedBugs.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace exterminator;
using namespace exterminator::testing_support;

namespace {

/// The canonical scripted bugs (workload/ScriptedBugs.h) under the
/// names the assertions below read naturally with.
std::vector<TraceOp> overflowTrace(uint32_t OverflowBytes) {
  return scriptedOverflowTrace(OverflowBytes);
}

std::vector<TraceOp> danglingTrace() { return scriptedDanglingTrace(); }

/// Runs the acceptance round-trip over \p Transport: the same evidence
/// submitted through the exchange and fed to a local pipeline must
/// produce bit-identical patch sets.
void expectRoundTripEquivalence(ClientTransport &Transport,
                                PatchServer &Server) {
  const ImageEvidence OverflowEvidence{imagesFromTrace(overflowTrace(6), 3),
                                       {}};
  const ImageEvidence DanglingEvidence{imagesFromTrace(danglingTrace(), 3),
                                       {}};

  DiagnosisPipeline Local;
  Local.submitImages(OverflowEvidence);
  Local.submitImages(DanglingEvidence);
  const RunSummary Summary =
      Local.summarize(OverflowEvidence.Primary.front(), /*Failed=*/true);
  Local.submitSummary(Summary, /*CleanStreak=*/0);

  PatchClient Client(Transport);
  ImagesReply Images;
  ASSERT_TRUE(Client.submitImages(OverflowEvidence, &Images));
  EXPECT_GT(Images.OverflowFindings, 0u);
  ASSERT_TRUE(Client.submitImages(DanglingEvidence));
  ASSERT_TRUE(Client.submitSummary(Summary, 0));
  ASSERT_TRUE(Client.fetchPatches());

  EXPECT_FALSE(Client.patches().empty());
  EXPECT_TRUE(Client.patches() == Local.patches());
  EXPECT_TRUE(Server.snapshot().Patches == Local.patches());
}

} // namespace

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

TEST(WireProtocol, FrameRoundTrip) {
  const std::vector<uint8_t> Payload{1, 2, 3, 4, 5};
  const std::vector<uint8_t> Bytes =
      encodeFrame(MessageType::SubmitSummary, Payload);
  Frame Decoded;
  size_t Consumed = 0;
  ASSERT_EQ(decodeFrame(Bytes.data(), Bytes.size(), Decoded, Consumed),
            FrameError::None);
  EXPECT_EQ(Consumed, Bytes.size());
  EXPECT_EQ(Decoded.Type, MessageType::SubmitSummary);
  EXPECT_EQ(Decoded.Payload, Payload);
}

TEST(WireProtocol, EmptyPayloadFrameRoundTrip) {
  const std::vector<uint8_t> Bytes = encodeFrame(MessageType::Shutdown, {});
  Frame Decoded;
  size_t Consumed = 0;
  ASSERT_EQ(decodeFrame(Bytes.data(), Bytes.size(), Decoded, Consumed),
            FrameError::None);
  EXPECT_TRUE(Decoded.Payload.empty());
}

TEST(WireProtocol, DetectsTruncation) {
  const std::vector<uint8_t> Full =
      encodeFrame(MessageType::FetchPatches, encodeFetchPatches(3, 0));
  Frame Decoded;
  size_t Consumed = 0;
  for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
    std::vector<uint8_t> Truncated(Full.begin(), Full.begin() + Cut);
    EXPECT_NE(decodeFrame(Truncated.data(), Truncated.size(), Decoded,
                          Consumed),
              FrameError::None)
        << "accepted truncation at " << Cut;
  }
}

TEST(WireProtocol, DetectsBadMagicVersionTypeLengthChecksum) {
  const std::vector<uint8_t> Good =
      encodeFrame(MessageType::FetchPatches, encodeFetchPatches(1, 0));
  Frame Decoded;
  size_t Consumed = 0;

  std::vector<uint8_t> BadMagic = Good;
  BadMagic[0] ^= 0xff;
  EXPECT_EQ(decodeFrame(BadMagic.data(), BadMagic.size(), Decoded, Consumed),
            FrameError::BadMagic);

  std::vector<uint8_t> BadVersion = Good;
  BadVersion[4] = 99;
  EXPECT_EQ(
      decodeFrame(BadVersion.data(), BadVersion.size(), Decoded, Consumed),
      FrameError::BadVersion);

  std::vector<uint8_t> BadType = Good;
  BadType[5] = 250;
  EXPECT_EQ(decodeFrame(BadType.data(), BadType.size(), Decoded, Consumed),
            FrameError::BadType);

  std::vector<uint8_t> Oversized = Good;
  const uint32_t Huge = MaxFramePayload + 1;
  std::memcpy(Oversized.data() + 6, &Huge, 4);
  EXPECT_EQ(
      decodeFrame(Oversized.data(), Oversized.size(), Decoded, Consumed),
      FrameError::OversizedLength);

  std::vector<uint8_t> BadChecksum = Good;
  BadChecksum[FrameHeaderBytes] ^= 0x01; // flip a payload bit
  EXPECT_EQ(decodeFrame(BadChecksum.data(), BadChecksum.size(), Decoded,
                        Consumed),
            FrameError::BadChecksum);
}

//===----------------------------------------------------------------------===//
// Payload codecs
//===----------------------------------------------------------------------===//

TEST(WireProtocol, SubmitImagesPayloadRoundTrip) {
  ImageEvidence Evidence{imagesFromTrace(overflowTrace(6), 2),
                         imagesFromTrace(danglingTrace(), 2)};
  ImageEvidence Decoded;
  ASSERT_TRUE(decodeSubmitImages(encodeSubmitImages(Evidence), Decoded));
  ASSERT_EQ(Decoded.Primary.size(), 2u);
  ASSERT_EQ(Decoded.Fallback.size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_TRUE(Decoded.Primary[I] == Evidence.Primary[I]);
    EXPECT_TRUE(Decoded.Fallback[I] == Evidence.Fallback[I]);
  }
}

TEST(WireProtocol, SummaryReplyRoundTrip) {
  SummaryReply Reply;
  Reply.Epoch = 9;
  CumulativeOverflowFinding Overflow;
  Overflow.AllocSite = 0xabc;
  Overflow.LogBayesFactor = 3.5;
  Overflow.LogThreshold = 1.25;
  Overflow.PadBytes = 24;
  Overflow.TrialCount = 7;
  Overflow.ObservedCount = 6;
  Reply.Diagnosis.Overflows.push_back(Overflow);
  CumulativeDanglingFinding Dangling;
  Dangling.AllocSite = 0x123;
  Dangling.FreeSite = 0x456;
  Dangling.DeferralTicks = 512;
  Dangling.TrialCount = 4;
  Dangling.ObservedCount = 4;
  Reply.Diagnosis.Danglings.push_back(Dangling);

  SummaryReply Decoded;
  ASSERT_TRUE(decodeSummaryReply(encodeSummaryReply(Reply), Decoded));
  EXPECT_EQ(Decoded.Epoch, 9u);
  ASSERT_EQ(Decoded.Diagnosis.Overflows.size(), 1u);
  EXPECT_EQ(Decoded.Diagnosis.Overflows[0].AllocSite, 0xabcu);
  EXPECT_EQ(Decoded.Diagnosis.Overflows[0].PadBytes, 24u);
  EXPECT_DOUBLE_EQ(Decoded.Diagnosis.Overflows[0].LogBayesFactor, 3.5);
  ASSERT_EQ(Decoded.Diagnosis.Danglings.size(), 1u);
  EXPECT_EQ(Decoded.Diagnosis.Danglings[0].DeferralTicks, 512u);
}

TEST(WireProtocol, PatchesReplySkipsPayloadWhenUnmodified) {
  PatchesReply Unmodified;
  Unmodified.Instance = 7;
  Unmodified.Epoch = 4;
  Unmodified.Modified = false;
  const std::vector<uint8_t> Small = encodePatchesReply(Unmodified);
  // u64 instance + u64 epoch + u8 flag, nothing else.
  EXPECT_EQ(Small.size(), 17u);

  PatchesReply Decoded;
  ASSERT_TRUE(decodePatchesReply(Small, Decoded));
  EXPECT_EQ(Decoded.Instance, 7u);
  EXPECT_EQ(Decoded.Epoch, 4u);
  EXPECT_FALSE(Decoded.Modified);
  EXPECT_TRUE(Decoded.Patches.empty());
}

TEST(PatchExchange, InstanceChangeDefeatsEpochCollision) {
  // Two server instances whose epochs coincide: a client carrying
  // instance A's epoch must still get the full set from instance B
  // (epoch-only staleness would silently serve stale patches after a
  // server restart).
  PatchServer A, B;
  ASSERT_NE(A.instance(), B.instance());
  {
    LoopbackTransport TransportA(A);
    PatchClient SeedA(TransportA);
    ASSERT_TRUE(
        SeedA.submitImages({imagesFromTrace(overflowTrace(6), 3), {}}));
  }
  {
    LoopbackTransport TransportB(B);
    PatchClient SeedB(TransportB);
    ASSERT_TRUE(
        SeedB.submitImages({imagesFromTrace(danglingTrace(), 3), {}}));
  }
  ASSERT_EQ(A.snapshot().Epoch, B.snapshot().Epoch); // colliding epochs

  LoopbackTransport TransportA(A);
  PatchClient Client(TransportA);
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_TRUE(Client.patches() == A.snapshot().Patches);

  // "Restart": replay the client's cached (instance, epoch) — obtained
  // from A — against B, whose epoch number coincides.
  LoopbackTransport TransportB(B);
  Frame Reply;
  std::vector<std::vector<uint8_t>> Responses;
  ASSERT_TRUE(TransportB.exchange(
      {encodeFrame(MessageType::FetchPatches,
                   encodeFetchPatches(Client.epoch(),
                                      Client.serverInstance()))},
      Responses));
  size_t Consumed = 0;
  ASSERT_EQ(decodeFrame(Responses[0].data(), Responses[0].size(), Reply,
                        Consumed),
            FrameError::None);
  PatchesReply Decoded;
  ASSERT_TRUE(decodePatchesReply(Reply.Payload, Decoded));
  EXPECT_TRUE(Decoded.Modified); // same epoch, different instance
  EXPECT_TRUE(Decoded.Patches == B.snapshot().Patches);
}

TEST(PatchExchange, SyncSkipsRoundTripWhenReplyProvedCurrent) {
  PatchServer Server;
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);

  ASSERT_TRUE(
      Client.submitImages({imagesFromTrace(overflowTrace(6), 3), {}}));
  ASSERT_TRUE(Client.syncPatches()); // must actually fetch (mirror stale)
  EXPECT_FALSE(Client.patches().empty());

  // Re-submitting the same evidence leaves the epoch alone; the reply
  // says so, and syncPatches must not issue another fetch.
  const uint64_t FetchesBefore = Server.stats().FetchesServed;
  ASSERT_TRUE(
      Client.submitImages({imagesFromTrace(overflowTrace(6), 3), {}}));
  ASSERT_TRUE(Client.syncPatches());
  EXPECT_EQ(Server.stats().FetchesServed, FetchesBefore);
}

//===----------------------------------------------------------------------===//
// Round-trip equivalence (the acceptance criterion)
//===----------------------------------------------------------------------===//

TEST(PatchExchange, LoopbackMatchesLocalPipeline) {
  PatchServer Server;
  LoopbackTransport Transport(Server);
  expectRoundTripEquivalence(Transport, Server);
}

TEST(PatchExchange, UnixSocketMatchesLocalPipeline) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/2);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint(
      "unix:" + ::testing::TempDir() + "/exchange_test.sock", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  SocketClientTransport Transport(Front.endpoint());
  expectRoundTripEquivalence(Transport, Server);
  Front.stop();
}

TEST(PatchExchange, TcpSocketMatchesLocalPipeline) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/2);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep)); // kernel-assigned port
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_NE(Front.endpoint().Port, 0);
  ASSERT_TRUE(Front.start());

  SocketClientTransport Transport(Front.endpoint());
  expectRoundTripEquivalence(Transport, Server);
  Front.stop();
}

//===----------------------------------------------------------------------===//
// Epochs and incremental fetch
//===----------------------------------------------------------------------===//

TEST(PatchExchange, EpochAdvancesOnlyWhenPatchesChange) {
  PatchServer Server;
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);

  // Empty server: first fetch transfers (client holds nothing), epoch 0.
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_EQ(Client.epoch(), 0u);
  EXPECT_TRUE(Client.patches().empty());

  // New evidence bumps the epoch and the next fetch sees it.
  const ImageEvidence Evidence{imagesFromTrace(overflowTrace(6), 3), {}};
  ASSERT_TRUE(Client.submitImages(Evidence));
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_EQ(Client.epoch(), 1u);
  EXPECT_FALSE(Client.patches().empty());

  // Resubmitting identical evidence max-merges to no change: the epoch
  // holds, so the next fetch is the cheap unmodified round trip.
  ASSERT_TRUE(Client.submitImages(Evidence));
  const PatchServerStats Before = Server.stats();
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_EQ(Client.epoch(), 1u);
  const PatchServerStats After = Server.stats();
  EXPECT_EQ(After.FetchesUnmodified, Before.FetchesUnmodified + 1);
}

TEST(DiagnosisPipeline, EpochCountsDistinctChanges) {
  DiagnosisPipeline Pipeline;
  EXPECT_EQ(Pipeline.epoch(), 0u);
  Pipeline.submitImages({imagesFromTrace(overflowTrace(6), 3), {}});
  EXPECT_EQ(Pipeline.epoch(), 1u);
  // Same evidence again: max-merge is idempotent, epoch must hold.
  Pipeline.submitImages({imagesFromTrace(overflowTrace(6), 3), {}});
  EXPECT_EQ(Pipeline.epoch(), 1u);
  // Different error, new patches, new epoch.
  Pipeline.submitImages({imagesFromTrace(danglingTrace(), 3), {}});
  EXPECT_EQ(Pipeline.epoch(), 2u);
}

//===----------------------------------------------------------------------===//
// Batching
//===----------------------------------------------------------------------===//

TEST(PatchExchange, BatchedFlushDeliversEverything) {
  PatchServer Server;
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);

  DiagnosisPipeline Local;
  Client.queueImages({imagesFromTrace(overflowTrace(6), 3), {}});
  Local.submitImages({imagesFromTrace(overflowTrace(6), 3), {}});
  const RunSummary Summary = Local.summarize(
      imagesFromTrace(overflowTrace(6), 1).front(), /*Failed=*/true);
  for (unsigned I = 0; I < 3; ++I) {
    Client.queueSummary(Summary, 0);
    Local.submitSummary(Summary, 0);
  }
  EXPECT_EQ(Client.pendingCount(), 4u);
  ASSERT_TRUE(Client.flush());
  EXPECT_EQ(Client.pendingCount(), 0u);

  const PatchServerStats Stats = Server.stats();
  EXPECT_EQ(Stats.ImagesIngested, 3u);
  EXPECT_EQ(Stats.SummariesIngested, 3u);
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_TRUE(Client.patches() == Local.patches());
}

TEST(PatchExchange, BatchedFlushOverSocket) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/1);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  SocketClientTransport Transport(Front.endpoint());
  PatchClient Client(Transport);
  const RunSummary Summary = DiagnosisPipeline().summarize(
      imagesFromTrace(overflowTrace(6), 1).front(), /*Failed=*/true);
  for (unsigned I = 0; I < 16; ++I)
    Client.queueSummary(Summary, 0);
  ASSERT_TRUE(Client.flush());
  EXPECT_EQ(Server.stats().SummariesIngested, 16u);
  Front.stop();
}

//===----------------------------------------------------------------------===//
// Adversarial wire input (server must reject, never crash)
//===----------------------------------------------------------------------===//

namespace {

/// Connects to \p Ep, writes \p Bytes, half-closes, and drains whatever
/// the server answers — the shape of a hostile or broken peer.  Never
/// blocks: the half-close guarantees the server sees EOF.
void sendRawBytes(const Endpoint &Ep, const std::vector<uint8_t> &Bytes) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Ep.Port);
  ASSERT_EQ(::inet_pton(AF_INET, Ep.Host.c_str(), &Addr.sin_addr), 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  if (!Bytes.empty()) {
    ASSERT_EQ(::send(Fd, Bytes.data(), Bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(Bytes.size()));
  }
  ::shutdown(Fd, SHUT_WR);
  uint8_t Drain[256];
  while (::recv(Fd, Drain, sizeof(Drain), 0) > 0) {
  }
  ::close(Fd);
}

/// Sends raw bytes to the server and expects a well-formed ErrorReply
/// frame back, then proves the server still answers a good request.
void expectRejectedThenAlive(PatchServer &Server,
                             const std::vector<uint8_t> &Hostile) {
  std::vector<uint8_t> Response;
  Server.handleFrame(Hostile, Response);
  Frame Reply;
  size_t Consumed = 0;
  ASSERT_EQ(decodeFrame(Response.data(), Response.size(), Reply, Consumed),
            FrameError::None);
  EXPECT_EQ(Reply.Type, MessageType::ErrorReply);
  std::string Message;
  EXPECT_TRUE(decodeErrorReply(Reply.Payload, Message));
  EXPECT_FALSE(Message.empty());

  // Still alive: a good fetch succeeds.
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);
  EXPECT_TRUE(Client.fetchPatches());
}

} // namespace

TEST(PatchExchange, RejectsTruncatedFrames) {
  PatchServer Server;
  const std::vector<uint8_t> Full =
      encodeFrame(MessageType::FetchPatches, encodeFetchPatches(0, 0));
  for (size_t Cut : {size_t(0), size_t(3), FrameHeaderBytes,
                     Full.size() - 1})
    expectRejectedThenAlive(Server,
                            {Full.begin(), Full.begin() + Cut});
  EXPECT_GE(Server.stats().FramesRejected, 4u);
}

TEST(PatchExchange, RejectsBadChecksum) {
  PatchServer Server;
  std::vector<uint8_t> Bytes =
      encodeFrame(MessageType::FetchPatches, encodeFetchPatches(0, 0));
  Bytes[FrameHeaderBytes] ^= 0x40;
  expectRejectedThenAlive(Server, Bytes);
}

TEST(PatchExchange, RejectsOversizedLengthPrefix) {
  PatchServer Server;
  std::vector<uint8_t> Bytes = encodeFrame(MessageType::Shutdown, {});
  const uint32_t Huge = ~uint32_t(0);
  std::memcpy(Bytes.data() + 6, &Huge, 4);
  expectRejectedThenAlive(Server, Bytes);
  // The forged frame must not have triggered shutdown.
  EXPECT_FALSE(Server.shutdownRequested());
}

TEST(PatchExchange, RejectsUnknownProtocolVersion) {
  PatchServer Server;
  std::vector<uint8_t> Bytes =
      encodeFrame(MessageType::FetchPatches, encodeFetchPatches(0, 0));
  Bytes[4] = ProtocolVersion + 1;
  expectRejectedThenAlive(Server, Bytes);
}

TEST(PatchExchange, RejectsMalformedBundlePayload) {
  PatchServer Server;
  // A frame whose checksum is valid but whose payload is not a bundle.
  expectRejectedThenAlive(
      Server, encodeFrame(MessageType::SubmitImages, {1, 2, 3, 4}));
  // And a structurally valid frame wrapping a bundle with an
  // out-of-range dictionary reference (built like the ImageBundle test).
  std::vector<uint8_t> Bundle;
  {
    VectorSink Sink(Bundle);
    StreamWriter Writer(Sink);
    Writer.writeU32(0x58494231);
    Writer.writeU32(1);
    Writer.writeVarU64(1);
    Writer.writeVarU64(1);
    Writer.writeU32(0);
    Writer.writeU64(42);
    Writer.writeU32(1);
    Writer.writeF64(1.0);
    Writer.writeF64(2.0);
    Writer.writeU64(3);
    Writer.writeVarU64(1);
    Writer.writeVarU64(0);
    Writer.writeVarU64(16);
    Writer.writeU64(0x1000);
    Writer.writeVarU64(0);
    Writer.writeVarU64(1);
    Writer.writeU8(0x80 | 1);
    Writer.writeVarU64(5);
    Writer.writeVarU64(0);
    Writer.writeVarU64(9); // out-of-range site index
    Writer.writeVarU64(0);
    Writer.writeVarU64(16);
    Writer.writeVarU64(1);
    Writer.writeU8(1);
    Writer.writeVarU64(16);
    Writer.writeU64(0);
  }
  expectRejectedThenAlive(Server,
                          encodeFrame(MessageType::SubmitImages, Bundle));
}

TEST(PatchExchange, RejectsSlotAmplificationBomb) {
  // A tiny, structurally valid bundle can declare millions of virgin
  // slots (a dozen wire bytes amplify to Count decoded slots).  The
  // wire decode budget (MaxWireSlots) must reject the declaration
  // before materializing anything.
  PatchServer Server;
  std::vector<uint8_t> Bundle;
  {
    VectorSink Sink(Bundle);
    StreamWriter Writer(Sink);
    Writer.writeU32(0x58494231); // magic
    Writer.writeU32(1);          // bundle version
    Writer.writeVarU64(1);       // one image
    Writer.writeVarU64(1);       // site table: just "no site"
    Writer.writeU32(0);
    Writer.writeU64(1);   // AllocationTime
    Writer.writeU32(1);   // CanaryValue
    Writer.writeF64(1.0); // p
    Writer.writeF64(2.0); // M
    Writer.writeU64(3);   // seed
    Writer.writeVarU64(1);                // one miniheap
    Writer.writeVarU64(0);                // size class
    Writer.writeVarU64(8);                // object size
    Writer.writeU64(0x1000);              // base
    Writer.writeVarU64(0);                // creation time
    Writer.writeVarU64(MaxWireSlots + 8); // the bomb
    Writer.writeU8(0xff);                 // virgin-run tag
    Writer.writeVarU64(MaxWireSlots + 8);
    Writer.writeU64(0);
  }
  expectRejectedThenAlive(Server,
                          encodeFrame(MessageType::SubmitImages, Bundle));

  // The same declaration through the file path (larger budget) is also
  // bounded — just by MaxBundleSlots instead.
  std::vector<HeapImage> Out;
  uint64_t WireBudget = MaxWireSlots;
  EXPECT_FALSE(deserializeImageBundle(Bundle, Out, WireBudget));
}

TEST(PatchExchange, SocketServerSurvivesHostileBytes) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/2);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  // Raw hostile connections: garbage bytes, a truncated header, a bad
  // checksum, an oversized length prefix, and an instant hangup.
  std::vector<uint8_t> BadChecksum =
      encodeFrame(MessageType::FetchPatches, encodeFetchPatches(0, 0));
  BadChecksum[FrameHeaderBytes + 2] ^= 0x80;
  std::vector<uint8_t> Oversized =
      encodeFrame(MessageType::FetchPatches, encodeFetchPatches(0, 0));
  const uint32_t Huge = ~uint32_t(0);
  std::memcpy(Oversized.data() + 6, &Huge, 4);
  std::vector<uint8_t> BadVersion =
      encodeFrame(MessageType::FetchPatches, encodeFetchPatches(0, 0));
  BadVersion[4] = 42;

  const std::vector<std::vector<uint8_t>> HostileStreams = {
      {0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe},
      {0x58}, // one byte of a would-be header, then hangup
      BadChecksum,
      Oversized,
      BadVersion,
      {}, // connect-and-hangup
  };
  for (const std::vector<uint8_t> &Hostile : HostileStreams)
    sendRawBytes(Front.endpoint(), Hostile);

  // The server is still healthy: a real client round-trips.
  SocketClientTransport Transport(Front.endpoint());
  PatchClient Client(Transport);
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_EQ(Client.epoch(), 0u);
  Front.stop();
}

TEST(PatchExchange, ShutdownFrameStopsSocketServer) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/2);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  SocketClientTransport Transport(Front.endpoint());
  PatchClient Client(Transport);
  ASSERT_TRUE(Client.shutdownServer());
  Front.stop(); // joins; returns promptly because shutdown was accepted
  EXPECT_TRUE(Server.shutdownRequested());
}

//===----------------------------------------------------------------------===//
// Wire v4: compressed frames and version negotiation (PR 10)
//===----------------------------------------------------------------------===//

namespace {

/// Repetitive bytes that the frame envelope will actually compress.
std::vector<uint8_t> compressiblePayload(size_t Size) {
  std::vector<uint8_t> Payload;
  Payload.reserve(Size);
  for (size_t I = 0; I < Size; ++I)
    Payload.push_back(static_cast<uint8_t>((I / 64) % 16));
  return Payload;
}

/// Hand-assembles a v4 frame around an arbitrary (possibly forged)
/// payload envelope, with a valid checksum — the shape of a hostile
/// compressed-frame sender.
std::vector<uint8_t> forgedV4Frame(MessageType Type,
                                   const std::vector<uint8_t> &Envelope) {
  std::vector<uint8_t> Out;
  VectorSink Sink(Out);
  StreamWriter Writer(Sink);
  Writer.writeU32(FrameMagic);
  Writer.writeU8(ProtocolVersion);
  Writer.writeU8(static_cast<uint8_t>(Type));
  Writer.writeU32(static_cast<uint32_t>(Envelope.size()));
  Writer.writeBytes(Envelope.data(), Envelope.size());
  Writer.writeU32(frameChecksum(Envelope.data(), Envelope.size()));
  return Out;
}

/// An envelope declaring an expansion past the frame budget: the
/// compression bomb every decoder must reject before allocating.
std::vector<uint8_t> bombEnvelope() {
  std::vector<uint8_t> Envelope;
  VectorSink Sink(Envelope);
  StreamWriter Writer(Sink);
  Writer.writeU8(PayloadEncodingLz);
  Writer.writeVarU64(uint64_t(MaxFramePayload) + 1);
  Writer.writeU8(0x00); // token bytes; never reached
  return Envelope;
}

RunSummary anySummary() {
  return DiagnosisPipeline().summarize(
      imagesFromTrace(overflowTrace(6), 1).front(), /*Failed=*/true);
}

} // namespace

TEST(WireProtocol, V4CompressesAndRoundTrips) {
  const std::vector<uint8_t> Payload = compressiblePayload(32 * 1024);
  const std::vector<uint8_t> V4 =
      encodeFrame(MessageType::SubmitSummary, Payload);
  const std::vector<uint8_t> V3 =
      encodeFrame(MessageType::SubmitSummary, Payload, LegacyProtocolVersion);
  EXPECT_LT(V4.size(), V3.size());

  Frame Decoded;
  size_t Consumed = 0;
  ASSERT_EQ(decodeFrame(V4.data(), V4.size(), Decoded, Consumed),
            FrameError::None);
  EXPECT_EQ(Consumed, V4.size());
  EXPECT_EQ(Decoded.Version, ProtocolVersion);
  EXPECT_EQ(Decoded.Payload, Payload);
}

TEST(WireProtocol, V4StoresIncompressiblePayloadsRaw) {
  // Random bytes cannot shrink; the envelope must cost exactly its
  // one-byte encoding tag, and still round-trip.
  std::vector<uint8_t> Payload(4096);
  uint32_t State = 0x12345678;
  for (uint8_t &B : Payload) {
    State = State * 1664525u + 1013904223u;
    B = static_cast<uint8_t>(State >> 24);
  }
  const std::vector<uint8_t> V4 =
      encodeFrame(MessageType::SubmitSummary, Payload);
  const std::vector<uint8_t> V3 =
      encodeFrame(MessageType::SubmitSummary, Payload, LegacyProtocolVersion);
  EXPECT_EQ(V4.size(), V3.size() + 1);
  Frame Decoded;
  size_t Consumed = 0;
  ASSERT_EQ(decodeFrame(V4.data(), V4.size(), Decoded, Consumed),
            FrameError::None);
  EXPECT_EQ(Decoded.Payload, Payload);
}

TEST(WireProtocol, LegacyEncodingIsBitIdenticalToPreCodecLayout) {
  // The uncompressed-peer interop pin: a v3 frame from this encoder must
  // match the pre-codec layout byte for byte — hand-assembled here from
  // the documented format.
  const std::vector<uint8_t> Payload{9, 8, 7, 6, 5, 4};
  const std::vector<uint8_t> Legacy =
      encodeFrame(MessageType::SubmitSummary, Payload, LegacyProtocolVersion);

  std::vector<uint8_t> Expected;
  VectorSink Sink(Expected);
  StreamWriter Writer(Sink);
  Writer.writeU32(FrameMagic);
  Writer.writeU8(LegacyProtocolVersion);
  Writer.writeU8(static_cast<uint8_t>(MessageType::SubmitSummary));
  Writer.writeU32(static_cast<uint32_t>(Payload.size()));
  Writer.writeBytes(Payload.data(), Payload.size());
  Writer.writeU32(frameChecksum(Payload.data(), Payload.size()));
  EXPECT_EQ(Legacy, Expected);
}

TEST(WireProtocol, RejectsCompressionBombBeforeAllocation) {
  const std::vector<uint8_t> Frame =
      forgedV4Frame(MessageType::SubmitSummary, bombEnvelope());
  exterminator::Frame Decoded;
  size_t Consumed = 0;
  EXPECT_EQ(decodeFrame(Frame.data(), Frame.size(), Decoded, Consumed),
            FrameError::OversizedExpansion);

  // Unknown encoding ids and empty envelopes are their own error.
  EXPECT_EQ(decodeFrame(
                forgedV4Frame(MessageType::SubmitSummary, {0x3f, 1, 2}).data(),
                forgedV4Frame(MessageType::SubmitSummary, {0x3f, 1, 2}).size(),
                Decoded, Consumed),
            FrameError::BadEncoding);
  const std::vector<uint8_t> Empty =
      forgedV4Frame(MessageType::SubmitSummary, {});
  EXPECT_EQ(decodeFrame(Empty.data(), Empty.size(), Decoded, Consumed),
            FrameError::BadEncoding);
}

TEST(WireProtocol, RejectsCorruptCompressedBody) {
  // Flip bytes inside a genuine v4 compressed envelope: the expansion
  // must fail as BadEncoding (or the checksum catches it first), never
  // produce wrong payload bytes silently.
  const std::vector<uint8_t> Payload = compressiblePayload(16 * 1024);
  std::vector<uint8_t> Good = encodeFrame(MessageType::SubmitSummary, Payload);
  size_t WrongPayloads = 0;
  for (size_t I = FrameHeaderBytes + 2; I < Good.size() - 4; I += 97) {
    std::vector<uint8_t> Mutated = Good;
    Mutated[I] ^= 0xff;
    Frame Decoded;
    size_t Consumed = 0;
    if (decodeFrame(Mutated.data(), Mutated.size(), Decoded, Consumed) ==
            FrameError::None &&
        Decoded.Payload != Payload)
      ++WrongPayloads; // checksum passed but payload differs: impossible
  }
  EXPECT_EQ(WrongPayloads, 0u);
}

TEST(PatchExchange, CompressionBombGetsErrorReplyOnLoopback) {
  PatchServer Server;
  expectRejectedThenAlive(Server,
                          forgedV4Frame(MessageType::SubmitSummary,
                                        bombEnvelope()));
  EXPECT_GE(Server.stats().FramesRejected, 1u);
}

TEST(PatchExchange, CompressionBombGetsErrorReplyOverTcp) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/1);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  SocketClientTransport Transport(Front.endpoint());
  std::vector<std::vector<uint8_t>> Responses;
  ASSERT_TRUE(Transport.exchange(
      {forgedV4Frame(MessageType::SubmitSummary, bombEnvelope())},
      Responses));
  ASSERT_EQ(Responses.size(), 1u);
  Frame Reply;
  size_t Consumed = 0;
  ASSERT_EQ(decodeFrame(Responses[0].data(), Responses[0].size(), Reply,
                        Consumed),
            FrameError::None);
  EXPECT_EQ(Reply.Type, MessageType::ErrorReply);
  std::string Message;
  ASSERT_TRUE(decodeErrorReply(Reply.Payload, Message));
  EXPECT_EQ(Message, frameErrorName(FrameError::OversizedExpansion));

  // Still healthy afterwards.
  SocketClientTransport Fresh(Front.endpoint());
  PatchClient Client(Fresh);
  EXPECT_TRUE(Client.fetchPatches());
  Front.stop();
}

TEST(WireNegotiation, ModernClientDowngradesToLegacyServerLoopback) {
  // A pre-v4 server (emulated with the version cap) rejects the first
  // compressed frame; the client must downgrade, re-send, and land the
  // exact same diagnostic state as a local pipeline.
  PatchServer Server;
  Server.setMaxWireVersion(LegacyProtocolVersion);
  LoopbackTransport Transport(Server);
  expectRoundTripEquivalence(Transport, Server);
  EXPECT_GE(Server.stats().FramesRejected, 1u);
}

TEST(WireNegotiation, ModernClientDowngradesToLegacyServerOverTcp) {
  PatchServer Server;
  Server.setMaxWireVersion(LegacyProtocolVersion);
  SocketPatchServer Front(Server, /*Workers=*/2);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());
  SocketClientTransport Transport(Front.endpoint());
  expectRoundTripEquivalence(Transport, Server);
  Front.stop();
}

TEST(WireNegotiation, LegacyClientInteroperatesWithModernServer) {
  // The reverse direction: an uncompressed v3 client against a v4
  // server must work unchanged — the server answers at the version the
  // request arrived in, and never rejects anything.
  for (const bool OverTcp : {false, true}) {
    PatchServer Server;
    SocketPatchServer Front(Server, /*Workers=*/1);
    std::unique_ptr<SocketClientTransport> Socket;
    std::unique_ptr<LoopbackTransport> Loopback;
    ClientTransport *Transport = nullptr;
    if (OverTcp) {
      Endpoint Ep;
      ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
      ASSERT_TRUE(Front.listen(Ep));
      ASSERT_TRUE(Front.start());
      Socket = std::make_unique<SocketClientTransport>(Front.endpoint());
      Transport = Socket.get();
    } else {
      Loopback = std::make_unique<LoopbackTransport>(Server);
      Transport = Loopback.get();
    }

    PatchClient Client(*Transport);
    Client.setMaxWireVersion(LegacyProtocolVersion);
    const ImageEvidence Evidence{imagesFromTrace(overflowTrace(6), 3), {}};
    DiagnosisPipeline Local;
    Local.submitImages(Evidence);
    ASSERT_TRUE(Client.submitImages(Evidence));
    ASSERT_TRUE(Client.fetchPatches());
    EXPECT_TRUE(Client.patches() == Local.patches());
    EXPECT_EQ(Client.peerVersion(), LegacyProtocolVersion);
    EXPECT_EQ(Server.stats().FramesRejected, 0u);
    if (OverTcp)
      Front.stop();
  }
}

TEST(WireNegotiation, DowngradeIsStickyAndEvidenceBased) {
  PatchServer Server;
  Server.setMaxWireVersion(LegacyProtocolVersion);
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);
  EXPECT_EQ(Client.peerVersion(), ProtocolVersion);

  // First round trip: one v4 rejection, then success at v3 — and the
  // retry reuses the same submission token, so the summary lands once.
  ASSERT_TRUE(Client.submitSummary(anySummary(), /*CleanStreak=*/0));
  EXPECT_EQ(Client.peerVersion(), LegacyProtocolVersion);
  EXPECT_EQ(Server.stats().SummariesIngested, 1u);
  const uint64_t RejectionsAfterFirst = Server.stats().FramesRejected;
  EXPECT_GE(RejectionsAfterFirst, 1u);

  // Sticky: further traffic goes straight to v3, no new rejections.
  ASSERT_TRUE(Client.submitSummary(anySummary(), 0));
  ASSERT_TRUE(Client.fetchPatches());
  EXPECT_EQ(Server.stats().FramesRejected, RejectionsAfterFirst);
}

TEST(WireNegotiation, BatchedFlushDowngradesMidPipelineOverTcp) {
  // Pipelined chunk against a legacy server: the rejection ErrorReply
  // sits in the received prefix of a failed exchange (the server closes
  // after rejecting frame one).  The client must find it there,
  // downgrade, and re-send the whole chunk — every summary ingested
  // exactly once.
  PatchServer Server;
  Server.setMaxWireVersion(LegacyProtocolVersion);
  SocketPatchServer Front(Server, /*Workers=*/1);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  SocketClientTransport Transport(Front.endpoint());
  PatchClient Client(Transport);
  const RunSummary Summary = anySummary();
  for (unsigned I = 0; I < 16; ++I)
    ASSERT_TRUE(Client.queueSummary(Summary, 0));
  ASSERT_TRUE(Client.flush());
  EXPECT_EQ(Server.stats().SummariesIngested, 16u);
  EXPECT_EQ(Client.peerVersion(), LegacyProtocolVersion);
  Front.stop();
}

//===----------------------------------------------------------------------===//
// Endpoint parsing
//===----------------------------------------------------------------------===//

TEST(Endpoint, ParsesUnixAndTcpSpecs) {
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("unix:/tmp/a.sock", Ep));
  EXPECT_EQ(Ep.Family, Endpoint::Unix);
  EXPECT_EQ(Ep.Path, "/tmp/a.sock");

  ASSERT_TRUE(parseEndpoint("tcp:8080", Ep));
  EXPECT_EQ(Ep.Family, Endpoint::Tcp);
  EXPECT_EQ(Ep.Host, "127.0.0.1");
  EXPECT_EQ(Ep.Port, 8080);

  ASSERT_TRUE(parseEndpoint("tcp:10.0.0.8:99", Ep));
  EXPECT_EQ(Ep.Host, "10.0.0.8");
  EXPECT_EQ(Ep.Port, 99);

  EXPECT_FALSE(parseEndpoint("", Ep));
  EXPECT_FALSE(parseEndpoint("unix:", Ep));
  EXPECT_FALSE(parseEndpoint("tcp:", Ep));
  EXPECT_FALSE(parseEndpoint("tcp:notaport", Ep));
  EXPECT_FALSE(parseEndpoint("tcp:70000", Ep));
  EXPECT_FALSE(parseEndpoint("http://x", Ep));
  // Hostnames are rejected at parse time: the connect path has no
  // resolver, so accepting one would mean a retry loop that can never
  // succeed.
  EXPECT_FALSE(parseEndpoint("tcp:localhost:8080", Ep));
}

//===----------------------------------------------------------------------===//
// Exchange-backed cumulative driver
//===----------------------------------------------------------------------===//

TEST(PatchExchange, CumulativeDriverOverExchangeMatchesLocal) {
  // The same buggy workload driven twice with identical seeds: once
  // against a local pipeline, once against a patch server over loopback.
  // The sessions must converge to bit-identical patch sets.
  auto MakeConfig = [] {
    ExterminatorConfig Config;
    Config.MasterSeed = 0xc0de;
    Config.CanaryFillProbability = 0.5;
    Config.Fault.Kind = FaultKind::PrematureFree;
    Config.Fault.TriggerAllocation = 180;
    Config.Fault.PatternSeed = 2;
    return Config;
  };

  EspressoWorkload LocalWork;
  CumulativeDriver Local(LocalWork, MakeConfig());
  const CumulativeOutcome LocalOutcome = Local.run(/*InputSeed=*/5, 150);

  PatchServer Server;
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);
  EspressoWorkload RemoteWork;
  CumulativeDriver Remote(RemoteWork, MakeConfig());
  Remote.attachExchange(Client);
  const CumulativeOutcome RemoteOutcome = Remote.run(/*InputSeed=*/5, 150);

  EXPECT_TRUE(LocalOutcome.Isolated);
  EXPECT_EQ(RemoteOutcome.TransportFailures, 0u);
  EXPECT_EQ(RemoteOutcome.RunsExecuted, LocalOutcome.RunsExecuted);
  EXPECT_EQ(RemoteOutcome.FailuresObserved, LocalOutcome.FailuresObserved);
  EXPECT_EQ(RemoteOutcome.Isolated, LocalOutcome.Isolated);
  EXPECT_EQ(RemoteOutcome.Corrected, LocalOutcome.Corrected);
  EXPECT_TRUE(RemoteOutcome.Patches == LocalOutcome.Patches);
  EXPECT_TRUE(Server.snapshot().Patches == LocalOutcome.Patches);
}

TEST(PatchExchange, TwoClientsShareOneServersPatches) {
  // §6.4 at exchange scale: client A's evidence protects client B.
  PatchServer Server;
  LoopbackTransport Transport(Server);

  PatchClient Alice(Transport);
  ASSERT_TRUE(
      Alice.submitImages({imagesFromTrace(overflowTrace(6), 3), {}}));

  PatchClient Bob(Transport);
  ASSERT_TRUE(Bob.fetchPatches());
  EXPECT_FALSE(Bob.patches().empty());
  EXPECT_TRUE(Bob.patches() == Server.snapshot().Patches);
}

//===----------------------------------------------------------------------===//
// Hardening: stalled peers and connection caps (PR 4)
//===----------------------------------------------------------------------===//

namespace {

/// Connects to a TCP endpoint without sending anything; returns the fd.
int connectRaw(const Endpoint &Ep) {
  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Ep.Port);
  if (::inet_pton(AF_INET, Ep.Host.c_str(), &Addr.sin_addr) != 1 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// True if the server closed \p Fd within \p TimeoutMs (poll reports
/// readable and the read drains to EOF).
bool closedByServer(int Fd, int TimeoutMs) {
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  uint8_t Drain[256];
  for (;;) {
    const auto Now = std::chrono::steady_clock::now();
    if (Now >= Deadline)
      return false;
    const int Remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count());
    pollfd Poll{Fd, POLLIN, 0};
    if (::poll(&Poll, 1, Remaining) <= 0)
      continue;
    const ssize_t N = ::recv(Fd, Drain, sizeof(Drain), 0);
    if (N == 0)
      return true; // EOF: the server hung up
    if (N < 0 && errno != EINTR)
      return true; // reset also counts as "not parked"
  }
}

} // namespace

TEST(PatchExchange, StalledPeerCannotParkAWorkerIndefinitely) {
  PatchServer Server;
  // ONE worker: if the stalled connection parked it forever, no other
  // client could ever be served.
  SocketPatchServer Front(Server, /*Workers=*/1);
  Front.setReadTimeout(200);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  // The stalled peer: half a frame header, then silence.
  const int Stalled = connectRaw(Front.endpoint());
  ASSERT_GE(Stalled, 0);
  const uint8_t Partial[4] = {0x58, 0x50, 0x46, 0x31}; // "XPF1"
  ASSERT_EQ(::send(Stalled, Partial, sizeof(Partial), MSG_NOSIGNAL), 4);

  // A well-behaved client still gets served: the worker is freed after
  // at most one read timeout.
  SocketClientTransport Transport(Front.endpoint());
  PatchClient Client(Transport);
  EXPECT_TRUE(Client.fetchPatches());

  // And the stalled connection itself is cut off (ErrorReply + close),
  // not held open forever.
  EXPECT_TRUE(closedByServer(Stalled, /*TimeoutMs=*/5000));
  ::close(Stalled);
  Front.stop();
}

TEST(PatchExchange, TricklingPeerCannotResetTheFrameDeadline) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/1);
  Front.setReadTimeout(250);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  // Slow loris: one header byte at a time, each gap shorter than the
  // deadline.  A per-recv timeout would reset on every byte; the
  // absolute per-frame deadline must not.
  const int Trickler = connectRaw(Front.endpoint());
  ASSERT_GE(Trickler, 0);
  const uint8_t Header[4] = {0x58, 0x50, 0x46, 0x31}; // "XPF1"
  const auto Start = std::chrono::steady_clock::now();
  bool Closed = false;
  for (int I = 0; !Closed && std::chrono::steady_clock::now() - Start <
                                 std::chrono::seconds(5);
       ++I) {
    ::send(Trickler, Header + (I % 4), 1, MSG_NOSIGNAL);
    Closed = closedByServer(Trickler, /*TimeoutMs=*/100);
  }
  EXPECT_TRUE(Closed);
  ::close(Trickler);

  // The worker came back: a real client round-trips.
  SocketClientTransport Transport(Front.endpoint());
  PatchClient Client(Transport);
  EXPECT_TRUE(Client.fetchPatches());
  Front.stop();
}

TEST(PatchExchange, IdlePeerIsCutOffAfterReadTimeout) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/1);
  Front.setReadTimeout(150);
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  // Connect and send nothing at all: the worker must not idle on the
  // silent connection past the timeout.
  const int Idle = connectRaw(Front.endpoint());
  ASSERT_GE(Idle, 0);
  EXPECT_TRUE(closedByServer(Idle, /*TimeoutMs=*/5000));
  ::close(Idle);
  Front.stop();
}

TEST(PatchExchange, ConnectionCapShedsExcessConnections) {
  PatchServer Server;
  SocketPatchServer Front(Server, /*Workers=*/2);
  Front.setMaxConnections(2);
  Front.setReadTimeout(0); // the held connections stay parked on purpose
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:0", Ep));
  ASSERT_TRUE(Front.listen(Ep));
  ASSERT_TRUE(Front.start());

  // Two connections occupy the cap...
  const int First = connectRaw(Front.endpoint());
  const int Second = connectRaw(Front.endpoint());
  ASSERT_GE(First, 0);
  ASSERT_GE(Second, 0);
  // ...so the third is accepted and immediately closed.
  const int Third = connectRaw(Front.endpoint());
  ASSERT_GE(Third, 0);
  EXPECT_TRUE(closedByServer(Third, /*TimeoutMs=*/5000));
  ::close(Third);

  // Releasing capacity lets new connections through again: close one
  // holder and a real client round-trips.  The retry loop absorbs the
  // window in which the worker has not yet noticed the holder's EOF
  // (until it does, the cap still sheds the new connection).
  ::close(First);
  SocketClientTransport Transport(Front.endpoint());
  PatchClient Client(Transport);
  bool Fetched = false;
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!Fetched && std::chrono::steady_clock::now() < Deadline)
    Fetched = Client.fetchPatches();
  EXPECT_TRUE(Fetched);
  ::close(Second);
  Front.stop();
}

//===----------------------------------------------------------------------===//
// Durable state: crash recovery (StateStore)
//===----------------------------------------------------------------------===//

namespace {

/// A fresh per-test state directory under gtest's temp dir.
std::string freshStateDir(const std::string &Name) {
  const std::string Dir = ::testing::TempDir() + "/xst_" + Name;
  // Start clean: earlier runs of the same test leave files behind —
  // the legacy single snapshot, the journal, and the whole rotated
  // snapshot ring.
  std::remove((Dir + "/journal.xsj").c_str());
  if (DIR *Handle = ::opendir(Dir.c_str())) {
    std::vector<std::string> Stale;
    while (struct dirent *Entry = ::readdir(Handle)) {
      const std::string File = Entry->d_name;
      if (File.rfind("snapshot", 0) == 0 &&
          File.size() >= 4 &&
          File.compare(File.size() - 4, 4, ".xst") == 0)
        Stale.push_back(Dir + "/" + File);
    }
    ::closedir(Handle);
    for (const std::string &Path : Stale)
      std::remove(Path.c_str());
  }
  return Dir;
}

/// The evidence stream the recovery tests feed: two image sets plus a
/// few summaries (enough to grow both patch and Bayes-trial state).
struct EvidenceStream {
  ImageEvidence Overflow;
  ImageEvidence Dangling;
  std::vector<RunSummary> Summaries;
};

EvidenceStream recoveryEvidence() {
  EvidenceStream Stream;
  Stream.Overflow = {imagesFromTrace(overflowTrace(6), 3), {}};
  Stream.Dangling = {imagesFromTrace(danglingTrace(), 3), {}};
  DiagnosisPipeline Scratch;
  for (const HeapImage &Image : Stream.Overflow.Primary)
    Stream.Summaries.push_back(Scratch.summarize(Image, /*Failed=*/true));
  return Stream;
}

/// Feeds \p Stream to \p Server through a loopback client (the same
/// frames a socket client would send).
void submitStream(PatchServer &Server, const EvidenceStream &Stream) {
  LoopbackTransport Transport(Server);
  PatchClient Client(Transport);
  ASSERT_TRUE(Client.submitImages(Stream.Overflow));
  ASSERT_TRUE(Client.submitImages(Stream.Dangling));
  for (const RunSummary &Summary : Stream.Summaries)
    ASSERT_TRUE(Client.submitSummary(Summary, /*CleanStreak=*/0));
}

} // namespace

TEST(StatePersistence, RestartReplaysJournalToBitIdenticalState) {
  const std::string Dir = freshStateDir("replay");
  const EvidenceStream Stream = recoveryEvidence();

  // The uninterrupted reference: a local pipeline fed the same stream.
  DiagnosisPipeline Local;
  Local.submitImages(Stream.Overflow);
  Local.submitImages(Stream.Dangling);
  for (const RunSummary &Summary : Stream.Summaries)
    Local.submitSummary(Summary, 0);

  std::vector<uint8_t> PreCrashState;
  {
    // Original server: attach (snapshot interval high enough that all
    // submissions stay in the journal), ingest, then "crash" — no
    // persistNow, no graceful anything; the destructor is all it gets.
    PatchServer Original;
    StateStore Store(Dir);
    ASSERT_TRUE(Original.attachState(Store, /*SnapshotInterval=*/1000));
    submitStream(Original, Stream);
    EXPECT_GT(Original.stats().JournalAppends, 0u);
    EXPECT_EQ(Original.stats().PersistFailures, 0u);
    PreCrashState = Original.serializeState();
  }
  EXPECT_EQ(PreCrashState, Local.serializeState());

  // Recovery: snapshot + journal replay must land on the bit-identical
  // diagnostic state — same patches, same epoch, same Bayes sums.
  PatchServer Recovered;
  StateStore Store(Dir);
  ASSERT_TRUE(Recovered.attachState(Store));
  EXPECT_EQ(Recovered.serializeState(), PreCrashState);
  EXPECT_TRUE(Recovered.snapshot().Patches == Local.patches());
  EXPECT_EQ(Recovered.snapshot().Epoch, Local.epoch());

  // And the recovered classifier keeps classifying identically: one
  // more summary lands on both and must produce the same factors.
  const CumulativeDiagnosis FromLocal =
      Local.submitSummary(Stream.Summaries.front(), 0);
  LoopbackTransport Transport(Recovered);
  PatchClient Client(Transport);
  CumulativeDiagnosis FromRecovered;
  ASSERT_TRUE(
      Client.submitSummary(Stream.Summaries.front(), 0, &FromRecovered));
  ASSERT_EQ(FromRecovered.Overflows.size(), FromLocal.Overflows.size());
  for (size_t I = 0; I < FromLocal.Overflows.size(); ++I) {
    EXPECT_EQ(FromRecovered.Overflows[I].AllocSite,
              FromLocal.Overflows[I].AllocSite);
    EXPECT_EQ(FromRecovered.Overflows[I].LogBayesFactor,
              FromLocal.Overflows[I].LogBayesFactor);
  }
  ASSERT_EQ(FromRecovered.Danglings.size(), FromLocal.Danglings.size());
  for (size_t I = 0; I < FromLocal.Danglings.size(); ++I)
    EXPECT_EQ(FromRecovered.Danglings[I].LogBayesFactor,
              FromLocal.Danglings[I].LogBayesFactor);
  EXPECT_EQ(Recovered.serializeState(), Local.serializeState());
}

TEST(StatePersistence, SnapshotIntervalCompactsAndStillRecovers) {
  const std::string Dir = freshStateDir("interval");
  const EvidenceStream Stream = recoveryEvidence();

  std::vector<uint8_t> PreCrashState;
  {
    PatchServer Original;
    StateStore Store(Dir);
    // Interval 1: every submission immediately folds into a snapshot.
    ASSERT_TRUE(Original.attachState(Store, /*SnapshotInterval=*/1));
    submitStream(Original, Stream);
    EXPECT_GT(Original.stats().SnapshotsWritten, 1u);
    PreCrashState = Original.serializeState();
  }
  PatchServer Recovered;
  StateStore Store(Dir);
  ASSERT_TRUE(Recovered.attachState(Store));
  EXPECT_EQ(Recovered.serializeState(), PreCrashState);
}

TEST(StatePersistence, TruncatedHeadSnapshotFallsBackToPreviousGeneration) {
  const std::string Dir = freshStateDir("truncsnap");
  const EvidenceStream Stream = recoveryEvidence();

  // Build two durable generations with distinct states: generation A
  // (overflow evidence only) and generation B (dangling evidence on
  // top).  The intermediate attach re-snapshots A, so after pruning
  // (keep defaults to 2) the ring holds one snapshot of each state.
  std::vector<uint8_t> StateA, StateB;
  {
    PatchServer Original;
    StateStore Store(Dir);
    ASSERT_TRUE(Original.attachState(Store, /*SnapshotInterval=*/1000));
    LoopbackTransport Transport(Original);
    PatchClient Client(Transport);
    ASSERT_TRUE(Client.submitImages(Stream.Overflow));
    ASSERT_TRUE(Original.persistNow());
    StateA = Original.serializeState();
  }
  {
    PatchServer Middle;
    StateStore Store(Dir);
    ASSERT_TRUE(Middle.attachState(Store, /*SnapshotInterval=*/1000));
    LoopbackTransport Transport(Middle);
    PatchClient Client(Transport);
    ASSERT_TRUE(Client.submitImages(Stream.Dangling));
    ASSERT_TRUE(Middle.persistNow());
    StateB = Middle.serializeState();
    ASSERT_NE(StateA, StateB);
  }

  // Tear the head snapshot: drop its tail (what an interrupted
  // non-atomic write would have left).
  {
    StateStore Probe(Dir);
    const std::vector<std::string> Ring = Probe.snapshotFiles();
    ASSERT_GE(Ring.size(), 2u);
    std::vector<uint8_t> Snap;
    ASSERT_TRUE(readFileBytes(Probe.snapshotPath(), Snap));
    ASSERT_GT(Snap.size(), 16u);
    Snap.resize(Snap.size() - 11);
    ASSERT_TRUE(writeFileBytes(Probe.snapshotPath(), Snap));
  }

  // Recovery falls back to the previous generation — state A, whole,
  // never a half-load of the torn head.
  {
    PatchServer Recovered;
    StateStore Store(Dir);
    ASSERT_TRUE(Recovered.attachState(Store));
    EXPECT_EQ(Recovered.serializeState(), StateA);
  }

  // When every snapshot in the ring is torn there is nothing left to
  // fall back to: attach must fail and leave the pipeline blank.
  {
    StateStore Probe(Dir);
    for (const std::string &Path : Probe.snapshotFiles()) {
      std::vector<uint8_t> Snap;
      ASSERT_TRUE(readFileBytes(Path, Snap));
      ASSERT_GT(Snap.size(), 16u);
      Snap.resize(Snap.size() - 11);
      ASSERT_TRUE(writeFileBytes(Path, Snap));
    }
    PatchServer Recovered;
    StateStore Store(Dir);
    std::string Error;
    EXPECT_FALSE(Recovered.attachState(Store, 64, &Error));
    EXPECT_FALSE(Error.empty());
    EXPECT_EQ(Recovered.snapshot().Epoch, 0u);
    EXPECT_TRUE(Recovered.snapshot().Patches.empty());
  }
}

TEST(StatePersistence, TornJournalTailIsSkipped) {
  const std::string Dir = freshStateDir("torntail");
  std::vector<uint8_t> PreCrashState;
  {
    PatchServer Original;
    StateStore Store(Dir);
    ASSERT_TRUE(Original.attachState(Store, /*SnapshotInterval=*/1000));
    submitStream(Original, recoveryEvidence());
    PreCrashState = Original.serializeState();
  }
  // Simulate a crash mid-append: a record whose length prefix promises
  // more bytes than the file holds.
  StateStore Probe(Dir);
  std::vector<uint8_t> Journal;
  ASSERT_TRUE(readFileBytes(Probe.journalPath(), Journal));
  const std::vector<uint8_t> Torn = {0x40, 0x00, 0x00, 0x00, 1, 2, 3};
  Journal.insert(Journal.end(), Torn.begin(), Torn.end());
  ASSERT_TRUE(writeFileBytes(Probe.journalPath(), Journal));

  PatchServer Recovered;
  StateStore Store(Dir);
  ASSERT_TRUE(Recovered.attachState(Store));
  EXPECT_EQ(Recovered.serializeState(), PreCrashState);
}

TEST(StatePersistence, CorruptedJournalRecordStopsReplayThere) {
  const std::string Dir = freshStateDir("badsum");
  {
    PatchServer Original;
    StateStore Store(Dir);
    ASSERT_TRUE(Original.attachState(Store, /*SnapshotInterval=*/1000));
    submitStream(Original, recoveryEvidence());
  }
  // Flip one byte inside the last record's payload: its checksum no
  // longer matches, so replay must stop before it — without crashing.
  StateStore Probe(Dir);
  std::vector<uint8_t> Journal;
  ASSERT_TRUE(readFileBytes(Probe.journalPath(), Journal));
  ASSERT_GT(Journal.size(), 20u);
  Journal[Journal.size() - 10] ^= 0xff;
  ASSERT_TRUE(writeFileBytes(Probe.journalPath(), Journal));

  PatchServer Recovered;
  StateStore Store(Dir);
  ASSERT_TRUE(Recovered.attachState(Store));
  // The last record (the third summary) is gone; everything before it
  // replayed.
  EXPECT_EQ(Recovered.cumulativeRuns(), 2u);
}

TEST(StatePersistence, RecoveredServerKeepsEpochAndClientRefetchesOnce) {
  const std::string Dir = freshStateDir("refetch");
  const EvidenceStream Stream = recoveryEvidence();

  uint64_t OldInstance = 0, OldEpoch = 0;
  PatchSet OldPatches;
  {
    PatchServer Original;
    StateStore Store(Dir);
    ASSERT_TRUE(Original.attachState(Store));
    submitStream(Original, Stream);
    LoopbackTransport Transport(Original);
    PatchClient Client(Transport);
    ASSERT_TRUE(Client.fetchPatches());
    OldInstance = Client.serverInstance();
    OldEpoch = Client.epoch();
    OldPatches = Client.patches();
    ASSERT_GT(OldEpoch, 0u);
  }

  PatchServer Recovered;
  StateStore Store(Dir);
  ASSERT_TRUE(Recovered.attachState(Store));
  // Same epoch, fresh instance: the (instance, epoch) staleness pair
  // can never collide with the pre-crash server's.
  ASSERT_EQ(Recovered.snapshot().Epoch, OldEpoch);
  ASSERT_NE(Recovered.instance(), OldInstance);

  // A client still holding the pre-crash pair re-fetches exactly once...
  LoopbackTransport Transport(Recovered);
  auto FetchWith = [&](uint64_t Epoch, uint64_t Instance,
                       PatchesReply &Out) {
    std::vector<std::vector<uint8_t>> Responses;
    ASSERT_TRUE(Transport.exchange(
        {encodeFrame(MessageType::FetchPatches,
                     encodeFetchPatches(Epoch, Instance))},
        Responses));
    Frame Reply;
    size_t Consumed = 0;
    ASSERT_EQ(decodeFrame(Responses[0].data(), Responses[0].size(), Reply,
                          Consumed),
              FrameError::None);
    ASSERT_TRUE(decodePatchesReply(Reply.Payload, Out));
  };
  PatchesReply First;
  FetchWith(OldEpoch, OldInstance, First);
  EXPECT_TRUE(First.Modified);
  EXPECT_TRUE(First.Patches == OldPatches);
  EXPECT_EQ(First.Epoch, OldEpoch);
  EXPECT_EQ(First.Instance, Recovered.instance());

  // ...and holding the recovered pair, not again.
  PatchesReply Second;
  FetchWith(First.Epoch, First.Instance, Second);
  EXPECT_FALSE(Second.Modified);
}

TEST(StatePersistence, SeedMergesIntoRestoredStateAndIsJournaled) {
  const std::string Dir = freshStateDir("seed");
  const EvidenceStream Stream = recoveryEvidence();
  {
    PatchServer Original;
    StateStore Store(Dir);
    ASSERT_TRUE(Original.attachState(Store));
    submitStream(Original, Stream);
  }

  PatchSet Seed;
  Seed.addPad(0xfeedface, 96); // a site the evidence never produced
  PatchSet Expected;
  {
    PatchServer Recovered;
    StateStore Store(Dir);
    ASSERT_TRUE(Recovered.attachState(Store));
    const PatchSnapshot Restored = Recovered.snapshot();
    const uint64_t EpochBefore = Restored.Epoch;
    Recovered.seedPatches(Seed); // state dir is the base; seed merges in
    Expected = Restored.Patches;
    Expected.merge(Seed);
    EXPECT_TRUE(Recovered.snapshot().Patches == Expected);
    EXPECT_EQ(Recovered.snapshot().Epoch, EpochBefore + 1);
    // Crash again (no persistNow): the seed must have been journaled.
  }
  PatchServer Again;
  StateStore Store(Dir);
  ASSERT_TRUE(Again.attachState(Store));
  EXPECT_TRUE(Again.snapshot().Patches == Expected);
}

TEST(StatePersistence, ForeignJournalConflictingEpochsRejected) {
  const std::string DirA = freshStateDir("conflict_a");
  const std::string DirB = freshStateDir("conflict_b");

  // Server A: fresh attach (snapshot generation 1, epoch 0), then one
  // epoch-bumping image submission left in the journal.
  {
    PatchServer A;
    StateStore Store(DirA);
    ASSERT_TRUE(A.attachState(Store, /*SnapshotInterval=*/1000));
    LoopbackTransport Transport(A);
    PatchClient Client(Transport);
    ASSERT_TRUE(
        Client.submitImages({imagesFromTrace(overflowTrace(6), 3), {}}));
    ASSERT_EQ(A.snapshot().Epoch, 1u);
  }
  // Server B: seeded *before* attach, so its generation-1 snapshot
  // already sits at epoch 1 with different patches.
  {
    PatchServer B;
    PatchSet Seed;
    Seed.addPad(0xb00b00, 32);
    B.seedPatches(Seed);
    StateStore Store(DirB);
    ASSERT_TRUE(B.attachState(Store, /*SnapshotInterval=*/1000));
  }
  // Graft A's journal (same generation, records expecting EpochAfter 1)
  // onto B's snapshot: replaying A's delta on top of B's state lands on
  // epoch 2 ≠ 1 — the journal does not belong to this snapshot.
  std::vector<uint8_t> ForeignJournal;
  ASSERT_TRUE(
      readFileBytes(StateStore(DirA).journalPath(), ForeignJournal));
  ASSERT_TRUE(
      writeFileBytes(StateStore(DirB).journalPath(), ForeignJournal));

  PatchServer Grafted;
  StateStore Store(DirB);
  std::string Error;
  EXPECT_FALSE(Grafted.attachState(Store, 64, &Error));
  EXPECT_NE(Error.find("conflicting epochs"), std::string::npos);
  // The failed attach left the serving pipeline untouched — no
  // partially replayed foreign history.
  EXPECT_EQ(Grafted.snapshot().Epoch, 0u);
  EXPECT_TRUE(Grafted.snapshot().Patches.empty());
}

TEST(StatePersistence, CorruptedJournalHeaderIsRejected) {
  const std::string Dir = freshStateDir("badheader");
  {
    PatchServer Original;
    StateStore Store(Dir);
    ASSERT_TRUE(Original.attachState(Store, /*SnapshotInterval=*/1000));
    submitStream(Original, recoveryEvidence());
  }
  // Header writes are atomic, so a flipped magic byte is external
  // corruption of records clients were told are durable: refuse to
  // serve rather than silently dropping them.
  StateStore Probe(Dir);
  std::vector<uint8_t> Journal;
  ASSERT_TRUE(readFileBytes(Probe.journalPath(), Journal));
  Journal[0] ^= 0xff;
  ASSERT_TRUE(writeFileBytes(Probe.journalPath(), Journal));

  PatchServer Recovered;
  StateStore Store(Dir);
  std::string Error;
  EXPECT_FALSE(Recovered.attachState(Store, 64, &Error));
}

TEST(StatePersistence, JournalWithoutSnapshotIsCorrupt) {
  const std::string Dir = freshStateDir("orphan");
  {
    PatchServer Original;
    StateStore Store(Dir);
    ASSERT_TRUE(Original.attachState(Store, /*SnapshotInterval=*/1000));
    submitStream(Original, recoveryEvidence());
  }
  StateStore Probe(Dir);
  ASSERT_EQ(std::remove(Probe.snapshotPath().c_str()), 0);

  PatchServer Recovered;
  StateStore Store(Dir);
  std::string Error;
  EXPECT_FALSE(Recovered.attachState(Store, 64, &Error));
}

TEST(StatePersistence, SnapshotsAreCompressedStrictlySmallerThanRaw) {
  // The PR 10 acceptance pin: the on-disk snapshot file must be
  // strictly smaller than the raw pipeline state it holds, and load
  // back bit-identically.
  const std::string Dir = freshStateDir("codecsnap");
  PatchServer Server;
  submitStream(Server, recoveryEvidence());
  const std::vector<uint8_t> RawState = Server.serializeState();
  ASSERT_GT(RawState.size(), 0u);

  {
    StateStore Store(Dir);
    ASSERT_TRUE(Store.writeSnapshot(RawState));
    std::vector<uint8_t> FileBytes;
    ASSERT_TRUE(readFileBytes(Store.snapshotPath(), FileBytes));
    EXPECT_LT(FileBytes.size(), RawState.size())
        << "snapshot file " << FileBytes.size() << " B vs raw state "
        << RawState.size() << " B";
  }

  std::vector<uint8_t> Restored;
  std::vector<StateStore::JournalRecord> Records;
  StateStore Reopened(Dir);
  ASSERT_EQ(Reopened.load(Restored, Records),
            StateStore::LoadResult::Restored);
  EXPECT_EQ(Restored, RawState);
  EXPECT_TRUE(Records.empty());
}

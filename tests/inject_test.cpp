//===- tests/inject_test.cpp - Fault injector tests ----------------------------===//

#include "inject/FaultInjector.h"

#include "diefast/DieFastHeap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace exterminator;

namespace {

DieFastConfig testConfig(uint64_t Seed = 1) {
  DieFastConfig Config;
  Config.Heap.Seed = Seed;
  Config.Heap.InitialSlots = 16;
  return Config;
}

FaultPlan overflowPlan(uint64_t Trigger, uint32_t Bytes) {
  FaultPlan Plan;
  Plan.Kind = FaultKind::BufferOverflow;
  Plan.TriggerAllocation = Trigger;
  Plan.OverflowBytes = Bytes;
  Plan.PatternSeed = 99;
  return Plan;
}

} // namespace

TEST(FaultInjector, NoPlanIsTransparent) {
  DieFastHeap Heap(testConfig());
  FaultInjector Injector(Heap, FaultPlan());
  void *Ptr = Injector.allocate(64);
  ASSERT_NE(Ptr, nullptr);
  Injector.deallocate(Ptr);
  EXPECT_FALSE(Injector.faultFired());
  EXPECT_EQ(Heap.errorsSignalled(), 0u);
}

TEST(FaultInjector, OverflowWritesPastRequestedEnd) {
  DieFastHeap Heap(testConfig());
  FaultInjector Injector(Heap, overflowPlan(3, 6));
  Injector.allocate(64);
  Injector.allocate(64);
  uint8_t *Target = static_cast<uint8_t *>(Injector.allocate(64));
  EXPECT_TRUE(Injector.faultFired());
  // Bytes past the end are nonzero (the deterministic overflow string).
  bool AnyNonZero = false;
  for (int I = 0; I < 6; ++I)
    AnyNonZero |= Target[64 + I] != 0;
  EXPECT_TRUE(AnyNonZero);
}

TEST(FaultInjector, OverflowStringIsDeterministicAcrossHeapSeeds) {
  // The injected fault must be identical across differently-randomized
  // heaps — the §2.1 deterministic-error assumption.
  uint8_t StringA[8], StringB[8];
  for (int Round = 0; Round < 2; ++Round) {
    DieFastHeap Heap(testConfig(Round == 0 ? 1 : 999));
    FaultInjector Injector(Heap, overflowPlan(2, 8));
    Injector.allocate(64);
    uint8_t *Target = static_cast<uint8_t *>(Injector.allocate(64));
    std::memcpy(Round == 0 ? StringA : StringB, Target + 64, 8);
  }
  EXPECT_EQ(std::memcmp(StringA, StringB, 8), 0);
}

TEST(FaultInjector, DelayedOverflowFiresLater) {
  DieFastHeap Heap(testConfig());
  FaultPlan Plan = overflowPlan(1, 4);
  Plan.OverflowDelay = 3;
  FaultInjector Injector(Heap, Plan);
  uint8_t *Target = static_cast<uint8_t *>(Injector.allocate(64));
  EXPECT_FALSE(Injector.faultFired());
  Injector.allocate(64);
  Injector.allocate(64);
  EXPECT_FALSE(Injector.faultFired());
  Injector.allocate(64); // allocation 4 = trigger + delay
  EXPECT_TRUE(Injector.faultFired());
  EXPECT_NE(Target[64], 0);
}

TEST(FaultInjector, OverflowFiresOnFreeIfTargetDiesEarly) {
  DieFastHeap Heap(testConfig());
  FaultPlan Plan = overflowPlan(1, 4);
  Plan.OverflowDelay = 1000; // would never fire by allocation count
  FaultInjector Injector(Heap, Plan);
  uint8_t *Target = static_cast<uint8_t *>(Injector.allocate(64));
  Injector.deallocate(Target);
  EXPECT_TRUE(Injector.faultFired());
}

TEST(FaultInjector, PrematureFreeDanglesALiveObject) {
  DieFastHeap Heap(testConfig());
  FaultPlan Plan;
  Plan.Kind = FaultKind::PrematureFree;
  Plan.TriggerAllocation = 10;
  Plan.PatternSeed = 5;
  Plan.VictimWindow = 4;
  FaultInjector Injector(Heap, Plan);

  std::vector<void *> Ptrs;
  for (int I = 0; I < 10; ++I)
    Ptrs.push_back(Injector.allocate(32));
  ASSERT_TRUE(Injector.faultFired());
  const void *Victim = Injector.injectedVictim();
  ASSERT_NE(Victim, nullptr);
  // The victim is one of the program's pointers and is no longer live.
  EXPECT_NE(std::find(Ptrs.begin(), Ptrs.end(), Victim), Ptrs.end());
  EXPECT_FALSE(Heap.heap().isLivePointer(Victim));
}

TEST(FaultInjector, VictimChoiceIsDeterministicAcrossHeapSeeds) {
  // The victim is chosen by application-level allocation order, so the
  // same logical object dangles under every heap randomization.
  size_t IndexA = ~size_t(0), IndexB = ~size_t(0);
  for (int Round = 0; Round < 2; ++Round) {
    DieFastHeap Heap(testConfig(Round == 0 ? 3 : 777));
    FaultPlan Plan;
    Plan.Kind = FaultKind::PrematureFree;
    Plan.TriggerAllocation = 8;
    Plan.PatternSeed = 21;
    FaultInjector Injector(Heap, Plan);
    std::vector<void *> Ptrs;
    for (int I = 0; I < 8; ++I)
      Ptrs.push_back(Injector.allocate(32));
    const void *Victim = Injector.injectedVictim();
    const size_t Index =
        std::find(Ptrs.begin(), Ptrs.end(), Victim) - Ptrs.begin();
    (Round == 0 ? IndexA : IndexB) = Index;
  }
  EXPECT_EQ(IndexA, IndexB);
  EXPECT_LT(IndexA, 8u);
}

TEST(FaultInjector, ProgramsOwnFreeOfVictimBecomesDoubleFree) {
  DieFastHeap Heap(testConfig());
  FaultPlan Plan;
  Plan.Kind = FaultKind::PrematureFree;
  Plan.TriggerAllocation = 5;
  FaultInjector Injector(Heap, Plan);
  std::vector<void *> Ptrs;
  for (int I = 0; I < 5; ++I)
    Ptrs.push_back(Injector.allocate(32));
  ASSERT_TRUE(Injector.faultFired());
  // The program eventually frees everything, including the victim.
  for (void *Ptr : Ptrs)
    Injector.deallocate(Ptr);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
}

TEST(FaultInjector, DifferentSeedsPickDifferentVictims) {
  std::vector<size_t> Indexes;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    DieFastHeap Heap(testConfig());
    FaultPlan Plan;
    Plan.Kind = FaultKind::PrematureFree;
    Plan.TriggerAllocation = 16;
    Plan.PatternSeed = Seed;
    Plan.VictimWindow = 16;
    FaultInjector Injector(Heap, Plan);
    std::vector<void *> Ptrs;
    for (int I = 0; I < 16; ++I)
      Ptrs.push_back(Injector.allocate(32));
    Indexes.push_back(std::find(Ptrs.begin(), Ptrs.end(),
                                Injector.injectedVictim()) -
                      Ptrs.begin());
  }
  // Not all eight plans should hit the same victim.
  bool AllSame = true;
  for (size_t I : Indexes)
    AllSame &= I == Indexes[0];
  EXPECT_FALSE(AllSame);
}

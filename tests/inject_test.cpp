//===- tests/inject_test.cpp - Fault injector tests ----------------------------===//

#include "inject/FaultInjector.h"

#include "alloc/ConcurrentAllocator.h"
#include "diefast/DieFastHeap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace exterminator;

namespace {

DieFastConfig testConfig(uint64_t Seed = 1) {
  DieFastConfig Config;
  Config.Heap.Seed = Seed;
  Config.Heap.InitialSlots = 16;
  return Config;
}

FaultPlan overflowPlan(uint64_t Trigger, uint32_t Bytes) {
  FaultPlan Plan;
  Plan.Kind = FaultKind::BufferOverflow;
  Plan.TriggerAllocation = Trigger;
  Plan.OverflowBytes = Bytes;
  Plan.PatternSeed = 99;
  return Plan;
}

} // namespace

TEST(FaultInjector, NoPlanIsTransparent) {
  DieFastHeap Heap(testConfig());
  FaultInjector Injector(Heap, FaultPlan());
  void *Ptr = Injector.allocate(64);
  ASSERT_NE(Ptr, nullptr);
  Injector.deallocate(Ptr);
  EXPECT_FALSE(Injector.faultFired());
  EXPECT_EQ(Heap.errorsSignalled(), 0u);
}

TEST(FaultInjector, OverflowWritesPastRequestedEnd) {
  DieFastHeap Heap(testConfig());
  FaultInjector Injector(Heap, overflowPlan(3, 6));
  Injector.allocate(64);
  Injector.allocate(64);
  uint8_t *Target = static_cast<uint8_t *>(Injector.allocate(64));
  EXPECT_TRUE(Injector.faultFired());
  // Bytes past the end are nonzero (the deterministic overflow string).
  bool AnyNonZero = false;
  for (int I = 0; I < 6; ++I)
    AnyNonZero |= Target[64 + I] != 0;
  EXPECT_TRUE(AnyNonZero);
}

TEST(FaultInjector, OverflowStringIsDeterministicAcrossHeapSeeds) {
  // The injected fault must be identical across differently-randomized
  // heaps — the §2.1 deterministic-error assumption.
  uint8_t StringA[8], StringB[8];
  for (int Round = 0; Round < 2; ++Round) {
    DieFastHeap Heap(testConfig(Round == 0 ? 1 : 999));
    FaultInjector Injector(Heap, overflowPlan(2, 8));
    Injector.allocate(64);
    uint8_t *Target = static_cast<uint8_t *>(Injector.allocate(64));
    std::memcpy(Round == 0 ? StringA : StringB, Target + 64, 8);
  }
  EXPECT_EQ(std::memcmp(StringA, StringB, 8), 0);
}

TEST(FaultInjector, DelayedOverflowFiresLater) {
  DieFastHeap Heap(testConfig());
  FaultPlan Plan = overflowPlan(1, 4);
  Plan.OverflowDelay = 3;
  FaultInjector Injector(Heap, Plan);
  uint8_t *Target = static_cast<uint8_t *>(Injector.allocate(64));
  EXPECT_FALSE(Injector.faultFired());
  Injector.allocate(64);
  Injector.allocate(64);
  EXPECT_FALSE(Injector.faultFired());
  Injector.allocate(64); // allocation 4 = trigger + delay
  EXPECT_TRUE(Injector.faultFired());
  EXPECT_NE(Target[64], 0);
}

TEST(FaultInjector, OverflowFiresOnFreeIfTargetDiesEarly) {
  DieFastHeap Heap(testConfig());
  FaultPlan Plan = overflowPlan(1, 4);
  Plan.OverflowDelay = 1000; // would never fire by allocation count
  FaultInjector Injector(Heap, Plan);
  uint8_t *Target = static_cast<uint8_t *>(Injector.allocate(64));
  Injector.deallocate(Target);
  EXPECT_TRUE(Injector.faultFired());
}

TEST(FaultInjector, PrematureFreeDanglesALiveObject) {
  DieFastHeap Heap(testConfig());
  FaultPlan Plan;
  Plan.Kind = FaultKind::PrematureFree;
  Plan.TriggerAllocation = 10;
  Plan.PatternSeed = 5;
  Plan.VictimWindow = 4;
  FaultInjector Injector(Heap, Plan);

  std::vector<void *> Ptrs;
  for (int I = 0; I < 10; ++I)
    Ptrs.push_back(Injector.allocate(32));
  ASSERT_TRUE(Injector.faultFired());
  const void *Victim = Injector.injectedVictim();
  ASSERT_NE(Victim, nullptr);
  // The victim is one of the program's pointers and is no longer live.
  EXPECT_NE(std::find(Ptrs.begin(), Ptrs.end(), Victim), Ptrs.end());
  EXPECT_FALSE(Heap.heap().isLivePointer(Victim));
}

TEST(FaultInjector, VictimChoiceIsDeterministicAcrossHeapSeeds) {
  // The victim is chosen by application-level allocation order, so the
  // same logical object dangles under every heap randomization.
  size_t IndexA = ~size_t(0), IndexB = ~size_t(0);
  for (int Round = 0; Round < 2; ++Round) {
    DieFastHeap Heap(testConfig(Round == 0 ? 3 : 777));
    FaultPlan Plan;
    Plan.Kind = FaultKind::PrematureFree;
    Plan.TriggerAllocation = 8;
    Plan.PatternSeed = 21;
    FaultInjector Injector(Heap, Plan);
    std::vector<void *> Ptrs;
    for (int I = 0; I < 8; ++I)
      Ptrs.push_back(Injector.allocate(32));
    const void *Victim = Injector.injectedVictim();
    const size_t Index =
        std::find(Ptrs.begin(), Ptrs.end(), Victim) - Ptrs.begin();
    (Round == 0 ? IndexA : IndexB) = Index;
  }
  EXPECT_EQ(IndexA, IndexB);
  EXPECT_LT(IndexA, 8u);
}

TEST(FaultInjector, ProgramsOwnFreeOfVictimBecomesDoubleFree) {
  DieFastHeap Heap(testConfig());
  FaultPlan Plan;
  Plan.Kind = FaultKind::PrematureFree;
  Plan.TriggerAllocation = 5;
  FaultInjector Injector(Heap, Plan);
  std::vector<void *> Ptrs;
  for (int I = 0; I < 5; ++I)
    Ptrs.push_back(Injector.allocate(32));
  ASSERT_TRUE(Injector.faultFired());
  // The program eventually frees everything, including the victim.
  for (void *Ptr : Ptrs)
    Injector.deallocate(Ptr);
  EXPECT_EQ(Heap.stats().DoubleFrees, 1u);
}

TEST(FaultInjector, DifferentSeedsPickDifferentVictims) {
  std::vector<size_t> Indexes;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    DieFastHeap Heap(testConfig());
    FaultPlan Plan;
    Plan.Kind = FaultKind::PrematureFree;
    Plan.TriggerAllocation = 16;
    Plan.PatternSeed = Seed;
    Plan.VictimWindow = 16;
    FaultInjector Injector(Heap, Plan);
    std::vector<void *> Ptrs;
    for (int I = 0; I < 16; ++I)
      Ptrs.push_back(Injector.allocate(32));
    Indexes.push_back(std::find(Ptrs.begin(), Ptrs.end(),
                                Injector.injectedVictim()) -
                      Ptrs.begin());
  }
  // Not all eight plans should hit the same victim.
  bool AllSame = true;
  for (size_t I : Indexes)
    AllSame &= I == Indexes[0];
  EXPECT_FALSE(AllSame);
}

//===----------------------------------------------------------------------===//
// Hardware fault models (PR 9)
//===----------------------------------------------------------------------===//

namespace {

FaultPlan hardwarePlan(FaultKind Kind, uint64_t Trigger, uint64_t Seed) {
  FaultPlan Plan;
  Plan.Kind = Kind;
  Plan.TriggerAllocation = Trigger;
  Plan.PatternSeed = Seed;
  return Plan;
}

/// Canonical hardware-fault driver: churn that leaves freed, canaried
/// slots (the preferred victims), the trigger crossing, then trailing
/// activity so StuckAt has rewrites to re-corrupt.
void driveHardwareOps(FaultInjector &Injector) {
  std::vector<void *> Ptrs;
  for (int I = 0; I < 16; ++I)
    Ptrs.push_back(Injector.allocate(64));
  for (int I = 0; I < 16; I += 2)
    Injector.deallocate(Ptrs[I]);
  // Enough trailing recycling that the victim slot is drawn again and
  // both zero-filled and canary-refilled — the rewrites StuckAt re-forces.
  for (int I = 0; I < 60; ++I) {
    void *Ptr = Injector.allocate(64);
    Injector.deallocate(Ptr);
  }
}

std::vector<FaultInjector::InjectedFlip>
runHardware(FaultKind Kind, uint64_t HeapSeed, uint64_t PatternSeed,
            FaultInjectorStats *StatsOut = nullptr) {
  DieFastHeap Heap(testConfig(HeapSeed));
  FaultInjector Injector(Heap, hardwarePlan(Kind, 20, PatternSeed));
  Injector.attachHeap(&Heap.heap());
  driveHardwareOps(Injector);
  if (StatsOut)
    *StatsOut = Injector.injectorStats();
  return Injector.injectedFlips();
}

bool flipsEqual(const std::vector<FaultInjector::InjectedFlip> &A,
                const std::vector<FaultInjector::InjectedFlip> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].AllocIndex != B[I].AllocIndex ||
        A[I].ByteOffset != B[I].ByteOffset || A[I].Mask != B[I].Mask)
      return false;
  return true;
}

} // namespace

TEST(HardwareFault, ReplayIsBitIdenticalPerSeed) {
  // Same plan seed + same heap seed must reproduce the exact corruption:
  // (victim allocation index, byte offset, XOR mask) sequences match.
  for (FaultKind Kind :
       {FaultKind::BitFlip, FaultKind::StuckAt, FaultKind::RowCluster}) {
    const auto RunA = runHardware(Kind, 5, 42);
    const auto RunB = runHardware(Kind, 5, 42);
    EXPECT_FALSE(RunA.empty()) << "kind " << int(Kind);
    EXPECT_TRUE(flipsEqual(RunA, RunB)) << "kind " << int(Kind);
  }
}

TEST(HardwareFault, BitFlipDecorrelatesAcrossHeapSeeds) {
  // Placement keying: differently-randomized heaps put different objects
  // at the fault's physical location, so the struck allocation index
  // and/or offset varies across heap seeds — unlike a software bug.
  std::vector<std::pair<uint64_t, uint32_t>> Struck;
  for (uint64_t HeapSeed = 1; HeapSeed <= 8; ++HeapSeed) {
    const auto Flips = runHardware(FaultKind::BitFlip, HeapSeed, 42);
    ASSERT_FALSE(Flips.empty());
    Struck.emplace_back(Flips[0].AllocIndex, Flips[0].ByteOffset);
  }
  bool AllSame = true;
  for (const auto &S : Struck)
    AllSame &= S == Struck[0];
  EXPECT_FALSE(AllSame);
}

TEST(HardwareFault, BitFlipFlipsRequestedBitCount) {
  DieFastHeap Heap(testConfig(9));
  FaultPlan Plan = hardwarePlan(FaultKind::BitFlip, 20, 7);
  Plan.FlipBits = 3;
  FaultInjector Injector(Heap, Plan);
  Injector.attachHeap(&Heap.heap());
  driveHardwareOps(Injector);
  EXPECT_TRUE(Injector.faultFired());
  EXPECT_EQ(Injector.injectorStats().HardwareFaultEvents, 1u);
  EXPECT_EQ(Injector.injectorStats().BitsFlipped, 3u);
  // The software counter stays untouched: this is not a site bug.
  EXPECT_EQ(Injector.injectorStats().SoftwareFaultsFired, 0u);
}

TEST(HardwareFault, StuckAtRecorruptsAfterEveryRewrite) {
  DieFastHeap Heap(testConfig(11));
  FaultInjector Injector(Heap, hardwarePlan(FaultKind::StuckAt, 20, 5));
  Injector.attachHeap(&Heap.heap());
  driveHardwareOps(Injector);
  ASSERT_TRUE(Injector.faultFired());
  const auto &Flips = Injector.injectedFlips();
  ASSERT_FALSE(Flips.empty());
  const uint64_t Before = Injector.injectorStats().StuckAtRewrites;
  EXPECT_GE(Before, 1u);
  // Faithfully rewrite the stuck cell, as a canary refill or a new
  // occupant would; the next heap operation re-forces the stuck bit.
  uint8_t *Cell = static_cast<uint8_t *>(
                      const_cast<void *>(Injector.injectedVictim())) +
                  Flips[0].ByteOffset;
  *Cell = static_cast<uint8_t>(~*Cell);
  void *Ptr = Injector.allocate(8);
  Injector.deallocate(Ptr);
  EXPECT_GE(Injector.injectorStats().StuckAtRewrites, Before + 1);
  EXPECT_EQ(Injector.injectedFlips().size(),
            Injector.injectorStats().StuckAtRewrites);
}

TEST(HardwareFault, RowClusterCorruptsMultipleObjects) {
  FaultInjectorStats Stats;
  const auto Flips = runHardware(FaultKind::RowCluster, 13, 3, &Stats);
  // A 1 KiB row over 64-byte slots spans many tracked objects.
  EXPECT_GE(Stats.RowObjectsCorrupted, 2u);
  EXPECT_EQ(Flips.size(), Stats.RowObjectsCorrupted);
  EXPECT_EQ(Stats.BitsFlipped, Stats.RowObjectsCorrupted);
}

TEST(HardwareFault, ConcurrentCaptureMatchesSequential) {
  // The same fault against the PR 7 front-end (magazine of one, single
  // cache: bit-identical backend placements) must inject the identical
  // corruption — hardware injection is a property of the heap layout,
  // not of which front-end drives it.
  for (FaultKind Kind : {FaultKind::BitFlip, FaultKind::RowCluster}) {
    DieFastConfig Sequential = testConfig(31);
    Sequential.Heap.GuardBytes = 4096;
    DieFastHeap Direct(Sequential);
    FaultInjector SeqInjector(Direct, hardwarePlan(Kind, 20, 17));
    SeqInjector.attachHeap(&Direct.heap());
    driveHardwareOps(SeqInjector);

    ConcurrentAllocatorConfig Cfg;
    Cfg.Heap = Sequential.Heap;
    Cfg.MagazineSize = 1;
    Cfg.DieFastCanaries = true;
    Cfg.CanaryFillProbability = Sequential.CanaryFillProbability;
    Cfg.ZeroFillAllocations = Sequential.ZeroFillAllocations;
    ConcurrentAllocator Front(Cfg);
    FaultInjector ConcInjector(Front, hardwarePlan(Kind, 20, 17));
    ConcInjector.attachHeap(&Front.backend());
    driveHardwareOps(ConcInjector);

    EXPECT_FALSE(SeqInjector.injectedFlips().empty()) << "kind " << int(Kind);
    EXPECT_TRUE(
        flipsEqual(SeqInjector.injectedFlips(), ConcInjector.injectedFlips()))
        << "kind " << int(Kind);
  }
}

TEST(HardwareFault, FallbackWithoutBackendStillReplays) {
  // Without an attached heap the injector keys victims by allocation
  // order: still deterministic per seed, just not placement-decorrelated.
  DieFastHeap HeapA(testConfig(3));
  FaultInjector InjectorA(HeapA, hardwarePlan(FaultKind::BitFlip, 20, 9));
  driveHardwareOps(InjectorA);
  DieFastHeap HeapB(testConfig(3));
  FaultInjector InjectorB(HeapB, hardwarePlan(FaultKind::BitFlip, 20, 9));
  driveHardwareOps(InjectorB);
  EXPECT_FALSE(InjectorA.injectedFlips().empty());
  EXPECT_TRUE(
      flipsEqual(InjectorA.injectedFlips(), InjectorB.injectedFlips()));
}
